//! Integration tests: closed-form spectra as oracles for the full
//! pipeline, plus storage-layer consistency on top of real mappings.

use slpm_graph::grid::{Connectivity, GridSpec};
use slpm_linalg::fiedler::{fiedler_pair, smallest_nonzero_eigenpairs, FiedlerOptions};
use slpm_querysim::experiments::declustering;
use slpm_querysim::mappings::MappingSet;
use slpm_storage::decluster::{Declustering, RoundRobin};
use slpm_storage::{cluster_count, BufferPool, PageLayout, PageMapper};
use spectral_lpm_repro::prelude::*;
use std::f64::consts::PI;

#[test]
fn torus_lambda2_matches_closed_form() {
    // C_n × C_m torus: λ₂ = 2 − 2cos(2π / max(n, m)).
    for (n, m) in [(6usize, 6usize), (8, 5), (4, 10)] {
        let spec = GridSpec::new(&[n, m]);
        let g = spec.torus_graph();
        let pair = fiedler_pair(&g.laplacian(), &FiedlerOptions::default()).unwrap();
        let expect = 2.0 - 2.0 * (2.0 * PI / n.max(m) as f64).cos();
        assert!(
            (pair.lambda2 - expect).abs() < 1e-7,
            "torus {n}x{m}: {} vs {expect}",
            pair.lambda2
        );
    }
}

#[test]
fn grid_lambda2_matches_closed_form() {
    // P_n × P_m grid: λ₂ = 4 sin²(π / (2·max(n,m))).
    for (n, m) in [(8usize, 8usize), (12, 5), (3, 9)] {
        let spec = GridSpec::new(&[n, m]);
        let g = spec.graph(Connectivity::Orthogonal);
        let pair = fiedler_pair(&g.laplacian(), &FiedlerOptions::default()).unwrap();
        let expect = 4.0 * (PI / (2.0 * n.max(m) as f64)).sin().powi(2);
        assert!(
            (pair.lambda2 - expect).abs() < 1e-7,
            "grid {n}x{m}: {} vs {expect}",
            pair.lambda2
        );
    }
}

#[test]
fn grid_spectrum_prefix_matches_closed_form() {
    // The k smallest nonzero eigenvalues of an 8×3 grid are sums
    // 4sin²(iπ/16) + 4sin²(jπ/6); check the first three against the
    // iterative multi-pair solver.
    let spec = GridSpec::new(&[8, 3]);
    let lap = spec.graph(Connectivity::Orthogonal).laplacian();
    let mut all = Vec::new();
    for i in 0..8 {
        for j in 0..3 {
            let v = 4.0 * (PI * i as f64 / 16.0).sin().powi(2)
                + 4.0 * (PI * j as f64 / 6.0).sin().powi(2);
            all.push(v);
        }
    }
    all.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pairs = smallest_nonzero_eigenpairs(&lap, 3, &FiedlerOptions::default()).unwrap();
    for (k, (lambda, _)) in pairs.iter().enumerate() {
        assert!(
            (lambda - all[k + 1]).abs() < 1e-7,
            "pair {k}: {} vs {}",
            lambda,
            all[k + 1]
        );
    }
}

#[test]
fn page_runs_and_clusters_consistent_across_mappings() {
    let spec = GridSpec::cube(8, 2);
    let set = MappingSet::paper_set(&spec).unwrap();
    for (label, order) in set.iter() {
        let mapper = PageMapper::new(order, PageLayout::new(4));
        // A 3×3 window query.
        let vertices: Vec<usize> = (2..5)
            .flat_map(|x| (2..5).map(move |y| (x, y)))
            .map(|(x, y)| spec.index_of(&[x, y]))
            .collect();
        let clusters = cluster_count(order, vertices.iter().copied());
        let pages = mapper.page_count(vertices.iter().copied());
        let runs = mapper.page_runs(vertices.iter().copied());
        assert!(
            runs <= clusters,
            "{label}: runs {runs} > clusters {clusters}"
        );
        assert!(runs <= pages, "{label}");
        assert!(pages <= vertices.len(), "{label}");
    }
}

#[test]
fn declustering_response_bounded_by_pages_and_ideal() {
    let rows = declustering::run(&declustering::DeclusterConfig::quick());
    for r in &rows {
        assert!(r.mean_response + 1e-9 >= r.mean_ideal, "{}", r.mapping);
        assert!(
            r.mean_imbalance < 3.0,
            "{}: pathological imbalance",
            r.mapping
        );
    }
}

#[test]
fn round_robin_is_fair_for_contiguous_spectral_windows() {
    // Take the spectral order; any window of consecutive ranks maps to
    // consecutive pages, which round-robin spreads perfectly.
    let spec = GridSpec::cube(8, 2);
    let mapping = SpectralMapper::new(SpectralConfig::default())
        .map_grid(&spec)
        .unwrap();
    let mapper = PageMapper::new(&mapping.order, PageLayout::new(4));
    let rr = RoundRobin::new(4);
    // Vertices at ranks 8..24 → pages 2..6 → 4 consecutive pages.
    let vertices: Vec<usize> = (8..24).map(|p| mapping.order.vertex_at(p)).collect();
    let pages = mapper.pages_touched(vertices.iter().copied());
    assert_eq!(pages.len(), 4);
    assert_eq!(rr.response_time(pages), 1);
}

#[test]
fn buffer_pool_rewards_rank_coherent_replay() {
    // Replaying queries in spectral-rank order gives a strictly better hit
    // ratio than replaying the same queries in a scrambled order.
    let spec = GridSpec::cube(8, 2);
    let mapping = SpectralMapper::new(SpectralConfig::default())
        .map_grid(&spec)
        .unwrap();
    let mapper = PageMapper::new(&mapping.order, PageLayout::new(4));
    // Queries: sliding windows of 8 consecutive ranks.
    let windows: Vec<Vec<usize>> = (0..56)
        .map(|start| {
            (start..start + 8)
                .map(|p| mapping.order.vertex_at(p))
                .collect()
        })
        .collect();
    let replay = |idx: Vec<usize>| {
        let mut pool = BufferPool::new(3);
        for i in idx {
            pool.access_many(mapper.pages_touched(windows[i].iter().copied()));
        }
        pool.stats().hit_ratio()
    };
    let coherent = replay((0..56).collect());
    let scrambled = replay((0..56).map(|i| (i * 23) % 56).collect());
    assert!(
        coherent > scrambled,
        "coherent {coherent} not better than scrambled {scrambled}"
    );
}

#[test]
fn extended_set_runs_on_4d() {
    // All seven mappings co-exist on a 2⁴ grid; sanity for dimensions > 2.
    let spec = GridSpec::cube(2, 4);
    let set = MappingSet::extended_set(&spec).unwrap();
    assert_eq!(set.len(), 7);
    for (label, order) in set.iter() {
        assert_eq!(order.len(), 16, "{label}");
    }
}
