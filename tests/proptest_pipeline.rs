//! Cross-crate property tests: invariants that must hold for every grid
//! shape and every mapping the workspace can produce.

use proptest::prelude::*;
use slpm_querysim::mappings::MappingSet;
use slpm_querysim::metrics;
use slpm_storage::{cluster_count, PageLayout, PageMapper};
use spectral_lpm::objective;
use spectral_lpm_repro::prelude::*;

/// Power-of-two hypercube specs small enough for exhaustive checks.
fn cube_spec() -> impl Strategy<Value = GridSpec> {
    prop_oneof![
        Just(GridSpec::cube(2, 2)),
        Just(GridSpec::cube(4, 2)),
        Just(GridSpec::cube(8, 2)),
        Just(GridSpec::cube(2, 3)),
        Just(GridSpec::cube(4, 3)),
        Just(GridSpec::cube(2, 4)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_mapping_is_a_bijection(spec in cube_spec()) {
        let set = MappingSet::extended_set(&spec).unwrap();
        let n = spec.num_points();
        for (label, order) in set.iter() {
            let mut seen = vec![false; n];
            for v in 0..n {
                let r = order.rank_of(v);
                prop_assert!(r < n, "{label}");
                prop_assert!(!seen[r], "{label}: duplicate rank {r}");
                seen[r] = true;
                prop_assert_eq!(order.vertex_at(r), v, "{}", label);
            }
        }
    }

    #[test]
    fn lambda2_bounds_all_integer_orders(spec in cube_spec()) {
        let graph = spec.graph(Connectivity::Orthogonal);
        let mapping = SpectralMapper::new(SpectralConfig::default())
            .map_graph(&graph)
            .unwrap();
        let set = MappingSet::extended_set(&spec).unwrap();
        for (label, order) in set.iter() {
            let sigma = objective::order_quadratic_form(&graph, order);
            prop_assert!(
                sigma >= mapping.fiedler.lambda2 - 1e-8,
                "{label}: σ {sigma} < λ₂ {}", mapping.fiedler.lambda2
            );
        }
    }

    #[test]
    fn span_bounds_distance_for_contained_pairs(spec in cube_spec()) {
        // For any two vertices inside a range box, their 1-D distance is at
        // most the box's span.
        let set = MappingSet::paper_set(&spec).unwrap();
        let sides: Vec<usize> = spec.dims().iter().map(|&d| (d / 2).max(1)).collect();
        for (label, order) in set.iter() {
            slpm_querysim::workloads::for_each_box(&spec, &sides, |b| {
                let idx: Vec<usize> = b.indices(&spec).collect();
                let span = metrics::range_span(&spec, order, b);
                for w in idx.windows(2) {
                    assert!(
                        order.distance(w[0], w[1]) <= span,
                        "{label}: pair distance exceeds span"
                    );
                }
            });
        }
    }

    #[test]
    fn cluster_count_at_most_page_count_at_most_volume(spec in cube_spec()) {
        let set = MappingSet::paper_set(&spec).unwrap();
        let sides: Vec<usize> = spec.dims().iter().map(|&d| (d / 2).max(1)).collect();
        for (_, order) in set.iter() {
            let mapper = PageMapper::new(order, PageLayout::new(4));
            slpm_querysim::workloads::for_each_box(&spec, &sides, |b| {
                let idx: Vec<usize> = b.indices(&spec).collect();
                let clusters = cluster_count(order, idx.iter().copied());
                let pages = mapper.page_count(idx.iter().copied());
                let runs = mapper.page_runs(idx.iter().copied());
                assert!(clusters >= 1);
                assert!(clusters <= idx.len());
                assert!(pages <= idx.len());
                assert!(runs <= pages);
                // Page runs can't exceed rank clusters (pages merge ranks).
                assert!(runs <= clusters);
            });
        }
    }

    #[test]
    fn boundary_stretch_is_bandwidth(spec in cube_spec()) {
        // metrics::boundary_stretch (pair workload) must equal the
        // objective::bandwidth (graph edges) on the orthogonal grid graph.
        let graph = spec.graph(Connectivity::Orthogonal);
        let set = MappingSet::paper_set(&spec).unwrap();
        for (label, order) in set.iter() {
            let a = metrics::boundary_stretch(&spec, order);
            let b = objective::bandwidth(&graph, order);
            prop_assert_eq!(a, b, "{}", label);
        }
    }

    #[test]
    fn reversal_preserves_all_paper_metrics(spec in cube_spec()) {
        // The spectral order's reversal (eigenvector sign flip) must have
        // identical locality metrics — the canonical symmetry.
        let mapping = SpectralMapper::new(SpectralConfig::default())
            .map_grid(&spec)
            .unwrap();
        let fwd = &mapping.order;
        let rev = fwd.reversed();
        let s_f = metrics::pair_distance_stats(&spec, fwd, 1);
        let s_r = metrics::pair_distance_stats(&spec, &rev, 1);
        prop_assert_eq!(s_f.max, s_r.max);
        prop_assert!((s_f.mean - s_r.mean).abs() < 1e-9);
        let graph = spec.graph(Connectivity::Orthogonal);
        prop_assert!(
            (objective::two_sum_cost(&graph, fwd) - objective::two_sum_cost(&graph, &rev)).abs()
                < 1e-9
        );
    }
}
