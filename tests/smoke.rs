//! Workspace smoke test: the `prelude` facade exports resolve and the
//! quickstart pipeline (GridSpec → Graph → SpectralMapper → LinearOrder)
//! runs end to end on a small grid. Guards against facade regressions —
//! a re-export dropped from `spectral_lpm_repro::prelude` fails this file
//! at compile time.

use spectral_lpm_repro::prelude::*;

#[test]
fn prelude_pipeline_runs_on_4x4_grid() {
    // Step 1: the multi-dimensional space and its neighbourhood graph.
    let spec = GridSpec::cube(4, 2);
    let graph: Graph = spec.graph(Connectivity::Orthogonal);
    assert_eq!(graph.num_vertices(), 16);
    assert_eq!(graph.num_edges(), 24);

    // Steps 2–5: Laplacian → Fiedler pair → linear order.
    let mapper = SpectralMapper::new(SpectralConfig::default());
    let mapping = mapper.map_grid(&spec).expect("4x4 grid is connected");
    assert!(mapping.fiedler.lambda2 > 0.0, "connected graph has λ₂ > 0");
    assert!(mapping.fiedler.residual < 1e-6);

    // The order is a permutation of the 16 vertices.
    let order: &LinearOrder = &mapping.order;
    assert_eq!(order.len(), 16);
    let mut ranks: Vec<usize> = (0..16).map(|v| order.rank_of(v)).collect();
    ranks.sort_unstable();
    assert_eq!(ranks, (0..16).collect::<Vec<_>>());
}

#[test]
fn prelude_exports_cover_curves_and_storage() {
    // Space-filling-curve exports.
    let hilbert = HilbertCurve::from_side(2, 4).expect("4 is a power of two");
    let sweep = SweepCurve::new(&[4, 4]).expect("valid extents");
    assert_eq!(hilbert.num_points(), 16);
    assert_eq!(sweep.num_points(), 16);
    let coords = hilbert.decode(5);
    assert_eq!(hilbert.encode(&coords), 5);

    // Fiedler solver options are re-exported.
    let _ = FiedlerOptions {
        method: FiedlerMethod::Dense,
        ..Default::default()
    };

    // Storage exports: page placement over an order.
    let order = LinearOrder::identity(16);
    let pages = PageMapper::new(&order, PageLayout::new(4));
    assert_eq!(pages.num_pages(), 4);
}
