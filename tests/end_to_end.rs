//! End-to-end integration: grid → graph → eigensolver → order → metrics →
//! storage, across every workspace crate.

use slpm_querysim::mappings::{curve_order, MappingSet};
use slpm_querysim::workloads::RangeBox;
use slpm_querysim::{metrics, workloads};
use slpm_storage::decluster::{query_response_time, Declustering};
use slpm_storage::{cluster_count, IoModel, PageLayout, PageMapper, RoundRobin};
use spectral_lpm_repro::prelude::*;

#[test]
fn full_pipeline_on_8x8_grid() {
    // Map.
    let spec = GridSpec::cube(8, 2);
    let mapper = SpectralMapper::new(SpectralConfig::default());
    let mapping = mapper.map_grid(&spec).expect("connected grid");
    assert_eq!(mapping.order.len(), 64);
    assert!(mapping.fiedler.lambda2 > 0.0);
    assert!(mapping.fiedler.residual < 1e-6);

    // Measure.
    let adj = metrics::pair_distance_stats(&spec, &mapping.order, 1);
    assert!(adj.max >= 1);
    assert!(adj.count > 0);

    // Store.
    let pages = PageMapper::new(&mapping.order, PageLayout::new(8));
    assert_eq!(pages.num_pages(), 8);
    let q = RangeBox {
        lo: vec![2, 2],
        hi: vec![4, 4],
    };
    let vertices: Vec<usize> = q.indices(&spec).collect();
    assert_eq!(vertices.len(), 9);
    let io = IoModel::default().query_cost(&pages, vertices.iter().copied());
    assert!(io.pages >= 1 && io.pages <= 9);
    assert!(io.runs >= 1 && io.runs <= io.pages);

    // Decluster.
    let rr = RoundRobin::new(4);
    let rt = query_response_time(&pages, &rr, vertices.iter().copied());
    assert!(rt >= 1 && rt <= io.pages);
    assert!(rt >= io.pages.div_ceil(rr.num_disks()));
}

#[test]
fn lambda2_lower_bounds_every_mapping_objective() {
    // Theorems 1–3 across crates: the Fiedler relaxation value λ₂ is a
    // lower bound for the normalised 2-sum of every curve's integer order.
    use spectral_lpm::objective;
    let spec = GridSpec::cube(4, 2);
    let graph = spec.graph(Connectivity::Orthogonal);
    let mapping = SpectralMapper::new(SpectralConfig::default())
        .map_graph(&graph)
        .unwrap();
    let lambda2 = mapping.fiedler.lambda2;
    let set = MappingSet::extended_set(&spec).unwrap();
    for (label, order) in set.iter() {
        let sigma = objective::order_quadratic_form(&graph, order);
        assert!(
            sigma >= lambda2 - 1e-9,
            "{label}: σ = {sigma} < λ₂ = {lambda2}"
        );
    }
}

#[test]
fn spectral_beats_fractals_on_worst_adjacent_distance_16x16() {
    let spec = GridSpec::cube(16, 2);
    let set = MappingSet::paper_set(&spec).unwrap();
    let worst = |label: &str| {
        let order = set
            .iter()
            .find(|(l, _)| l.to_string() == label)
            .map(|(_, o)| o)
            .unwrap();
        metrics::pair_distance_stats(&spec, order, 1).max
    };
    let spectral = worst("Spectral");
    for fractal in ["Peano", "Gray", "Hilbert"] {
        assert!(
            spectral < worst(fractal),
            "Spectral {spectral} not better than {fractal} {}",
            worst(fractal)
        );
    }
}

#[test]
fn hilbert_curve_and_graph_agree_on_adjacency() {
    // Cross-crate consistency: consecutive Hilbert ranks are grid-graph
    // neighbours (curve steps are edges of the orthogonal grid graph).
    let spec = GridSpec::cube(8, 2);
    let g = spec.graph(Connectivity::Orthogonal);
    let order = curve_order(&spec, &HilbertCurve::from_side(2, 8).unwrap());
    for p in 1..order.len() {
        let u = order.vertex_at(p - 1);
        let v = order.vertex_at(p);
        assert!(g.has_edge(u, v), "rank step {p} is not a grid edge");
    }
}

#[test]
fn snake_orders_have_unit_steps_and_single_cluster_rows() {
    let spec = GridSpec::cube(8, 2);
    let order = curve_order(&spec, &SnakeCurve::new(&[8, 8]).unwrap());
    // Each full row of the grid is one cluster (contiguous ranks).
    for x in 0..8 {
        let row: Vec<usize> = (0..8).map(|y| spec.index_of(&[x, y])).collect();
        assert_eq!(cluster_count(&order, row), 1, "row {x}");
    }
}

#[test]
fn point_set_and_grid_pipelines_agree() {
    use slpm_graph::points::PointSet;
    let spec = GridSpec::new(&[4, 5]);
    let mapper = SpectralMapper::new(SpectralConfig::default());
    let via_grid = mapper.map_grid(&spec).unwrap();
    let via_points = mapper.map_points(&PointSet::from_grid(&spec)).unwrap();
    assert_eq!(via_grid.order.ranks(), via_points.order.ranks());
    assert!((via_grid.fiedler.lambda2 - via_points.fiedler.lambda2).abs() < 1e-12);
}

#[test]
fn workload_generators_consistent_with_metrics() {
    let spec = GridSpec::cube(4, 3);
    let set = MappingSet::paper_set(&spec).unwrap();
    let (_, order) = set.iter().next().unwrap();
    // The max over explicitly generated pairs equals the stats max.
    let mut explicit_max = 0usize;
    workloads::for_each_pair_at_distance(&spec, 2, |i, j| {
        explicit_max = explicit_max.max(order.distance(i, j));
    });
    let stats = metrics::pair_distance_stats(&spec, order, 2);
    assert_eq!(stats.max, explicit_max);
}

#[test]
fn disconnected_point_set_is_rejected_end_to_end() {
    use slpm_graph::points::PointSet;
    let pts = PointSet::new(vec![vec![0, 0], vec![5, 5]]).unwrap();
    let err = SpectralMapper::new(SpectralConfig::default())
        .map_points(&pts)
        .unwrap_err();
    assert!(err.to_string().contains("disconnected"));
}
