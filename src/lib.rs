//! Facade crate for the Spectral LPM reproduction.
//!
//! Re-exports every workspace crate under one roof so examples, integration
//! tests and downstream experiments can depend on a single name:
//!
//! ```
//! use spectral_lpm_repro::prelude::*;
//! ```
//!
//! The individual crates are:
//! * [`linalg`] — eigensolvers (dense QL, Jacobi, Lanczos, shift-invert CG);
//! * [`graph`] — CSR graphs, k-D grid builders, Laplacians;
//! * [`sfc`] — Sweep/Snake/Peano/Gray/Hilbert space-filling curves;
//! * [`core`] — the Spectral LPM algorithm itself;
//! * [`querysim`] — the paper's evaluation workloads and metrics;
//! * [`storage`] — page placement, clustering metric, declustering;
//! * [`serve`] — the sharded, batched query-serving engine.

pub use slpm_graph as graph;
pub use slpm_linalg as linalg;
pub use slpm_querysim as querysim;
pub use slpm_serve as serve;
pub use slpm_sfc as sfc;
pub use slpm_storage as storage;
pub use spectral_lpm as core;

/// One-stop imports for examples and tests.
pub mod prelude {
    pub use slpm_graph::grid::{Connectivity, GridSpec};
    pub use slpm_graph::Graph;
    pub use slpm_linalg::{FiedlerMethod, FiedlerOptions};
    pub use slpm_serve::{EngineConfig, Partition, Query, ServeEngine, WorkerPool};
    pub use slpm_sfc::{
        CurveKind, GrayCurve, HilbertCurve, PeanoCurve, SnakeCurve, SpaceFillingCurve, SweepCurve,
    };
    pub use slpm_storage::{PageLayout, PageMapper};
    pub use spectral_lpm::{LinearOrder, SpectralConfig, SpectralMapper};
}
