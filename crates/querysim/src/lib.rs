//! Workloads, metrics and experiment runners for the Spectral LPM
//! evaluation (paper Section 5).
//!
//! The paper asks two questions of every mapping:
//!
//! 1. **Nearest-neighbour locality** (Figure 5): if two points are at
//!    Manhattan distance `d` in k-D, how far apart can they land in 1-D?
//! 2. **Range-query locality** (Figure 6): for a k-D range query, how wide
//!    is the 1-D interval `[min rank, max rank]` of its points — i.e. how
//!    much must a sequential scan read?
//!
//! Modules:
//! * [`mappings`] — builds the full comparison set (Sweep / Snake / Peano /
//!   Gray / Hilbert / Spectral) as uniform [`spectral_lpm::LinearOrder`]s
//!   over one grid;
//! * [`workloads`] — exhaustive and sampled pair/range-query generators;
//! * [`metrics`] — the distance and span statistics the figures plot;
//! * [`table`] — plain-text table rendering for the `fig*` binaries;
//! * [`experiments`] — one runner per paper figure (1, 3, 4, 5a, 5b, 6a,
//!   6b) plus the ablation studies, each returning serialisable rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod mappings;
pub mod metrics;
pub mod table;
pub mod workloads;

pub use mappings::{MappingLabel, MappingSet};
pub use metrics::SpanStats;
pub use workloads::RangeBox;
