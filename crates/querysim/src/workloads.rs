//! Workload generators: point pairs at fixed Manhattan distance, axis
//! pairs, and range-query boxes.
//!
//! Everything is exhaustive by default — the paper's grids are small enough
//! that worst cases can be computed exactly rather than sampled — with
//! seeded sampling variants for the larger benchmark sweeps.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slpm_graph::grid::GridSpec;

/// An axis-aligned inclusive range query `[lo, hi]` in grid coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeBox {
    /// Inclusive lower corner.
    pub lo: Vec<usize>,
    /// Inclusive upper corner (`hi[d] >= lo[d]`).
    pub hi: Vec<usize>,
}

impl RangeBox {
    /// Number of grid points inside.
    pub fn volume(&self) -> usize {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .map(|(&l, &h)| h - l + 1)
            .product()
    }

    /// True when `coords` lies inside the box.
    pub fn contains(&self, coords: &[usize]) -> bool {
        coords
            .iter()
            .zip(self.lo.iter().zip(self.hi.iter()))
            .all(|(&c, (&l, &h))| c >= l && c <= h)
    }

    /// Iterate over the row-major indices of all points inside.
    pub fn indices<'a>(&'a self, spec: &'a GridSpec) -> impl Iterator<Item = usize> + 'a {
        let mut cur = self.lo.clone();
        let mut done = false;
        std::iter::from_fn(move || {
            if done {
                return None;
            }
            let idx = spec.index_of(&cur);
            // Odometer increment within the box, last dimension fastest.
            let k = cur.len();
            let mut d = k;
            loop {
                if d == 0 {
                    done = true;
                    break;
                }
                d -= 1;
                if cur[d] < self.hi[d] {
                    cur[d] += 1;
                    cur[(d + 1)..k].copy_from_slice(&self.lo[(d + 1)..k]);
                    break;
                }
            }
            Some(idx)
        })
    }
}

/// Call `f(i, j)` for every unordered pair of grid points at Manhattan
/// distance exactly `d` (`i < j` as row-major indices).
///
/// Enumeration is O(n · |ball(d)|): for each point, only the lattice points
/// at distance exactly `d` that compare row-major-greater are visited.
pub fn for_each_pair_at_distance<F: FnMut(usize, usize)>(spec: &GridSpec, d: usize, mut f: F) {
    if d == 0 {
        return;
    }
    let k = spec.ndim();
    // For each point, probe every lattice offset of L1 norm d with
    // lexicographically-positive direction; offsets are generated once up
    // front, so each unordered pair is visited exactly once.
    let offsets = l1_sphere_offsets(k, d);
    let mut b = vec![0usize; k];
    for a in spec.iter_points() {
        let ia = spec.index_of(&a);
        'offs: for off in &offsets {
            for dim in 0..k {
                let c = a[dim] as isize + off[dim];
                if c < 0 || c as usize >= spec.dim(dim) {
                    continue 'offs;
                }
                b[dim] = c as usize;
            }
            let ib = spec.index_of(&b);
            f(ia.min(ib), ia.max(ib));
        }
    }
}

/// All lattice offsets `v ∈ Z^k` with `‖v‖₁ = d` and lexicographically
/// positive sign (first nonzero component > 0), so each unordered pair is
/// produced exactly once.
pub fn l1_sphere_offsets(k: usize, d: usize) -> Vec<Vec<isize>> {
    let mut out = Vec::new();
    let mut cur = vec![0isize; k];
    fn rec(k: usize, dim: usize, d_left: isize, cur: &mut Vec<isize>, out: &mut Vec<Vec<isize>>) {
        if dim == k {
            if d_left == 0 {
                // Lexicographic positivity check.
                if let Some(&first) = cur.iter().find(|&&v| v != 0) {
                    if first > 0 {
                        out.push(cur.clone());
                    }
                }
            }
            return;
        }
        for v in -d_left..=d_left {
            cur[dim] = v;
            rec(k, dim + 1, d_left - v.abs(), cur, out);
        }
        cur[dim] = 0;
    }
    rec(k, 0, d as isize, &mut cur, &mut out);
    out
}

/// Call `f(i, j)` for every pair displaced by exactly `d` along dimension
/// `dim` **only** (all other coordinates equal) — the Figure 5b workload.
pub fn for_each_axis_pair<F: FnMut(usize, usize)>(spec: &GridSpec, dim: usize, d: usize, mut f: F) {
    assert!(dim < spec.ndim());
    if d == 0 {
        return;
    }
    let mut b;
    for a in spec.iter_points() {
        if a[dim] + d < spec.dim(dim) {
            b = a.clone();
            b[dim] += d;
            f(spec.index_of(&a), spec.index_of(&b));
        }
    }
}

/// Enumerate every placement of a box with the given per-dimension side
/// lengths.
pub fn for_each_box<F: FnMut(&RangeBox)>(spec: &GridSpec, sides: &[usize], mut f: F) {
    assert_eq!(sides.len(), spec.ndim());
    for (d, &s) in sides.iter().enumerate() {
        assert!(
            s >= 1 && s <= spec.dim(d),
            "box side {s} out of range for dim {d}"
        );
    }
    let k = spec.ndim();
    let mut lo = vec![0usize; k];
    loop {
        let hi: Vec<usize> = lo
            .iter()
            .zip(sides.iter())
            .map(|(&l, &s)| l + s - 1)
            .collect();
        f(&RangeBox { lo: lo.clone(), hi });
        // Odometer over valid lower corners.
        let mut d = k;
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            if lo[d] + sides[d] < spec.dim(d) {
                lo[d] += 1;
                for dd in d + 1..k {
                    lo[dd] = 0;
                }
                break;
            }
            lo[d] = 0;
        }
    }
}

/// The hypercube side length whose volume best matches `percent`% of the
/// grid volume (at least 1, at most the grid side). Used to translate the
/// paper's "range query size (percent)" axis into concrete boxes.
pub fn side_for_volume_percent(spec: &GridSpec, percent: f64) -> usize {
    let n = spec.num_points() as f64;
    let k = spec.ndim() as f64;
    let target = (percent / 100.0 * n).max(1.0);
    let side = target.powf(1.0 / k).round() as usize;
    side.clamp(
        1,
        spec.dims().iter().copied().min().expect("non-empty dims"),
    )
}

/// All box *shapes* (per-dimension side tuples) whose volume is within a
/// multiplicative `tolerance` of `percent`% of the grid volume — the
/// paper's "all possible **partial** range queries with a certain size":
/// elongated shapes such as `1×1×8×8` constrain only some dimensions, and
/// the variation across shapes (and placements) is exactly what Figure 6b's
/// standard deviation captures.
///
/// The tolerance window is widened automatically until at least one shape
/// qualifies, so the function always returns a non-empty set.
pub fn shapes_for_volume_percent(spec: &GridSpec, percent: f64, tolerance: f64) -> Vec<Vec<usize>> {
    assert!(tolerance >= 1.0, "tolerance is a multiplicative factor ≥ 1");
    let n = spec.num_points() as f64;
    let target = (percent / 100.0 * n).max(1.0);
    let k = spec.ndim();
    fn enumerate(
        spec: &GridSpec,
        dim: usize,
        lo: f64,
        hi: f64,
        cur: &mut Vec<usize>,
        acc: f64,
        out: &mut Vec<Vec<usize>>,
    ) {
        if dim == spec.ndim() {
            if acc >= lo && acc <= hi {
                out.push(cur.clone());
            }
            return;
        }
        for s in 1..=spec.dim(dim) {
            let next = acc * s as f64;
            if next > hi {
                break; // sides only grow, prune
            }
            cur.push(s);
            enumerate(spec, dim + 1, lo, hi, cur, next, out);
            cur.pop();
        }
    }

    let mut tol = tolerance;
    loop {
        let mut shapes = Vec::new();
        let mut cur = Vec::with_capacity(k);
        enumerate(
            spec,
            0,
            target / tol,
            target * tol,
            &mut cur,
            1.0,
            &mut shapes,
        );
        if !shapes.is_empty() {
            return shapes;
        }
        tol *= 1.5;
    }
}

/// Seeded sample of `count` random boxes with the given sides (for grids
/// too large to enumerate exhaustively).
pub fn sample_boxes(spec: &GridSpec, sides: &[usize], count: usize, seed: u64) -> Vec<RangeBox> {
    let mut rng = StdRng::seed_from_u64(seed);
    let k = spec.ndim();
    (0..count)
        .map(|_| {
            let lo: Vec<usize> = (0..k)
                .map(|d| rng.gen_range(0..=spec.dim(d) - sides[d]))
                .collect();
            let hi: Vec<usize> = lo
                .iter()
                .zip(sides.iter())
                .map(|(&l, &s)| l + s - 1)
                .collect();
            RangeBox { lo, hi }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_volume_contains_indices() {
        let spec = GridSpec::new(&[4, 4]);
        let b = RangeBox {
            lo: vec![1, 1],
            hi: vec![2, 3],
        };
        assert_eq!(b.volume(), 6);
        assert!(b.contains(&[1, 3]));
        assert!(!b.contains(&[0, 1]));
        assert!(!b.contains(&[1, 0]));
        let idx: Vec<usize> = b.indices(&spec).collect();
        assert_eq!(idx.len(), 6);
        for &i in &idx {
            assert!(b.contains(&spec.coords_of(i)));
        }
        // All indices distinct.
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
    }

    #[test]
    fn l1_sphere_counts_2d() {
        // In 2-D, lattice points at L1 distance d: 4d; half are lex-positive.
        for d in 1..=4 {
            assert_eq!(l1_sphere_offsets(2, d).len(), 2 * d);
        }
    }

    #[test]
    fn pairs_at_distance_match_bruteforce() {
        let spec = GridSpec::new(&[3, 4]);
        for d in 1..=4usize {
            let mut fast = Vec::new();
            for_each_pair_at_distance(&spec, d, |i, j| fast.push((i, j)));
            fast.sort_unstable();
            fast.dedup();
            let mut brute = Vec::new();
            for i in 0..spec.num_points() {
                for j in i + 1..spec.num_points() {
                    if GridSpec::manhattan(&spec.coords_of(i), &spec.coords_of(j)) == d {
                        brute.push((i, j));
                    }
                }
            }
            assert_eq!(fast, brute, "d = {d}");
        }
    }

    #[test]
    fn pairs_at_distance_zero_is_empty() {
        let spec = GridSpec::new(&[3, 3]);
        let mut n = 0;
        for_each_pair_at_distance(&spec, 0, |_, _| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn axis_pairs_only_move_one_dim() {
        let spec = GridSpec::new(&[4, 5]);
        let mut count = 0;
        for_each_axis_pair(&spec, 0, 2, |i, j| {
            let a = spec.coords_of(i);
            let b = spec.coords_of(j);
            assert_eq!(a[1], b[1]);
            assert_eq!(a[0].abs_diff(b[0]), 2);
            count += 1;
        });
        // x displacement 2 in a 4-row grid: 2 starting rows × 5 columns.
        assert_eq!(count, 10);
    }

    #[test]
    fn box_enumeration_counts() {
        let spec = GridSpec::new(&[4, 4]);
        let mut n = 0;
        for_each_box(&spec, &[2, 3], |b| {
            assert_eq!(b.volume(), 6);
            n += 1;
        });
        // (4−2+1) × (4−3+1) placements.
        assert_eq!(n, 6);
    }

    #[test]
    fn full_grid_box() {
        let spec = GridSpec::new(&[3, 3]);
        let mut n = 0;
        for_each_box(&spec, &[3, 3], |b| {
            assert_eq!(b.volume(), 9);
            n += 1;
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn shapes_for_volume_within_window() {
        let spec = GridSpec::cube(8, 4);
        let shapes = shapes_for_volume_percent(&spec, 2.0, 1.25);
        // Target = 81.92; window [65.5, 102.4].
        assert!(!shapes.is_empty());
        for s in &shapes {
            let vol: usize = s.iter().product();
            assert!(
                (66..=102).contains(&vol),
                "shape {s:?} volume {vol} outside window"
            );
            assert!(s.iter().all(|&x| (1..=8).contains(&x)));
        }
        // Elongated partial-match shapes are included, e.g. 2×5×8×1.
        assert!(shapes.iter().any(|s| s.contains(&8) && s.contains(&1)));
    }

    #[test]
    fn shapes_window_widens_until_nonempty() {
        // 3×3 grid, 40% of 9 = 3.6: no shape has volume in a ±1% window
        // (volumes are 1,2,3,4,6,9) so the window must widen to find 3 or 4.
        let spec = GridSpec::new(&[3, 3]);
        let shapes = shapes_for_volume_percent(&spec, 40.0, 1.01);
        assert!(!shapes.is_empty());
        for s in &shapes {
            let vol: usize = s.iter().product();
            assert!(vol == 3 || vol == 4, "unexpected volume {vol}");
        }
    }

    #[test]
    fn shapes_at_full_volume_is_whole_grid() {
        let spec = GridSpec::cube(4, 2);
        let shapes = shapes_for_volume_percent(&spec, 100.0, 1.05);
        assert_eq!(shapes, vec![vec![4, 4]]);
    }

    #[test]
    fn side_for_volume_percent_basics() {
        let spec = GridSpec::cube(8, 4); // 4096 points
        assert_eq!(side_for_volume_percent(&spec, 100.0), 8);
        // 2% of 4096 ≈ 82 → side ≈ 3.
        assert_eq!(side_for_volume_percent(&spec, 2.0), 3);
        // Tiny percent clamps to 1.
        assert_eq!(side_for_volume_percent(&spec, 1e-9), 1);
    }

    #[test]
    fn sampled_boxes_are_in_range_and_seeded() {
        let spec = GridSpec::new(&[8, 8]);
        let a = sample_boxes(&spec, &[3, 3], 10, 7);
        let b = sample_boxes(&spec, &[3, 3], 10, 7);
        assert_eq!(a, b);
        for bx in &a {
            assert_eq!(bx.volume(), 9);
            assert!(bx.hi.iter().zip(spec.dims()).all(|(&h, &d)| h < d));
        }
    }
}
