//! Building the comparison set of linear orders over one grid.
//!
//! Every experiment in the paper sweeps the same five mappings — Sweep,
//! Peano, Gray, Hilbert, Spectral — over one grid. [`MappingSet`] builds
//! them all as [`LinearOrder`]s keyed by row-major point index, so metric
//! code is completely mapping-agnostic.

use slpm_graph::grid::{Connectivity, GridSpec};
use slpm_sfc::{
    CurveError, CurveKind, GrayCurve, HilbertCurve, PeanoCurve, SnakeCurve, SpaceFillingCurve,
    SweepCurve,
};
use spectral_lpm::{LinearOrder, MappingError, SpectralConfig, SpectralMapper};
use std::fmt;

/// Label of one mapping in the comparison set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingLabel {
    /// A space-filling curve (fractal or scan order).
    Curve(CurveKind),
    /// Spectral LPM under the given connectivity.
    Spectral(Connectivity),
}

impl fmt::Display for MappingLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingLabel::Curve(k) => write!(f, "{k}"),
            MappingLabel::Spectral(Connectivity::Orthogonal) => write!(f, "Spectral"),
            MappingLabel::Spectral(Connectivity::Full) => write!(f, "Spectral8"),
        }
    }
}

/// Errors when assembling a mapping set.
#[derive(Debug)]
pub enum MappingSetError {
    /// The grid is not a hypercube with power-of-two side (required by the
    /// recursive curves).
    Curve(CurveError),
    /// The spectral mapper failed.
    Spectral(MappingError),
}

impl fmt::Display for MappingSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingSetError::Curve(e) => write!(f, "curve construction: {e}"),
            MappingSetError::Spectral(e) => write!(f, "spectral mapping: {e}"),
        }
    }
}

impl std::error::Error for MappingSetError {}

impl From<CurveError> for MappingSetError {
    fn from(e: CurveError) -> Self {
        MappingSetError::Curve(e)
    }
}

impl From<MappingError> for MappingSetError {
    fn from(e: MappingError) -> Self {
        MappingSetError::Spectral(e)
    }
}

/// The comparison set: one [`LinearOrder`] per mapping over a common grid.
/// Orders are indexed by the grid's row-major point index.
pub struct MappingSet {
    spec: GridSpec,
    entries: Vec<(MappingLabel, LinearOrder)>,
}

impl MappingSet {
    /// Build the paper's five mappings (Sweep, Peano, Gray, Hilbert,
    /// Spectral-4conn) over a hypercube grid with power-of-two side.
    pub fn paper_set(spec: &GridSpec) -> Result<Self, MappingSetError> {
        let mut s = Self::curves_only(spec)?;
        let spectral = spectral_order(spec, SpectralConfig::default())?;
        s.entries
            .push((MappingLabel::Spectral(Connectivity::Orthogonal), spectral));
        Ok(s)
    }

    /// The four curve baselines only (no eigenwork) — used by benches that
    /// isolate curve cost.
    pub fn curves_only(spec: &GridSpec) -> Result<Self, MappingSetError> {
        let k = spec.ndim();
        let side = spec.dim(0) as u64;
        let uniform = spec.dims().iter().all(|&d| d as u64 == side);
        if !uniform {
            return Err(MappingSetError::Curve(CurveError::NotPowerOfTwo {
                side: 0,
            }));
        }
        let entries = vec![
            (
                MappingLabel::Curve(CurveKind::Sweep),
                curve_order(spec, &SweepCurve::new(&vec![side; k])?),
            ),
            (
                MappingLabel::Curve(CurveKind::Peano),
                curve_order(spec, &PeanoCurve::from_side(k, side)?),
            ),
            (
                MappingLabel::Curve(CurveKind::Gray),
                curve_order(spec, &GrayCurve::from_side(k, side)?),
            ),
            (
                MappingLabel::Curve(CurveKind::Hilbert),
                curve_order(spec, &HilbertCurve::from_side(k, side)?),
            ),
        ];
        Ok(MappingSet {
            spec: spec.clone(),
            entries,
        })
    }

    /// Paper set plus the Snake scan and Spectral under 8-connectivity —
    /// the extended set used by ablations.
    pub fn extended_set(spec: &GridSpec) -> Result<Self, MappingSetError> {
        let mut s = Self::paper_set(spec)?;
        let side = spec.dim(0) as u64;
        s.entries.push((
            MappingLabel::Curve(CurveKind::Snake),
            curve_order(spec, &SnakeCurve::new(&vec![side; spec.ndim()])?),
        ));
        let spectral8 = spectral_order(
            spec,
            SpectralConfig {
                connectivity: Connectivity::Full,
                ..Default::default()
            },
        )?;
        s.entries
            .push((MappingLabel::Spectral(Connectivity::Full), spectral8));
        Ok(s)
    }

    /// The grid all orders share.
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// Iterate over `(label, order)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (MappingLabel, &LinearOrder)> {
        self.entries.iter().map(|(l, o)| (*l, o))
    }

    /// Number of mappings in the set.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up one order by label.
    pub fn get(&self, label: MappingLabel) -> Option<&LinearOrder> {
        self.entries
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, o)| o)
    }
}

/// Evaluate a curve over every grid point, producing a [`LinearOrder`] on
/// row-major indices.
pub fn curve_order<C: SpaceFillingCurve + ?Sized>(spec: &GridSpec, curve: &C) -> LinearOrder {
    let n = spec.num_points();
    let mut codes = vec![0u64; n];
    for (i, coords) in spec.iter_points().enumerate() {
        let c32: Vec<u32> = coords.iter().map(|&c| c as u32).collect();
        codes[i] = curve.encode(&c32);
    }
    LinearOrder::from_codes(&codes)
}

/// Run Spectral LPM over the grid, producing its [`LinearOrder`].
pub fn spectral_order(
    spec: &GridSpec,
    config: SpectralConfig,
) -> Result<LinearOrder, MappingError> {
    let mapper = SpectralMapper::new(config);
    Ok(mapper.map_grid(spec)?.order)
}

/// Build a curve order from its command-line name — the one dispatch table
/// shared by every binary that takes `--mapping` for a fractal/scan order
/// (`sweep`, `snake`, `peano`/`z`/`zorder`/`z-order`/`morton`, `gray`,
/// `hilbert`). Spectral mappings are not covered (they need a
/// [`SpectralConfig`]; see [`spectral_order`]).
pub fn curve_order_by_name(spec: &GridSpec, name: &str) -> Result<LinearOrder, String> {
    let side = spec.dim(0) as u64;
    let k = spec.ndim();
    let need_uniform = |name: &str| -> Result<(), String> {
        if spec.dims().iter().all(|&d| d as u64 == side) {
            Ok(())
        } else {
            Err(format!("{name} requires a hypercube grid"))
        }
    };
    match name.to_ascii_lowercase().as_str() {
        "sweep" => {
            let dims: Vec<u64> = spec.dims().iter().map(|&d| d as u64).collect();
            Ok(curve_order(
                spec,
                &SweepCurve::new(&dims).map_err(|e| e.to_string())?,
            ))
        }
        "snake" => {
            let dims: Vec<u64> = spec.dims().iter().map(|&d| d as u64).collect();
            Ok(curve_order(
                spec,
                &SnakeCurve::new(&dims).map_err(|e| e.to_string())?,
            ))
        }
        "peano" | "z" | "zorder" | "z-order" | "morton" => {
            need_uniform("peano")?;
            Ok(curve_order(
                spec,
                &PeanoCurve::from_side(k, side).map_err(|e| e.to_string())?,
            ))
        }
        "gray" => {
            need_uniform("gray")?;
            Ok(curve_order(
                spec,
                &GrayCurve::from_side(k, side).map_err(|e| e.to_string())?,
            ))
        }
        "hilbert" => {
            need_uniform("hilbert")?;
            Ok(curve_order(
                spec,
                &HilbertCurve::from_side(k, side).map_err(|e| e.to_string())?,
            ))
        }
        other => Err(format!(
            "unknown curve mapping '{other}' (sweep, snake, peano, gray, hilbert)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_order_by_name_matches_direct_construction() {
        let spec = GridSpec::cube(8, 2);
        let direct = curve_order(&spec, &HilbertCurve::from_side(2, 8).unwrap());
        assert_eq!(
            curve_order_by_name(&spec, "hilbert").unwrap().ranks(),
            direct.ranks()
        );
        // Aliases and case-insensitivity.
        assert_eq!(
            curve_order_by_name(&spec, "Morton").unwrap().ranks(),
            curve_order(&spec, &PeanoCurve::from_side(2, 8).unwrap()).ranks()
        );
        for name in ["sweep", "snake", "peano", "gray", "hilbert"] {
            assert!(curve_order_by_name(&spec, name).is_ok(), "{name}");
        }
        // Unknown names, non-cube grids and non-power-of-two sides error.
        assert!(curve_order_by_name(&spec, "spectral").is_err());
        assert!(curve_order_by_name(&GridSpec::new(&[4, 8]), "hilbert").is_err());
        assert!(curve_order_by_name(&GridSpec::cube(6, 2), "hilbert").is_err());
        // Scan orders accept any extents.
        assert!(curve_order_by_name(&GridSpec::new(&[4, 8]), "snake").is_ok());
    }

    #[test]
    fn paper_set_has_five_orders() {
        let spec = GridSpec::cube(4, 2);
        let set = MappingSet::paper_set(&spec).unwrap();
        assert_eq!(set.len(), 5);
        assert!(!set.is_empty());
        let labels: Vec<String> = set.iter().map(|(l, _)| l.to_string()).collect();
        assert_eq!(
            labels,
            vec!["Sweep", "Peano", "Gray", "Hilbert", "Spectral"]
        );
    }

    #[test]
    fn all_orders_are_permutations() {
        let spec = GridSpec::cube(4, 2);
        let set = MappingSet::extended_set(&spec).unwrap();
        assert_eq!(set.len(), 7);
        for (label, order) in set.iter() {
            assert_eq!(order.len(), 16, "{label}");
            let mut seen = [false; 16];
            for v in 0..16 {
                let p = order.rank_of(v);
                assert!(!seen[p], "{label}: position {p} duplicated");
                seen[p] = true;
            }
        }
    }

    #[test]
    fn sweep_order_is_identity_on_row_major() {
        let spec = GridSpec::cube(4, 2);
        let set = MappingSet::paper_set(&spec).unwrap();
        let sweep = set.get(MappingLabel::Curve(CurveKind::Sweep)).unwrap();
        for v in 0..16 {
            assert_eq!(sweep.rank_of(v), v);
        }
    }

    #[test]
    fn non_power_of_two_rejected() {
        let spec = GridSpec::cube(6, 2);
        assert!(MappingSet::paper_set(&spec).is_err());
    }

    #[test]
    fn non_uniform_grid_rejected() {
        let spec = GridSpec::new(&[4, 8]);
        assert!(MappingSet::paper_set(&spec).is_err());
    }

    #[test]
    fn get_by_label() {
        let spec = GridSpec::cube(2, 2);
        let set = MappingSet::paper_set(&spec).unwrap();
        assert!(set
            .get(MappingLabel::Spectral(Connectivity::Orthogonal))
            .is_some());
        assert!(set.get(MappingLabel::Curve(CurveKind::Snake)).is_none());
    }

    #[test]
    fn hilbert_order_adjacent_ranks_adjacent_cells() {
        let spec = GridSpec::cube(4, 2);
        let set = MappingSet::paper_set(&spec).unwrap();
        let h = set.get(MappingLabel::Curve(CurveKind::Hilbert)).unwrap();
        for p in 1..16 {
            let a = spec.coords_of(h.vertex_at(p - 1));
            let b = spec.coords_of(h.vertex_at(p));
            assert_eq!(GridSpec::manhattan(&a, &b), 1);
        }
    }
}
