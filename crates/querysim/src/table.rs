//! Plain-text table rendering for the `fig*` binaries.
//!
//! The experiment runners return typed rows; this module turns them into
//! the aligned text tables the benchmark harness prints, mirroring the
//! rows/series of the paper's figures.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are stringified by the caller).
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity must match header");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render with right-aligned columns separated by two spaces.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (c, h) in self.header.iter().enumerate() {
            width[c] = width[c].max(h.len());
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], width: &[usize], out: &mut String| {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                // Right-align.
                for _ in 0..width[c].saturating_sub(cell.len()) {
                    out.push(' ');
                }
                out.push_str(cell);
            }
            out.push('\n');
        };
        render_row(&self.header, &width, &mut out);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &width, &mut out);
        }
        out
    }
}

/// Format a float with 2 decimal places (the precision the paper's plots
/// can be read to).
pub fn fmt_f(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a percentage with 1 decimal place.
pub fn fmt_pct(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["name", "value"]);
        t.push_row(["a", "1"]);
        t.push_row(["long-name", "12345"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        // Right alignment pads the short cells.
        assert!(lines[2].starts_with("        a"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = TextTable::new(["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_f(1.234), "1.23");
        assert_eq!(fmt_pct(33.333), "33.3");
    }
}
