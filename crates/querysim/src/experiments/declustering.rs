//! Declustering experiment — parallel I/O over M disks.
//!
//! Declustering is another application on the paper's list: spread pages
//! over M disks so one query's pages can be fetched in parallel. With
//! round-robin placement, a query that touches *consecutive* pages
//! balances perfectly (response time ⌈pages/M⌉); a query whose pages alias
//! to few disks serialises. The mapping controls which pages a query
//! touches — so locality quality becomes parallel speed-up.

use crate::mappings::MappingSet;
use crate::workloads;
use serde::Serialize;
use slpm_graph::grid::GridSpec;
use slpm_storage::decluster::{query_response_time, Declustering, RoundRobin};
use slpm_storage::{PageLayout, PageMapper};

/// Configuration of the declustering experiment.
#[derive(Debug, Clone, Serialize)]
pub struct DeclusterConfig {
    /// Grid side (power of two).
    pub side: usize,
    /// Dimensionality.
    pub ndim: usize,
    /// Records per page.
    pub records_per_page: usize,
    /// Number of parallel disks.
    pub disks: usize,
    /// Query box side in cells.
    pub query_side: usize,
}

impl Default for DeclusterConfig {
    fn default() -> Self {
        DeclusterConfig {
            side: 16,
            ndim: 2,
            records_per_page: 8,
            disks: 4,
            query_side: 4,
        }
    }
}

impl DeclusterConfig {
    /// Reduced configuration for tests.
    pub fn quick() -> Self {
        DeclusterConfig {
            side: 8,
            ndim: 2,
            records_per_page: 4,
            disks: 2,
            query_side: 3,
        }
    }
}

/// One mapping's parallel-I/O summary.
#[derive(Debug, Clone, Serialize)]
pub struct DeclusterRow {
    /// Mapping name.
    pub mapping: String,
    /// Mean parallel response time (page-read units) over all query
    /// placements.
    pub mean_response: f64,
    /// Worst response time.
    pub max_response: usize,
    /// Mean ideal response (⌈pages/M⌉) — the lower bound given the pages
    /// the mapping touches.
    pub mean_ideal: f64,
    /// Mean ratio response/ideal ≥ 1 (1 = perfectly balanced).
    pub mean_imbalance: f64,
}

/// Run the declustering experiment over every placement of a
/// `query_side`-hypercube.
pub fn run(cfg: &DeclusterConfig) -> Vec<DeclusterRow> {
    let spec = GridSpec::cube(cfg.side, cfg.ndim);
    let set = MappingSet::paper_set(&spec).expect("power-of-two grid");
    let rr = RoundRobin::new(cfg.disks);
    let sides = vec![cfg.query_side; cfg.ndim];

    set.iter()
        .map(|(label, order)| {
            let mapper = PageMapper::new(order, PageLayout::new(cfg.records_per_page));
            let mut count = 0usize;
            let mut sum_resp = 0.0f64;
            let mut max_resp = 0usize;
            let mut sum_ideal = 0.0f64;
            let mut sum_ratio = 0.0f64;
            workloads::for_each_box(&spec, &sides, |b| {
                let vertices: Vec<usize> = b.indices(&spec).collect();
                let pages = mapper.pages_touched(vertices.iter().copied());
                let npages = pages.len();
                let resp = query_response_time(&mapper, &rr, vertices.iter().copied());
                let ideal = npages.div_ceil(rr.num_disks());
                count += 1;
                sum_resp += resp as f64;
                max_resp = max_resp.max(resp);
                sum_ideal += ideal as f64;
                sum_ratio += resp as f64 / ideal.max(1) as f64;
            });
            DeclusterRow {
                mapping: label.to_string(),
                mean_response: sum_resp / count as f64,
                max_response: max_resp,
                mean_ideal: sum_ideal / count as f64,
                mean_imbalance: sum_ratio / count as f64,
            }
        })
        .collect()
}

/// Render the rows as a text table.
pub fn render(rows: &[DeclusterRow], cfg: &DeclusterConfig) -> String {
    let mut t = crate::table::TextTable::new([
        "mapping",
        "mean response",
        "max response",
        "mean ideal",
        "imbalance",
    ]);
    for r in rows {
        t.push_row([
            r.mapping.clone(),
            format!("{:.2}", r.mean_response),
            r.max_response.to_string(),
            format!("{:.2}", r.mean_ideal),
            format!("{:.3}", r.mean_imbalance),
        ]);
    }
    format!(
        "== Declustering: {0}^{1} grid, {2} disks, {3}-cube queries, {4} rec/page ==\n{5}",
        cfg.side,
        cfg.ndim,
        cfg.disks,
        cfg.query_side,
        cfg.records_per_page,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_row_per_mapping_with_sane_values() {
        let rows = run(&DeclusterConfig::quick());
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.mean_response >= r.mean_ideal - 1e-9, "{}", r.mapping);
            assert!(r.mean_imbalance >= 1.0 - 1e-9);
            assert!(r.max_response >= 1);
        }
    }

    #[test]
    fn response_never_below_ideal() {
        for cfg in [DeclusterConfig::quick(), DeclusterConfig::default()] {
            for r in run(&cfg) {
                assert!(
                    r.mean_imbalance >= 1.0 - 1e-9,
                    "{}: imbalance {}",
                    r.mapping,
                    r.mean_imbalance
                );
            }
        }
    }

    #[test]
    fn render_lists_all_mappings() {
        let cfg = DeclusterConfig::quick();
        let s = render(&run(&cfg), &cfg);
        for name in ["Sweep", "Peano", "Gray", "Hilbert", "Spectral"] {
            assert!(s.contains(name));
        }
    }
}
