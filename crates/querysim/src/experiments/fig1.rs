//! Figure 1 — the fractal boundary effect.
//!
//! The paper's Figure 1 shows a space split into four quadrants and two
//! points P₁, P₂ that are Manhattan-distance-1 apart but land far apart in
//! 1-D under the fractal orders: 14 (Peano), 9 (Gray), 5 (Hilbert) — each
//! curve has such a pair near its quadrant boundary. The exact constants
//! depend on the orientation/reflection of the drawn curves (which the
//! paper does not specify); what is orientation-invariant — and what this
//! runner measures — is the *worst* adjacent-pair 1-D distance per mapping
//! (the arrangement bandwidth) with a witness pair. Under our curve
//! orientations the 4×4 cross-quadrant stretches are Peano 6, Gray 12,
//! Hilbert 13, and they grow with the grid side exactly as the paper's
//! boundary-effect argument predicts.

use crate::mappings::MappingSet;
use crate::workloads;
use serde::Serialize;
use slpm_graph::grid::GridSpec;

/// One mapping's boundary-effect summary.
#[derive(Debug, Clone, Serialize)]
pub struct BoundaryRow {
    /// Mapping name.
    pub mapping: String,
    /// Worst 1-D distance over all Manhattan-distance-1 pairs.
    pub worst_stretch: usize,
    /// A witness pair (grid coordinates) attaining the worst stretch.
    pub witness_a: Vec<usize>,
    /// Second point of the witness pair.
    pub witness_b: Vec<usize>,
}

/// Result of the Figure 1 experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Fig1Result {
    /// Grid side used.
    pub side: usize,
    /// One row per mapping, in comparison-set order.
    pub rows: Vec<BoundaryRow>,
}

impl Fig1Result {
    /// Row lookup by mapping name.
    pub fn row(&self, mapping: &str) -> Option<&BoundaryRow> {
        self.rows.iter().find(|r| r.mapping == mapping)
    }

    /// Render as a text table.
    pub fn render(&self) -> String {
        let mut t = crate::table::TextTable::new([
            "mapping",
            "worst adjacent 1-D distance",
            "witness pair",
        ]);
        for r in &self.rows {
            t.push_row([
                r.mapping.clone(),
                r.worst_stretch.to_string(),
                format!("{:?} ↔ {:?}", r.witness_a, r.witness_b),
            ]);
        }
        format!(
            "== Figure 1: fractal boundary effect on a {0}×{0} grid ==\n{1}",
            self.side,
            t.render()
        )
    }
}

/// Run the boundary-effect experiment on a `side × side` 2-D grid
/// (`side` must be a power of two for the fractal curves).
pub fn run(side: usize) -> Fig1Result {
    let spec = GridSpec::cube(side, 2);
    let set = MappingSet::paper_set(&spec).expect("power-of-two 2-D grid");
    let mut rows = Vec::new();
    for (label, order) in set.iter() {
        let mut worst = 0usize;
        let mut witness = (0usize, 0usize);
        workloads::for_each_pair_at_distance(&spec, 1, |i, j| {
            let d = order.distance(i, j);
            if d > worst {
                worst = d;
                witness = (i, j);
            }
        });
        rows.push(BoundaryRow {
            mapping: label.to_string(),
            worst_stretch: worst,
            witness_a: spec.coords_of(witness.0),
            witness_b: spec.coords_of(witness.1),
        });
    }
    Fig1Result { side, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_by_four_boundary_effect() {
        // The qualitative claim of Figure 1: every fractal curve has an
        // adjacent pair mapped ≥ 5 apart (the exact constants 14/9/5 in the
        // paper depend on its drawn curve orientations; ours give 6/12/13).
        let r = run(4);
        for name in ["Peano", "Gray", "Hilbert"] {
            let v = r.row(name).unwrap().worst_stretch;
            assert!(v >= 5, "{name} worst stretch {v} < 5");
        }
        // Pin the orientation-specific constants of *this* implementation
        // so regressions in the curves are caught.
        assert_eq!(r.row("Peano").unwrap().worst_stretch, 6);
        assert_eq!(r.row("Gray").unwrap().worst_stretch, 12);
        assert_eq!(r.row("Hilbert").unwrap().worst_stretch, 13);
        // The witness pairs really are adjacent.
        for row in &r.rows {
            assert_eq!(
                GridSpec::manhattan(&row.witness_a, &row.witness_b),
                1,
                "{}",
                row.mapping
            );
        }
    }

    #[test]
    fn spectral_beats_every_fractal_on_worst_adjacent_stretch() {
        let r = run(4);
        let spectral = r.row("Spectral").unwrap().worst_stretch;
        for name in ["Peano", "Gray", "Hilbert"] {
            let v = r.row(name).unwrap().worst_stretch;
            assert!(spectral <= v, "Spectral {spectral} worse than {name} {v}");
        }
    }

    #[test]
    fn render_contains_all_mappings() {
        let r = run(4);
        let s = r.render();
        for name in ["Sweep", "Peano", "Gray", "Hilbert", "Spectral"] {
            assert!(s.contains(name));
        }
    }

    #[test]
    fn eight_by_eight_grows_fractal_stretch() {
        // Doubling the grid side grows the fractals' boundary effect (the
        // jump scales with space size), demonstrating "non-deterministic
        // results" the paper complains about.
        let r4 = run(4);
        let r8 = run(8);
        for name in ["Peano", "Gray"] {
            assert!(
                r8.row(name).unwrap().worst_stretch > r4.row(name).unwrap().worst_stretch,
                "{name} stretch did not grow with the grid"
            );
        }
    }
}
