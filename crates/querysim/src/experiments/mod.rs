//! One runner per paper figure, plus ablations.
//!
//! Each runner produces a serialisable, renderable result so the same code
//! path feeds the `fig*` binaries, the Criterion benches, and the
//! EXPERIMENTS.md regeneration.

pub mod ablation;
pub mod declustering;
pub mod fig1;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod knn;
pub mod point_cloud;
pub mod rtree_packing;
pub mod storage_io;

use crate::table::TextTable;
use serde::Serialize;

/// One plotted series: `(x, y)` points with a label, e.g. "Hilbert".
#[derive(Debug, Clone, Serialize)]
pub struct FigureSeries {
    /// Series label (mapping name, possibly with a dimension suffix).
    pub label: String,
    /// `(x, y)` points in x order.
    pub points: Vec<(f64, f64)>,
}

/// A reproduced figure: several series over a shared x-axis.
#[derive(Debug, Clone, Serialize)]
pub struct FigureData {
    /// Figure identifier, e.g. `"fig5a"`.
    pub id: String,
    /// Human title, e.g. `"Nearest neighbour worst case (5-D)"`.
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// y-axis label.
    pub y_label: String,
    /// The series, in the paper's legend order.
    pub series: Vec<FigureSeries>,
}

impl FigureData {
    /// Render as a table with one row per x value and one column per
    /// series — the textual equivalent of the paper's plot.
    pub fn to_table(&self) -> TextTable {
        let mut header = vec![self.x_label.clone()];
        header.extend(self.series.iter().map(|s| s.label.clone()));
        let mut table = TextTable::new(header);
        let xs: Vec<f64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|p| p.0).collect())
            .unwrap_or_default();
        for (i, x) in xs.iter().enumerate() {
            let mut row = vec![format!("{x:.1}")];
            for s in &self.series {
                let y = s.points.get(i).map(|p| p.1).unwrap_or(f64::NAN);
                row.push(format!("{y:.2}"));
            }
            table.push_row(row);
        }
        table
    }

    /// Look up a series by label.
    pub fn series(&self, label: &str) -> Option<&FigureSeries> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Render the full figure (title + table).
    pub fn render(&self) -> String {
        format!(
            "== {} ({}) ==\n{} vs {}\n\n{}",
            self.title,
            self.id,
            self.y_label,
            self.x_label,
            self.to_table().render()
        )
    }

    /// Render as CSV (header: x, then one column per series) for external
    /// plotting tools.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push('x');
        for s in &self.series {
            out.push(',');
            out.push_str(&s.label);
        }
        out.push('\n');
        let xs: Vec<f64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|p| p.0).collect())
            .unwrap_or_default();
        for (i, x) in xs.iter().enumerate() {
            out.push_str(&format!("{x}"));
            for s in &self.series {
                let y = s.points.get(i).map(|p| p.1).unwrap_or(f64::NAN);
                out.push_str(&format!(",{y}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureData {
        FigureData {
            id: "figX".into(),
            title: "Sample".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![
                FigureSeries {
                    label: "A".into(),
                    points: vec![(1.0, 2.0), (2.0, 4.0)],
                },
                FigureSeries {
                    label: "B".into(),
                    points: vec![(1.0, 3.0), (2.0, 9.0)],
                },
            ],
        }
    }

    #[test]
    fn table_has_row_per_x() {
        let t = sample().to_table();
        assert_eq!(t.num_rows(), 2);
        let rendered = t.render();
        assert!(rendered.contains("A"));
        assert!(rendered.contains("9.00"));
    }

    #[test]
    fn series_lookup() {
        let f = sample();
        assert!(f.series("A").is_some());
        assert!(f.series("C").is_none());
    }

    #[test]
    fn render_includes_title() {
        assert!(sample().render().contains("Sample"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,A,B");
        assert_eq!(lines[1], "1,2,3");
        assert_eq!(lines[2], "2,4,9");
    }
}
