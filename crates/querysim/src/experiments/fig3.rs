//! Figure 3 — the paper's worked 3×3 example.
//!
//! The paper walks the whole algorithm on a 3×3 grid: the graph (3b), its
//! Laplacian (3c), λ₂ = 1 with Fiedler vector
//! X = (−0.01, −0.29, −0.57, 0.28, 0, −0.28, 0.57, 0.29, 0.01) and the
//! resulting spectral order S = (2, 1, 5, 0, 4, 8, 3, 7, 6) (3d/3e).
//!
//! λ₂ of the 3×3 grid has **multiplicity two** (the x- and y-modes are
//! degenerate), so the Fiedler vector — and hence S — is not unique: the
//! paper's X is one representative from the 2-dimensional eigenspace, and a
//! correct implementation may return a different one. What this runner
//! verifies is everything that *is* well-defined: the Laplacian matrix
//! entries, λ₂ = 1, the eigen-residual, and that the produced order is an
//! optimal-relaxation representative (its generating vector attains λ₂).

use serde::Serialize;
use slpm_graph::grid::GridSpec;
use spectral_lpm::{objective, SpectralConfig, SpectralMapper};

/// Result of re-running the paper's worked example.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Result {
    /// The 9×9 Laplacian, dense row-major (matches Figure 3c up to vertex
    /// numbering).
    pub laplacian: Vec<Vec<f64>>,
    /// λ₂ (paper: 1).
    pub lambda2: f64,
    /// The computed Fiedler vector (one valid representative).
    pub fiedler_vector: Vec<f64>,
    /// The spectral order as a visit sequence (vertex ids by ascending
    /// Fiedler value) — the paper's S.
    pub visit_sequence: Vec<usize>,
    /// Eigen-residual ‖Lv − λ₂v‖.
    pub residual: f64,
    /// σ(G, v) — must equal λ₂ (Theorems 1–3).
    pub objective_value: f64,
}

impl Fig3Result {
    /// Render the worked example like the paper's panels.
    pub fn render(&self) -> String {
        let mut s = String::from("== Figure 3: Spectral LPM on the 3×3 grid ==\n");
        s.push_str("Laplacian L(G):\n");
        for row in &self.laplacian {
            let cells: Vec<String> = row.iter().map(|v| format!("{v:>3.0}")).collect();
            s.push_str(&format!("  [{}]\n", cells.join(" ")));
        }
        s.push_str(&format!("lambda_2 = {:.6}\n", self.lambda2));
        let xs: Vec<String> = self
            .fiedler_vector
            .iter()
            .map(|v| format!("{v:.2}"))
            .collect();
        s.push_str(&format!("X = ({})\n", xs.join(", ")));
        s.push_str(&format!("S = {:?}\n", self.visit_sequence));
        s.push_str(&format!(
            "residual = {:.2e}, objective sigma(G, X) = {:.6}\n",
            self.residual, self.objective_value
        ));
        s
    }
}

/// Run the 3×3 worked example.
pub fn run() -> Fig3Result {
    let spec = GridSpec::new(&[3, 3]);
    let graph = spec.graph(Default::default());
    let mapper = SpectralMapper::new(SpectralConfig::default());
    let mapping = mapper.map_graph(&graph).expect("3×3 grid is connected");

    let lap = graph.laplacian();
    let laplacian: Vec<Vec<f64>> = (0..9)
        .map(|i| (0..9).map(|j| lap.get(i, j)).collect())
        .collect();

    let objective_value = objective::quadratic_form(&graph, &mapping.fiedler.vector);

    Fig3Result {
        laplacian,
        lambda2: mapping.fiedler.lambda2,
        fiedler_vector: mapping.fiedler.vector.clone(),
        visit_sequence: mapping.order.permutation().to_vec(),
        residual: mapping.fiedler.residual,
        objective_value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda2_is_one() {
        let r = run();
        assert!((r.lambda2 - 1.0).abs() < 1e-7, "λ₂ = {}", r.lambda2);
        assert!(r.residual < 1e-6);
    }

    #[test]
    fn laplacian_matches_figure_3c() {
        // Figure 3c (vertex ids row-major: 0..2 top row, 3..5 middle, 6..8
        // bottom — our ids are row-major too, so entries must match the
        // grid Laplacian: corners degree 2, edges 3, centre 4.
        let r = run();
        let l = &r.laplacian;
        assert_eq!(l[0][0], 2.0);
        assert_eq!(l[1][1], 3.0);
        assert_eq!(l[4][4], 4.0);
        assert_eq!(l[0][1], -1.0);
        assert_eq!(l[0][3], -1.0);
        assert_eq!(l[0][4], 0.0);
        // Symmetric with zero row sums.
        for i in 0..9 {
            assert!((l[i].iter().sum::<f64>()).abs() < 1e-12);
            for j in 0..9 {
                assert_eq!(l[i][j], l[j][i]);
            }
        }
    }

    #[test]
    fn objective_attains_lambda2() {
        let r = run();
        assert!(
            (r.objective_value - r.lambda2).abs() < 1e-7,
            "σ = {} vs λ₂ = {}",
            r.objective_value,
            r.lambda2
        );
    }

    #[test]
    fn visit_sequence_is_permutation_of_nine() {
        let r = run();
        let mut s = r.visit_sequence.clone();
        s.sort_unstable();
        assert_eq!(s, (0..9).collect::<Vec<usize>>());
    }

    #[test]
    fn fiedler_vector_in_lambda2_eigenspace() {
        // L v = v (λ₂ = 1): check component-wise.
        let spec = GridSpec::new(&[3, 3]);
        let lap = spec.graph(Default::default()).laplacian();
        let r = run();
        let lv = lap.matvec(&r.fiedler_vector).unwrap();
        for i in 0..9 {
            assert!(
                (lv[i] - r.fiedler_vector[i]).abs() < 1e-6,
                "component {i}: {} vs {}",
                lv[i],
                r.fiedler_vector[i]
            );
        }
    }

    #[test]
    fn paper_vector_is_also_valid() {
        // The paper's X must be (numerically, to its 2-decimal printing) an
        // eigenvector for λ₂ = 1 as well — confirming that the discrepancy
        // with our representative is pure eigenspace rotation.
        let spec = GridSpec::new(&[3, 3]);
        let lap = spec.graph(Default::default()).laplacian();
        let x = [-0.01, -0.29, -0.57, 0.28, 0.0, -0.28, 0.57, 0.29, 0.01];
        let lx = lap.matvec(&x).unwrap();
        for i in 0..9 {
            // Generous tolerance: the paper prints 2 decimals.
            assert!(
                (lx[i] - x[i]).abs() < 0.06,
                "paper vector violates L x = x at {i}: {} vs {}",
                lx[i],
                x[i]
            );
        }
    }

    #[test]
    fn render_shows_key_quantities() {
        let s = run().render();
        assert!(s.contains("lambda_2 = 1.0000"));
        assert!(s.contains("Laplacian"));
        assert!(s.contains("S = "));
    }
}
