//! Figure 6 — range-query locality in 4-D.
//!
//! The paper's two panels use two related workloads (its own wording):
//!
//! * **6a** — "the maximum difference between the maximum and minimum
//!   one-dimensional points for **a certain range query**": a fixed
//!   (hypercubic) query shape whose volume is `p`% of the space, max span
//!   over all placements. [`run_worst_case`].
//! * **6b** — "for **all possible partial range queries** with a certain
//!   size […] the standard deviation of the difference": every box shape
//!   within a tolerance of the target volume (including elongated
//!   partial-match shapes such as `1×1×8×8`), every placement; the spread
//!   of spans measures fairness. [`run_fairness`].
//!
//! [`run_worst_case_partial`] additionally reports the worst span over the
//! partial-query workload — not a paper panel, but the harshest stress of
//! the boundary effect (every mapping has some adversarial shape, and the
//! interesting signal is how fast each saturates).

use crate::experiments::{FigureData, FigureSeries};
use crate::mappings::{MappingLabel, MappingSet};
use crate::metrics::{self, SpanStats};
use crate::workloads;
use crossbeam::thread;
use serde::Serialize;
use slpm_graph::grid::GridSpec;

/// Configuration for the Figure 6 experiments.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6Config {
    /// Grid side (power of two). Paper-scale default 8 (8⁴ = 4096 points).
    pub side: usize,
    /// Dimensionality (paper: 4).
    pub ndim: usize,
    /// Query sizes as percent of the space volume.
    pub percents: Vec<f64>,
    /// Multiplicative volume tolerance for partial-shape enumeration (see
    /// [`workloads::shapes_for_volume_percent`]).
    pub shape_tolerance: f64,
}

impl Default for Fig6Config {
    fn default() -> Self {
        Fig6Config {
            side: 8,
            ndim: 4,
            percents: vec![2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
            shape_tolerance: 1.25,
        }
    }
}

impl Fig6Config {
    /// A reduced configuration for fast tests.
    pub fn quick() -> Self {
        Fig6Config {
            side: 4,
            ndim: 3,
            percents: vec![12.5, 50.0],
            shape_tolerance: 1.25,
        }
    }
}

/// How one sweep variant turns per-query spans into a per-mapping series.
enum Aggregation {
    /// Cubic queries, max span over placements (panel 6a).
    CubicMax,
    /// Partial queries, stddev of span over shapes × placements (panel 6b).
    PartialStdDev,
    /// Partial queries, max span (extra stress experiment).
    PartialMax,
}

fn stats_for(
    spec: &GridSpec,
    order: &spectral_lpm::LinearOrder,
    percent: f64,
    cfg: &Fig6Config,
    agg: &Aggregation,
) -> f64 {
    match agg {
        Aggregation::CubicMax => {
            let side = workloads::side_for_volume_percent(spec, percent);
            metrics::range_span_stats(spec, order, side).max as f64
        }
        Aggregation::PartialStdDev => {
            metrics::partial_range_span_stats(spec, order, percent, cfg.shape_tolerance).stddev
        }
        Aggregation::PartialMax => {
            metrics::partial_range_span_stats(spec, order, percent, cfg.shape_tolerance).max as f64
        }
    }
}

fn sweep(cfg: &Fig6Config, agg: Aggregation) -> (GridSpec, Vec<FigureSeries>) {
    let spec = GridSpec::cube(cfg.side, cfg.ndim);
    let set = MappingSet::paper_set(&spec).expect("power-of-two grid");
    let labels: Vec<MappingLabel> = set.iter().map(|(l, _)| l).collect();
    let mut series: Vec<FigureSeries> = Vec::new();
    thread::scope(|s| {
        let handles: Vec<_> = set
            .iter()
            .map(|(label, order)| {
                let spec = &spec;
                let cfg_ref = cfg;
                let agg = &agg;
                s.spawn(move |_| {
                    let points: Vec<(f64, f64)> = cfg_ref
                        .percents
                        .iter()
                        .map(|&p| (p, stats_for(spec, order, p, cfg_ref, agg)))
                        .collect();
                    (label.to_string(), points)
                })
            })
            .collect();
        for h in handles {
            let (label, points) = h.join().expect("metric thread panicked");
            series.push(FigureSeries { label, points });
        }
    })
    .expect("crossbeam scope");
    series.sort_by_key(|s| labels.iter().position(|l| l.to_string() == s.label));
    (spec, series)
}

/// Figure 6a: worst-case span of a hypercubic range query per query size.
pub fn run_worst_case(cfg: &Fig6Config) -> FigureData {
    let (spec, series) = sweep(cfg, Aggregation::CubicMax);
    FigureData {
        id: "fig6a".into(),
        title: format!(
            "Range-query worst case (cubic queries), {}^{} grid ({} points)",
            cfg.side,
            cfg.ndim,
            spec.num_points()
        ),
        x_label: "Range query size (percent)".into(),
        y_label: "Max span (max - min 1-D value)".into(),
        series,
    }
}

/// Figure 6b: standard deviation of spans over all partial range queries.
pub fn run_fairness(cfg: &Fig6Config) -> FigureData {
    let (spec, series) = sweep(cfg, Aggregation::PartialStdDev);
    FigureData {
        id: "fig6b".into(),
        title: format!(
            "Range-query fairness (partial queries), {}^{} grid ({} points)",
            cfg.side,
            cfg.ndim,
            spec.num_points()
        ),
        x_label: "Range query size (percent)".into(),
        y_label: "StdDev of span".into(),
        series,
    }
}

/// Extra experiment: worst span over the *partial* query workload.
pub fn run_worst_case_partial(cfg: &Fig6Config) -> FigureData {
    let (spec, series) = sweep(cfg, Aggregation::PartialMax);
    FigureData {
        id: "fig6a-partial".into(),
        title: format!(
            "Range-query worst case (partial queries), {}^{} grid ({} points)",
            cfg.side,
            cfg.ndim,
            spec.num_points()
        ),
        x_label: "Range query size (percent)".into(),
        y_label: "Max span (max - min 1-D value)".into(),
        series,
    }
}

/// Detailed span statistics per mapping at one query size — used by the
/// storage layer's experiments and the benches.
pub fn span_stats_at(cfg: &Fig6Config, percent: f64) -> Vec<(String, SpanStats)> {
    let spec = GridSpec::cube(cfg.side, cfg.ndim);
    let set = MappingSet::paper_set(&spec).expect("power-of-two grid");
    set.iter()
        .map(|(label, order)| {
            (
                label.to_string(),
                metrics::partial_range_span_stats(&spec, order, percent, cfg.shape_tolerance),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_has_five_series_and_monotone_x() {
        let f = run_worst_case(&Fig6Config::quick());
        assert_eq!(f.series.len(), 5);
        for s in &f.series {
            assert_eq!(s.points.len(), 2);
            assert!(s.points[0].0 < s.points[1].0);
        }
    }

    #[test]
    fn spectral_beats_fractals_worst_case() {
        // The reproducible core of Figure 6a: Spectral's worst span is
        // below every *fractal* mapping's at every query size. (Sweep —
        // whose span for a cubic query is placement-independent — can win
        // this particular metric on a symmetric hypercube; see
        // EXPERIMENTS.md for the discussion.)
        let f = run_worst_case(&Fig6Config::quick());
        let spectral = &f.series("Spectral").unwrap().points;
        for fractal in ["Peano", "Gray", "Hilbert"] {
            let pts = &f.series(fractal).unwrap().points;
            for (i, &(_, y)) in pts.iter().enumerate() {
                assert!(
                    spectral[i].1 <= y + 1e-9,
                    "Spectral {} > {fractal} {y} at x index {i}",
                    spectral[i].1
                );
            }
        }
    }

    #[test]
    fn spectral_fairest_at_small_sizes() {
        // Figure 6b's headline: Spectral has the lowest span spread for
        // small/medium queries (fractal spreads collapse only when the
        // query approaches the whole space).
        let f = run_fairness(&Fig6Config::quick());
        let spectral_y = f.series("Spectral").unwrap().points[0].1;
        for other in ["Sweep", "Peano", "Gray", "Hilbert"] {
            let y = f.series(other).unwrap().points[0].1;
            assert!(
                spectral_y <= y + 1e-9,
                "Spectral stddev {spectral_y} > {other} {y} at the smallest size"
            );
        }
    }

    #[test]
    fn fairness_stddevs_are_finite_nonnegative() {
        let f = run_fairness(&Fig6Config::quick());
        for s in &f.series {
            for &(_, y) in &s.points {
                assert!(y.is_finite() && y >= 0.0);
            }
        }
    }

    #[test]
    fn partial_worst_case_dominates_cubic() {
        // The partial workload includes (a neighbourhood of) the cubic
        // shape, so its worst span is ≥ the cubic worst span.
        let cfg = Fig6Config::quick();
        let cubic = run_worst_case(&cfg);
        let partial = run_worst_case_partial(&cfg);
        for s in &cubic.series {
            let p = partial.series(&s.label).unwrap();
            for (i, &(_, y)) in s.points.iter().enumerate() {
                assert!(
                    p.points[i].1 >= y - 1e-9,
                    "{}: partial {} < cubic {y}",
                    s.label,
                    p.points[i].1
                );
            }
        }
    }

    #[test]
    fn full_space_query_has_deterministic_span() {
        // A query covering 100% of the space has exactly one placement and
        // span n−1 for every mapping (full scan) with stddev 0.
        let cfg = Fig6Config {
            side: 4,
            ndim: 2,
            percents: vec![100.0],
            shape_tolerance: 1.05,
        };
        let worst = run_worst_case(&cfg);
        let fair = run_fairness(&cfg);
        for s in &worst.series {
            assert_eq!(s.points[0].1, 15.0, "{}", s.label);
        }
        for s in &fair.series {
            assert_eq!(s.points[0].1, 0.0, "{}", s.label);
        }
    }

    #[test]
    fn span_stats_at_returns_all_mappings() {
        let stats = span_stats_at(&Fig6Config::quick(), 12.5);
        assert_eq!(stats.len(), 5);
        for (_, s) in &stats {
            assert!(s.count > 0);
        }
    }
}
