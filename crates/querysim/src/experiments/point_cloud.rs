//! Point-cloud experiment: Spectral LPM on *non-grid* data.
//!
//! The paper's algorithm takes "a set of multi-dimensional points" — not
//! necessarily a full grid — while the fractal competitors always order the
//! points by their position on a curve filling the bounding box, oblivious
//! to which cells are actually occupied. On clustered data (the common case
//! for GIS) that difference matters: the curve wastes its locality budget
//! on empty space, while the spectral order adapts to the occupied cells.
//!
//! Workload: seeded Gaussian-ish clusters of integer points. Graph model:
//! inverse-distance weights within a radius, the radius grown until the
//! graph connects (Section 4's weighted-graph extensibility doing real
//! work). Metrics: stretch over the neighbourhood-graph edges and kNN scan
//! windows.

use crate::metrics::SpanStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use slpm_graph::points::PointSet;
use slpm_graph::{traversal, Graph};
use slpm_sfc::{HilbertCurve, PeanoCurve, SpaceFillingCurve};
use spectral_lpm::{LinearOrder, SpectralConfig, SpectralMapper};

/// Configuration of the point-cloud experiment.
#[derive(Debug, Clone, Serialize)]
pub struct PointCloudConfig {
    /// Number of clusters.
    pub clusters: usize,
    /// Points drawn per cluster (before dedup).
    pub points_per_cluster: usize,
    /// Cluster radius (uniform box half-width).
    pub spread: i64,
    /// Bounding box side for cluster centres (power of two ≥ needed).
    pub extent: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PointCloudConfig {
    fn default() -> Self {
        PointCloudConfig {
            clusters: 5,
            points_per_cluster: 60,
            spread: 4,
            extent: 64,
            seed: 2003,
        }
    }
}

impl PointCloudConfig {
    /// Reduced configuration for tests.
    pub fn quick() -> Self {
        PointCloudConfig {
            clusters: 3,
            points_per_cluster: 20,
            spread: 2,
            extent: 32,
            seed: 7,
        }
    }
}

/// Generate the clustered point set (deduplicated, sorted — see
/// [`PointSet::new`]).
pub fn generate_points(cfg: &PointCloudConfig) -> PointSet {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut pts = Vec::new();
    for _ in 0..cfg.clusters {
        let cx = rng.gen_range(cfg.spread..cfg.extent - cfg.spread);
        let cy = rng.gen_range(cfg.spread..cfg.extent - cfg.spread);
        for _ in 0..cfg.points_per_cluster {
            // Sum of two uniforms ≈ triangular — clustered around centre.
            let dx = (rng.gen_range(-cfg.spread..=cfg.spread)
                + rng.gen_range(-cfg.spread..=cfg.spread))
                / 2;
            let dy = (rng.gen_range(-cfg.spread..=cfg.spread)
                + rng.gen_range(-cfg.spread..=cfg.spread))
                / 2;
            pts.push(vec![
                (cx + dx).clamp(0, cfg.extent - 1),
                (cy + dy).clamp(0, cfg.extent - 1),
            ]);
        }
    }
    PointSet::new(pts).expect("non-empty, uniform dimensionality")
}

/// Build a connected weighted neighbourhood graph by growing the
/// inverse-distance radius until the point set connects.
pub fn connected_graph(points: &PointSet) -> (Graph, u64) {
    let mut radius = 1u64;
    loop {
        let g = points.inverse_distance_graph(radius);
        if traversal::is_connected(&g) {
            return (g, radius);
        }
        radius *= 2;
        assert!(
            radius < 1 << 30,
            "point set cannot be connected (duplicate-free singleton?)"
        );
    }
}

/// One mapping's summary on the point cloud.
#[derive(Debug, Clone, Serialize)]
pub struct PointCloudRow {
    /// Mapping name.
    pub mapping: String,
    /// Mean 1-D stretch over neighbourhood-graph edges, weighted by edge
    /// weight (close pairs count more).
    pub weighted_stretch: f64,
    /// Worst 1-D distance over edges.
    pub max_stretch: usize,
    /// Mean kNN (k=4) scan-window radius.
    pub knn_window: f64,
}

/// kNN set within the point set by Manhattan distance (ties included).
fn knn_of(points: &PointSet, center: usize, k: usize) -> Vec<usize> {
    let mut by_dist: Vec<(u64, usize)> = (0..points.len())
        .filter(|&i| i != center)
        .map(|i| (points.manhattan(center, i), i))
        .collect();
    by_dist.sort_unstable();
    if by_dist.len() <= k {
        return by_dist.into_iter().map(|(_, i)| i).collect();
    }
    let cutoff = by_dist[k - 1].0;
    by_dist
        .into_iter()
        .take_while(|&(d, _)| d <= cutoff)
        .map(|(_, i)| i)
        .collect()
}

fn evaluate(name: &str, order: &LinearOrder, points: &PointSet, graph: &Graph) -> PointCloudRow {
    let mut wsum = 0.0;
    let mut dsum = 0.0;
    let mut max_stretch = 0usize;
    for (u, v, w) in graph.edges() {
        let d = order.distance(u, v);
        wsum += w;
        dsum += w * d as f64;
        max_stretch = max_stretch.max(d);
    }
    let windows = SpanStats::from_observations((0..points.len()).map(|c| {
        let r = order.rank_of(c);
        knn_of(points, c, 4)
            .into_iter()
            .map(|v| order.rank_of(v).abs_diff(r))
            .max()
            .unwrap_or(0)
    }));
    PointCloudRow {
        mapping: name.to_string(),
        weighted_stretch: dsum / wsum.max(f64::MIN_POSITIVE),
        max_stretch,
        knn_window: windows.mean,
    }
}

/// Run the point-cloud comparison: Spectral (on the adaptive weighted
/// graph) versus curve orders over the bounding box.
pub fn run(cfg: &PointCloudConfig) -> Vec<PointCloudRow> {
    let points = generate_points(cfg);
    let (graph, _radius) = connected_graph(&points);

    // Curve orders: encode each point's coordinates on the bounding box.
    let bits = (64 - (cfg.extent as u64 - 1).leading_zeros()).max(1);
    let hilbert = HilbertCurve::new(2, bits).expect("bits within budget");
    let zorder = PeanoCurve::new(2, bits).expect("bits within budget");
    let encode = |curve: &dyn SpaceFillingCurve| -> LinearOrder {
        let codes: Vec<u64> = points
            .points()
            .iter()
            .map(|p| {
                let c: Vec<u32> = p.iter().map(|&x| x as u32).collect();
                curve.encode(&c)
            })
            .collect();
        LinearOrder::from_codes(&codes)
    };
    // Sweep = lexicographic order of coordinates = the PointSet's own
    // sorted order = identity ranks.
    let sweep = LinearOrder::identity(points.len());
    let spectral = SpectralMapper::new(SpectralConfig::default())
        .map_graph(&graph)
        .expect("graph grown to connectivity")
        .order;

    vec![
        evaluate("Sweep", &sweep, &points, &graph),
        evaluate("Peano", &encode(&zorder), &points, &graph),
        evaluate("Hilbert", &encode(&hilbert), &points, &graph),
        evaluate("Spectral", &spectral, &points, &graph),
    ]
}

/// Render rows as a text table.
pub fn render(rows: &[PointCloudRow], cfg: &PointCloudConfig) -> String {
    let mut t = crate::table::TextTable::new([
        "mapping",
        "weighted stretch",
        "max stretch",
        "kNN window (k=4)",
    ]);
    for r in rows {
        t.push_row([
            r.mapping.clone(),
            format!("{:.2}", r.weighted_stretch),
            r.max_stretch.to_string(),
            format!("{:.2}", r.knn_window),
        ]);
    }
    format!(
        "== Point cloud: {} clusters x {} points, extent {} ==\n{}",
        cfg.clusters,
        cfg.points_per_cluster,
        cfg.extent,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_seeded_and_in_bounds() {
        let cfg = PointCloudConfig::quick();
        let a = generate_points(&cfg);
        let b = generate_points(&cfg);
        assert_eq!(a.points(), b.points());
        for p in a.points() {
            assert!(p.iter().all(|&x| (0..cfg.extent).contains(&x)));
        }
        assert!(a.len() > 10);
    }

    #[test]
    fn graph_grows_until_connected() {
        let points = generate_points(&PointCloudConfig::quick());
        let (g, radius) = connected_graph(&points);
        assert!(traversal::is_connected(&g));
        assert!(radius >= 1);
    }

    #[test]
    fn run_produces_four_rows() {
        let rows = run(&PointCloudConfig::quick());
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.weighted_stretch > 0.0, "{}", r.mapping);
            assert!(r.max_stretch >= 1);
            assert!(r.knn_window >= 0.0);
        }
    }

    #[test]
    fn spectral_wins_worst_case_and_ties_weighted_stretch() {
        // On clustered (non-grid) data the spectral order, which sees only
        // occupied cells, has the smallest worst-case edge stretch by a
        // clear margin (its global optimisation caps the tail), and its
        // mean weighted stretch is within 10% of the best curve (which can
        // narrowly win the average by accident of cluster placement).
        let rows = run(&PointCloudConfig::default());
        let row = |name: &str| rows.iter().find(|r| r.mapping == name).unwrap();
        let spectral = row("Spectral");
        for other in ["Sweep", "Peano", "Hilbert"] {
            assert!(
                spectral.max_stretch < row(other).max_stretch,
                "Spectral max {} vs {other} {}",
                spectral.max_stretch,
                row(other).max_stretch
            );
        }
        let best_weighted = rows
            .iter()
            .map(|r| r.weighted_stretch)
            .fold(f64::INFINITY, f64::min);
        assert!(
            spectral.weighted_stretch <= 1.10 * best_weighted,
            "Spectral weighted {} vs best {best_weighted}",
            spectral.weighted_stretch
        );
    }

    #[test]
    fn render_lists_mappings() {
        let cfg = PointCloudConfig::quick();
        let s = render(&run(&cfg), &cfg);
        for name in ["Sweep", "Peano", "Hilbert", "Spectral"] {
            assert!(s.contains(name));
        }
    }
}
