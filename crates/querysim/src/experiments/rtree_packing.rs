//! R-tree packing experiment — one of the applications the paper lists.
//!
//! Pack a static R-tree (Kamel–Faloutsos style) by each linear order and
//! measure (a) packing quality — total leaf MBR volume and margin — and
//! (b) query performance — node/leaf accesses over an exhaustive range-
//! query workload.
//!
//! Measured outcome (see EXPERIMENTS.md): this application *reverses* the
//! paper's story. R-tree packing rewards tiling — leaves should be compact
//! boxes — and the fractal curves' quadrant recursion produces exactly
//! that, while the spectral order's Fiedler level-sets form overlapping
//! diagonal bands with fat MBRs. A useful reminder that "optimal for the
//! 2-sum relaxation" is not "optimal for every downstream cost model".

use crate::mappings::MappingSet;
use crate::workloads;
use serde::Serialize;
use slpm_graph::grid::GridSpec;
use slpm_storage::{Mbr, PackedRTree};

/// Configuration of the R-tree packing experiment.
#[derive(Debug, Clone, Serialize)]
pub struct RtreeConfig {
    /// Grid side (power of two).
    pub side: usize,
    /// Dimensionality.
    pub ndim: usize,
    /// Leaf/internal fanout.
    pub fanout: usize,
    /// Query box side in cells.
    pub query_side: usize,
}

impl Default for RtreeConfig {
    fn default() -> Self {
        RtreeConfig {
            side: 16,
            ndim: 2,
            fanout: 8,
            query_side: 4,
        }
    }
}

impl RtreeConfig {
    /// Reduced configuration for tests.
    pub fn quick() -> Self {
        RtreeConfig {
            side: 8,
            ndim: 2,
            fanout: 4,
            query_side: 2,
        }
    }
}

/// One mapping's packing summary.
#[derive(Debug, Clone, Serialize)]
pub struct RtreeRow {
    /// Mapping name.
    pub mapping: String,
    /// Sum of leaf MBR volumes (lower = tighter packing).
    pub leaf_volume: u128,
    /// Sum of leaf MBR margins.
    pub leaf_margin: i64,
    /// Total node accesses over the query workload.
    pub nodes_visited: usize,
    /// Total leaf accesses over the query workload.
    pub leaves_visited: usize,
    /// Total results returned (identical for every mapping — correctness
    /// cross-check).
    pub results: usize,
}

/// Run the packing experiment over every placement of a
/// `query_side`-hypercube.
pub fn run(cfg: &RtreeConfig) -> Vec<RtreeRow> {
    let spec = GridSpec::cube(cfg.side, cfg.ndim);
    let set = MappingSet::paper_set(&spec).expect("power-of-two grid");
    let points: Vec<Vec<i64>> = spec
        .iter_points()
        .map(|c| c.into_iter().map(|x| x as i64).collect())
        .collect();
    let sides = vec![cfg.query_side; cfg.ndim];

    set.iter()
        .map(|(label, order)| {
            let tree = PackedRTree::pack(&points, order, cfg.fanout);
            let mut nodes = 0usize;
            let mut leaves = 0usize;
            let mut results = 0usize;
            workloads::for_each_box(&spec, &sides, |b| {
                let q = Mbr {
                    lo: b.lo.iter().map(|&x| x as i64).collect(),
                    hi: b.hi.iter().map(|&x| x as i64).collect(),
                };
                let (_, cost) = tree.range_query(&q);
                nodes += cost.nodes_visited;
                leaves += cost.leaves_visited;
                results += cost.results;
            });
            RtreeRow {
                mapping: label.to_string(),
                leaf_volume: tree.total_leaf_volume(),
                leaf_margin: tree.total_leaf_margin(),
                nodes_visited: nodes,
                leaves_visited: leaves,
                results,
            }
        })
        .collect()
}

/// Render the rows as a text table.
pub fn render(rows: &[RtreeRow], cfg: &RtreeConfig) -> String {
    let mut t = crate::table::TextTable::new([
        "mapping",
        "leaf volume",
        "leaf margin",
        "nodes visited",
        "leaves visited",
    ]);
    for r in rows {
        t.push_row([
            r.mapping.clone(),
            r.leaf_volume.to_string(),
            r.leaf_margin.to_string(),
            r.nodes_visited.to_string(),
            r.leaves_visited.to_string(),
        ]);
    }
    format!(
        "== R-tree packing: {0}^{1} grid, fanout {2}, {3}-cube queries ==\n{4}",
        cfg.side,
        cfg.ndim,
        cfg.fanout,
        cfg.query_side,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_mappings_return_identical_results() {
        let rows = run(&RtreeConfig::quick());
        assert_eq!(rows.len(), 5);
        let expect = rows[0].results;
        for r in &rows {
            assert_eq!(
                r.results, expect,
                "{} returned different results",
                r.mapping
            );
        }
    }

    #[test]
    fn spatial_orders_pack_tighter_than_sweep_row_runs() {
        // With fanout 4 on an 8×8 grid, Sweep leaves are half-rows (volume
        // 4 each, total 64); Hilbert's leaves are 2×2 squares (volume 4,
        // total 64) — equal volume but Hilbert has lower margin (squares
        // beat 1×4 strips).
        let rows = run(&RtreeConfig::quick());
        let get = |name: &str| rows.iter().find(|r| r.mapping == name).unwrap();
        assert!(get("Hilbert").leaf_margin <= get("Sweep").leaf_margin);
    }

    #[test]
    fn fractals_pack_tighter_than_spectral() {
        // The honest counterpoint to the paper's universal-superiority
        // claim (documented in EXPERIMENTS.md): R-tree packing rewards
        // *tiling* quality, and the quadrant recursion of the fractal
        // curves produces perfectly tiled square leaves, while the spectral
        // order's level-set bands overlap — Kamel–Faloutsos were right to
        // pick Hilbert for this application.
        let rows = run(&RtreeConfig::quick());
        let get = |name: &str| rows.iter().find(|r| r.mapping == name).unwrap();
        assert!(get("Hilbert").leaf_volume <= get("Spectral").leaf_volume);
        assert!(get("Hilbert").leaves_visited <= get("Spectral").leaves_visited);
    }

    #[test]
    fn render_contains_mappings() {
        let cfg = RtreeConfig::quick();
        let s = render(&run(&cfg), &cfg);
        for name in ["Sweep", "Peano", "Gray", "Hilbert", "Spectral"] {
            assert!(s.contains(name));
        }
    }
}
