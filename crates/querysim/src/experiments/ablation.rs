//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Eigensolver path** — the three Fiedler strategies must agree on λ₂
//!    and produce orders of identical quality; they differ (hugely) in cost,
//!    which the Criterion bench `ablation_eigensolver` measures.
//! 2. **Connectivity** — 4- vs 8-connectivity vs inverse-distance weighting
//!    changes the graph being optimised; this runner quantifies the effect
//!    on the Figure-5-style locality metric.
//! 3. **Affinity edges** — Section 4's extensibility: how strongly does an
//!    affinity edge pull its endpoints together, and what does it cost the
//!    rest of the arrangement?

use crate::metrics;
use serde::Serialize;
use slpm_graph::grid::{Connectivity, GridSpec};
use slpm_graph::points::PointSet;
use slpm_linalg::{FiedlerMethod, FiedlerOptions};
use spectral_lpm::{objective, AffinityEdge, SpectralConfig, SpectralMapper};

/// One eigensolver strategy's outcome on a given grid.
#[derive(Debug, Clone, Serialize)]
pub struct EigensolverRow {
    /// Strategy name.
    pub method: String,
    /// λ₂ it computed.
    pub lambda2: f64,
    /// Eigen-residual.
    pub residual: f64,
    /// 2-sum cost of the resulting order (order quality).
    pub two_sum: f64,
}

/// Compare the three Fiedler strategies on a `side × side` grid.
pub fn eigensolver_agreement(side: usize) -> Vec<EigensolverRow> {
    let spec = GridSpec::cube(side, 2);
    let graph = spec.graph(Connectivity::Orthogonal);
    [
        ("shift-invert", FiedlerMethod::ShiftInvert),
        ("shifted-direct", FiedlerMethod::ShiftedDirect),
        ("dense", FiedlerMethod::Dense),
    ]
    .into_iter()
    .map(|(name, method)| {
        let mapper = SpectralMapper::new(SpectralConfig {
            fiedler: FiedlerOptions {
                method,
                ..Default::default()
            },
            ..Default::default()
        });
        let m = mapper.map_graph(&graph).expect("grid connected");
        EigensolverRow {
            method: name.to_string(),
            lambda2: m.fiedler.lambda2,
            residual: m.fiedler.residual,
            two_sum: objective::two_sum_cost(&graph, &m.order),
        }
    })
    .collect()
}

/// One graph model's outcome in the connectivity ablation.
#[derive(Debug, Clone, Serialize)]
pub struct ConnectivityRow {
    /// Graph model name.
    pub model: String,
    /// λ₂ of the model's Laplacian.
    pub lambda2: f64,
    /// Worst 1-D distance over Manhattan-distance-1 pairs (the Fig-5a-style
    /// locality metric, evaluated on the *physical* 4-neighbour pairs
    /// regardless of the graph used for mapping).
    pub worst_adjacent: usize,
    /// Mean 1-D distance over the same pairs.
    pub mean_adjacent: f64,
}

/// Compare graph models (Section 4 variations) on a `side × side` grid.
pub fn connectivity_comparison(side: usize) -> Vec<ConnectivityRow> {
    let spec = GridSpec::cube(side, 2);
    let mut rows = Vec::new();

    let mut eval = |model: &str, order: &spectral_lpm::LinearOrder, lambda2: f64| {
        let stats = metrics::pair_distance_stats(&spec, order, 1);
        rows.push(ConnectivityRow {
            model: model.to_string(),
            lambda2,
            worst_adjacent: stats.max,
            mean_adjacent: stats.mean,
        });
    };

    for (name, conn) in [
        ("orthogonal (paper default)", Connectivity::Orthogonal),
        ("full (8-connectivity)", Connectivity::Full),
    ] {
        let mapper = SpectralMapper::new(SpectralConfig {
            connectivity: conn,
            ..Default::default()
        });
        let m = mapper.map_grid(&spec).expect("grid connected");
        eval(name, &m.order, m.fiedler.lambda2);
    }

    // Weighted inverse-distance model (Section 4 footnote), radius 2.
    let pts = PointSet::from_grid(&spec);
    let weighted = pts.inverse_distance_graph(2);
    let mapper = SpectralMapper::new(SpectralConfig::default());
    let m = mapper.map_graph(&weighted).expect("connected");
    eval("inverse-distance (radius 2)", &m.order, m.fiedler.lambda2);

    rows
}

/// Outcome of the affinity ablation at one affinity weight.
#[derive(Debug, Clone, Serialize)]
pub struct AffinityRow {
    /// Affinity edge weight applied (0 = baseline, no edge).
    pub weight: f64,
    /// 1-D distance between the affinity pair after mapping.
    pub pair_distance: usize,
    /// 2-sum cost over the *base* (unmodified) graph — what the affinity
    /// edge costs everyone else.
    pub base_two_sum: f64,
}

/// Sweep affinity weights for one antipodal pair on a `side × side` grid.
///
/// The pair is the two opposite corners — maximally far apart, so the pull
/// of the affinity edge is clearly visible.
pub fn affinity_sweep(side: usize, weights: &[f64]) -> Vec<AffinityRow> {
    let spec = GridSpec::cube(side, 2);
    let base = spec.graph(Connectivity::Orthogonal);
    let a = spec.index_of(&[0, 0]);
    let b = spec.index_of(&[side - 1, side - 1]);
    let mapper = SpectralMapper::new(SpectralConfig::default());

    let mut rows = Vec::new();
    for &w in weights {
        let m = if w == 0.0 {
            mapper.map_graph(&base).expect("connected")
        } else {
            mapper
                .map_graph_with_affinity(&base, &[AffinityEdge::weighted(a, b, w)])
                .expect("connected")
        };
        rows.push(AffinityRow {
            weight: w,
            pair_distance: m.order.distance(a, b),
            base_two_sum: objective::two_sum_cost(&base, &m.order),
        });
    }
    rows
}

/// One ordering strategy's quality summary.
#[derive(Debug, Clone, Serialize)]
pub struct OrderingRow {
    /// Strategy name.
    pub strategy: String,
    /// 2-sum arrangement cost on the grid graph.
    pub two_sum: f64,
    /// Arrangement bandwidth (worst edge stretch).
    pub bandwidth: usize,
    /// Mean adjacent-pair 1-D distance.
    pub mean_adjacent: f64,
}

/// Compare ordering strategies built on the same spectral machinery:
/// direct Fiedler order (the paper), recursive spectral bisection, and the
/// multi-vector order (v₂ then v₃ tie-break), plus the Hilbert curve as the
/// fractal yardstick.
pub fn ordering_comparison(side: usize) -> Vec<OrderingRow> {
    use spectral_lpm::recursive::{multi_vector_order, rsb_order, RsbOptions};
    let spec = GridSpec::cube(side, 2);
    let graph = spec.graph(Connectivity::Orthogonal);

    let direct = SpectralMapper::new(SpectralConfig::default())
        .map_graph(&graph)
        .expect("connected")
        .order;
    let rsb = rsb_order(&graph, &RsbOptions::default()).expect("connected");
    let multi = multi_vector_order(&graph, 3, 1e-8, &SpectralConfig::default()).expect("connected");
    let hilbert = crate::mappings::curve_order(
        &spec,
        &slpm_sfc::HilbertCurve::from_side(2, side as u64).expect("power of two"),
    );

    [
        ("direct Fiedler (paper)", direct),
        ("recursive spectral bisection", rsb),
        ("multi-vector (v2, v3, v4)", multi),
        ("Hilbert (fractal yardstick)", hilbert),
    ]
    .into_iter()
    .map(|(name, order)| {
        let stats = metrics::pair_distance_stats(&spec, &order, 1);
        OrderingRow {
            strategy: name.to_string(),
            two_sum: objective::two_sum_cost(&graph, &order),
            bandwidth: objective::bandwidth(&graph, &order),
            mean_adjacent: stats.mean,
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_comparison_has_four_rows() {
        let rows = ordering_comparison(8);
        assert_eq!(rows.len(), 4);
        // The direct Fiedler order minimises the 2-sum among the spectral
        // strategies (it is the relaxation optimum made integral).
        let two_sum = |name: &str| {
            rows.iter()
                .find(|r| r.strategy.starts_with(name))
                .unwrap()
                .two_sum
        };
        assert!(two_sum("direct") <= two_sum("recursive"));
        for r in &rows {
            assert!(r.bandwidth >= 1);
            assert!(r.mean_adjacent >= 1.0);
        }
    }

    #[test]
    fn eigensolvers_agree_on_lambda2() {
        let rows = eigensolver_agreement(6);
        assert_eq!(rows.len(), 3);
        let reference = rows.iter().find(|r| r.method == "dense").unwrap().lambda2;
        for r in &rows {
            assert!(
                (r.lambda2 - reference).abs() < 1e-6,
                "{}: {} vs {}",
                r.method,
                r.lambda2,
                reference
            );
            assert!(r.residual < 1e-6, "{}: residual {}", r.method, r.residual);
        }
    }

    #[test]
    fn connectivity_rows_cover_three_models() {
        let rows = connectivity_comparison(4);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.lambda2 > 0.0, "{}", r.model);
            assert!(r.worst_adjacent >= 1);
            assert!(r.mean_adjacent >= 1.0);
        }
    }

    #[test]
    fn affinity_monotonically_pulls_pair_together() {
        let rows = affinity_sweep(5, &[0.0, 1.0, 8.0]);
        assert_eq!(rows.len(), 3);
        // Strong affinity brings the corners closer than no affinity.
        assert!(
            rows[2].pair_distance < rows[0].pair_distance,
            "w=8 distance {} not below baseline {}",
            rows[2].pair_distance,
            rows[0].pair_distance
        );
        // And costs the base arrangement something.
        assert!(rows[2].base_two_sum >= rows[0].base_two_sum - 1e-9);
    }
}
