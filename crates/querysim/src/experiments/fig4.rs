//! Figure 4 — Spectral LPM variations: 4- vs 8-connectivity on a 4×4 grid.
//!
//! Section 4 shows that the graph model is a free parameter: the same 4×4
//! point set mapped under four-connectivity (Figures 4a/4b) and
//! eight-connectivity (4c/4d) yields different — both optimal for their
//! graph — spectral orders. This runner reproduces both orders and their
//! eigen diagnostics.

use serde::Serialize;
use slpm_graph::grid::{Connectivity, GridSpec};
use spectral_lpm::{objective, SpectralConfig, SpectralMapper};

/// One connectivity variant's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct VariantResult {
    /// "4-connectivity" or "8-connectivity".
    pub name: String,
    /// λ₂ of the variant's Laplacian.
    pub lambda2: f64,
    /// Rank of each vertex, laid out as grid rows (row-major).
    pub rank_grid: Vec<Vec<usize>>,
    /// 2-sum arrangement cost of the produced order on the variant graph.
    pub two_sum: f64,
    /// Arrangement bandwidth on the variant graph.
    pub bandwidth: usize,
}

/// Result of the Figure 4 experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Result {
    /// Grid side (paper: 4).
    pub side: usize,
    /// The two variants.
    pub variants: Vec<VariantResult>,
}

impl Fig4Result {
    /// Render both variants as rank grids.
    pub fn render(&self) -> String {
        let mut s = format!(
            "== Figure 4: spectral order variants on the {0}×{0} grid ==\n",
            self.side
        );
        for v in &self.variants {
            s.push_str(&format!(
                "\n{} (lambda_2 = {:.4}, 2-sum = {:.0}, bandwidth = {}):\n",
                v.name, v.lambda2, v.two_sum, v.bandwidth
            ));
            for row in &v.rank_grid {
                let cells: Vec<String> = row.iter().map(|r| format!("{r:>3}")).collect();
                s.push_str(&format!("  {}\n", cells.join(" ")));
            }
        }
        s
    }
}

/// Run both connectivity variants on a `side × side` grid.
pub fn run(side: usize) -> Fig4Result {
    let spec = GridSpec::cube(side, 2);
    let variants = [
        ("4-connectivity", Connectivity::Orthogonal),
        ("8-connectivity", Connectivity::Full),
    ]
    .into_iter()
    .map(|(name, conn)| {
        let graph = spec.graph(conn);
        let mapper = SpectralMapper::new(SpectralConfig {
            connectivity: conn,
            ..Default::default()
        });
        let mapping = mapper.map_graph(&graph).expect("grid is connected");
        let rank_grid: Vec<Vec<usize>> = (0..side)
            .map(|r| {
                (0..side)
                    .map(|c| mapping.order.rank_of(spec.index_of(&[r, c])))
                    .collect()
            })
            .collect();
        VariantResult {
            name: name.to_string(),
            lambda2: mapping.fiedler.lambda2,
            two_sum: objective::two_sum_cost(&graph, &mapping.order),
            bandwidth: objective::bandwidth(&graph, &mapping.order),
            rank_grid,
        }
    })
    .collect();
    Fig4Result { side, variants }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_variants_produced() {
        let r = run(4);
        assert_eq!(r.variants.len(), 2);
        assert_eq!(r.variants[0].name, "4-connectivity");
        assert_eq!(r.variants[1].name, "8-connectivity");
    }

    #[test]
    fn rank_grids_are_permutations() {
        let r = run(4);
        for v in &r.variants {
            let mut all: Vec<usize> = v.rank_grid.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..16).collect::<Vec<usize>>(), "{}", v.name);
        }
    }

    #[test]
    fn variants_differ() {
        let r = run(4);
        assert_ne!(r.variants[0].rank_grid, r.variants[1].rank_grid);
    }

    #[test]
    fn eight_connectivity_has_larger_lambda2() {
        // More edges ⇒ better algebraic connectivity.
        let r = run(4);
        assert!(r.variants[1].lambda2 > r.variants[0].lambda2);
    }

    #[test]
    fn render_shows_grids() {
        let s = run(4).render();
        assert!(s.contains("4-connectivity"));
        assert!(s.contains("8-connectivity"));
        assert!(s.contains("lambda_2"));
    }
}
