//! k-nearest-neighbour window experiment.
//!
//! The paper's introduction motivates locality-preserving mappings with
//! "multi-dimensional similarity search queries": to answer a kNN query
//! from a 1-D layout, one scans outward from the query point's position
//! until the k nearest neighbours have been seen. The cost is the **window
//! size** — how many 1-D positions around the query must be read. This
//! experiment measures, per mapping, the window needed to cover the true
//! k-nearest (Manhattan) neighbour set of every point.

use crate::experiments::{FigureData, FigureSeries};
use crate::mappings::MappingSet;
use crate::metrics::SpanStats;
use serde::Serialize;
use slpm_graph::grid::GridSpec;

/// Configuration of the kNN window experiment.
#[derive(Debug, Clone, Serialize)]
pub struct KnnConfig {
    /// Grid side (power of two).
    pub side: usize,
    /// Dimensionality.
    pub ndim: usize,
    /// The `k` values to sweep.
    pub ks: Vec<usize>,
}

impl Default for KnnConfig {
    fn default() -> Self {
        KnnConfig {
            side: 16,
            ndim: 2,
            ks: vec![1, 2, 4, 8, 16],
        }
    }
}

impl KnnConfig {
    /// Reduced configuration for tests.
    pub fn quick() -> Self {
        KnnConfig {
            side: 4,
            ndim: 2,
            ks: vec![1, 4],
        }
    }
}

/// The true k-nearest-neighbour set of `center` (row-major index) under
/// Manhattan distance, ties included (so the set may exceed `k` when the
/// k-th distance is shared — the scan must cover all of them to be correct).
pub fn knn_set(spec: &GridSpec, center: usize, k: usize) -> Vec<usize> {
    let c = spec.coords_of(center);
    let mut by_dist: Vec<(usize, usize)> = (0..spec.num_points())
        .filter(|&i| i != center)
        .map(|i| (GridSpec::manhattan(&c, &spec.coords_of(i)), i))
        .collect();
    by_dist.sort_unstable();
    if by_dist.len() <= k {
        return by_dist.into_iter().map(|(_, i)| i).collect();
    }
    let cutoff = by_dist[k - 1].0;
    by_dist
        .into_iter()
        .take_while(|&(d, _)| d <= cutoff)
        .map(|(_, i)| i)
        .collect()
}

/// Window radius needed at `center` so that `[rank−w, rank+w]` covers its
/// whole kNN set under `order`.
pub fn knn_window(
    spec: &GridSpec,
    order: &spectral_lpm::LinearOrder,
    center: usize,
    k: usize,
) -> usize {
    let r = order.rank_of(center);
    knn_set(spec, center, k)
        .into_iter()
        .map(|v| order.rank_of(v).abs_diff(r))
        .max()
        .unwrap_or(0)
}

/// Window statistics over every grid point for one `k`.
pub fn knn_window_stats(spec: &GridSpec, order: &spectral_lpm::LinearOrder, k: usize) -> SpanStats {
    SpanStats::from_observations((0..spec.num_points()).map(|c| knn_window(spec, order, c, k)))
}

/// Run the kNN window experiment: mean window size per `k`, per mapping.
pub fn run(cfg: &KnnConfig) -> FigureData {
    let spec = GridSpec::cube(cfg.side, cfg.ndim);
    let set = MappingSet::paper_set(&spec).expect("power-of-two grid");
    let series = set
        .iter()
        .map(|(label, order)| FigureSeries {
            label: label.to_string(),
            points: cfg
                .ks
                .iter()
                .map(|&k| (k as f64, knn_window_stats(&spec, order, k).mean))
                .collect(),
        })
        .collect();
    FigureData {
        id: "knn".into(),
        title: format!(
            "kNN scan window, {}^{} grid ({} points)",
            cfg.side,
            cfg.ndim,
            spec.num_points()
        ),
        x_label: "k".into(),
        y_label: "Mean 1-D window radius".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectral_lpm::LinearOrder;

    #[test]
    fn knn_set_of_center_point() {
        let spec = GridSpec::new(&[3, 3]);
        let center = spec.index_of(&[1, 1]);
        // k = 4: the four orthogonal neighbours, all at distance 1.
        let set = knn_set(&spec, center, 4);
        assert_eq!(set.len(), 4);
        for v in &set {
            assert_eq!(GridSpec::manhattan(&[1, 1], &spec.coords_of(*v)), 1);
        }
    }

    #[test]
    fn knn_set_includes_distance_ties() {
        let spec = GridSpec::new(&[3, 3]);
        let center = spec.index_of(&[1, 1]);
        // k = 2 but four points tie at distance 1: all four are returned.
        let set = knn_set(&spec, center, 2);
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn corner_has_two_nearest() {
        let spec = GridSpec::new(&[3, 3]);
        let corner = spec.index_of(&[0, 0]);
        let set = knn_set(&spec, corner, 2);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn window_under_identity_order() {
        // 1-D path: kNN of interior point i are i±1; identity order gives
        // window exactly 1.
        let spec = GridSpec::new(&[8]);
        let order = LinearOrder::identity(8);
        assert_eq!(knn_window(&spec, &order, 4, 2), 1);
        // Endpoint: neighbours are 1 and 2 → window 2.
        assert_eq!(knn_window(&spec, &order, 0, 2), 2);
    }

    #[test]
    fn run_produces_five_series() {
        let f = run(&KnnConfig::quick());
        assert_eq!(f.series.len(), 5);
        for s in &f.series {
            assert_eq!(s.points.len(), 2);
            // Windows grow (weakly) with k.
            assert!(s.points[1].1 >= s.points[0].1);
        }
    }

    #[test]
    fn spectral_window_beats_worst_fractal() {
        let f = run(&KnnConfig::quick());
        let y = |label: &str| f.series(label).unwrap().points[0].1;
        let worst_fractal = y("Peano").max(y("Gray")).max(y("Hilbert"));
        assert!(y("Spectral") <= worst_fractal + 1e-9);
    }
}
