//! Figure 5 — nearest-neighbour locality.
//!
//! **5a (worst case, 5-D):** for pairs at Manhattan distance `d` (10–50 %
//! of the maximum), what is the *maximum* 1-D distance (as a percent of
//! `n − 1`)? Lower is better for nearest-neighbour queries. The paper's
//! result: the non-fractal mappings (Sweep, Spectral) beat the fractals,
//! with Spectral best or tied.
//!
//! **5b (fairness, 2-D):** the same question restricted to pairs displaced
//! along a *single* dimension. Sweep answers wildly differently for X
//! versus Y (its scan direction); Spectral answers almost identically —
//! it does not discriminate between dimensions.

use crate::experiments::{FigureData, FigureSeries};
use crate::mappings::{MappingLabel, MappingSet};
use crate::metrics;
use crossbeam::thread;
use serde::Serialize;
use slpm_graph::grid::{Connectivity, GridSpec};

/// Configuration for the Figure 5 experiments.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Config {
    /// Grid side for 5a (power of two). Paper-scale default: 4 (4⁵ = 1024
    /// points).
    pub side_5d: usize,
    /// Grid side for 5b (power of two). Default 16 (16² = 256 points).
    pub side_2d: usize,
    /// Manhattan-distance percentages swept on the x-axis.
    pub percents: Vec<f64>,
}

impl Default for Fig5Config {
    fn default() -> Self {
        Fig5Config {
            side_5d: 4,
            side_2d: 16,
            percents: vec![10.0, 20.0, 30.0, 40.0, 50.0],
        }
    }
}

impl Fig5Config {
    /// A reduced configuration for fast tests.
    pub fn quick() -> Self {
        Fig5Config {
            side_5d: 2,
            side_2d: 8,
            percents: vec![20.0, 40.0],
        }
    }
}

/// Figure 5a: worst-case 1-D distance versus Manhattan distance in 5-D.
pub fn run_worst_case(cfg: &Fig5Config) -> FigureData {
    let spec = GridSpec::cube(cfg.side_5d, 5);
    let set = MappingSet::paper_set(&spec).expect("power-of-two 5-D grid");
    let max_manhattan = spec.max_manhattan();
    let n = spec.num_points();

    // Translate percents into concrete distances (≥ 1).
    let distances: Vec<usize> = cfg
        .percents
        .iter()
        .map(|p| ((p / 100.0 * max_manhattan as f64).round() as usize).max(1))
        .collect();

    // Each mapping is independent: sweep them on scoped threads.
    let labels: Vec<MappingLabel> = set.iter().map(|(l, _)| l).collect();
    let mut series: Vec<FigureSeries> = Vec::new();
    thread::scope(|s| {
        let handles: Vec<_> = set
            .iter()
            .map(|(label, order)| {
                let spec = &spec;
                let distances = &distances;
                let percents = &cfg.percents;
                s.spawn(move |_| {
                    let points: Vec<(f64, f64)> = distances
                        .iter()
                        .zip(percents.iter())
                        .map(|(&d, &p)| {
                            let stats = metrics::pair_distance_stats(spec, order, d);
                            let pct = 100.0 * stats.max as f64 / (n - 1) as f64;
                            (p, pct)
                        })
                        .collect();
                    (label, points)
                })
            })
            .collect();
        for h in handles {
            let (label, points) = h.join().expect("metric thread panicked");
            series.push(FigureSeries {
                label: label.to_string(),
                points,
            });
        }
    })
    .expect("crossbeam scope");
    // Preserve the comparison-set order (threads may finish out of order).
    series.sort_by_key(|s| labels.iter().position(|l| l.to_string() == s.label));

    FigureData {
        id: "fig5a".into(),
        title: format!(
            "Nearest-neighbour worst case, {}^5 grid ({} points)",
            cfg.side_5d, n
        ),
        x_label: "Manhattan distance (percent)".into(),
        y_label: "Max 1-D distance (percent)".into(),
        series,
    }
}

/// Figure 5b: per-dimension fairness in 2-D — series Sweep-X, Sweep-Y,
/// Spectral-X, Spectral-Y.
pub fn run_fairness(cfg: &Fig5Config) -> FigureData {
    let spec = GridSpec::cube(cfg.side_2d, 2);
    let set = MappingSet::paper_set(&spec).expect("power-of-two 2-D grid");
    let sweep = set
        .get(MappingLabel::Curve(slpm_sfc::CurveKind::Sweep))
        .expect("paper set contains sweep");
    let spectral = set
        .get(MappingLabel::Spectral(Connectivity::Orthogonal))
        .expect("paper set contains spectral");

    let max_axis = cfg.side_2d - 1;
    let distances: Vec<usize> = cfg
        .percents
        .iter()
        .map(|p| ((p / 100.0 * max_axis as f64).round() as usize).max(1))
        .collect();

    let mut series = Vec::new();
    for (name, order) in [("Sweep", sweep), ("Spectral", spectral)] {
        for (suffix, dim) in [("X", 0usize), ("Y", 1usize)] {
            let points: Vec<(f64, f64)> = distances
                .iter()
                .zip(cfg.percents.iter())
                .map(|(&d, &p)| {
                    let stats = metrics::axis_pair_distance_stats(&spec, order, dim, d);
                    (p, stats.max as f64)
                })
                .collect();
            series.push(FigureSeries {
                label: format!("{name}-{suffix}"),
                points,
            });
        }
    }

    FigureData {
        id: "fig5b".into(),
        title: format!("Nearest-neighbour fairness, {0}×{0} grid", cfg.side_2d),
        x_label: "Manhattan distance (percent)".into(),
        y_label: "Max 1-D distance".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_has_five_series() {
        let f = run_worst_case(&Fig5Config::quick());
        assert_eq!(f.series.len(), 5);
        for s in &f.series {
            assert_eq!(s.points.len(), 2);
            for &(_, y) in &s.points {
                assert!(y.is_finite() && (0.0..=100.0).contains(&y));
            }
        }
    }

    #[test]
    fn fairness_has_four_series() {
        let f = run_fairness(&Fig5Config::quick());
        let labels: Vec<&str> = f.series.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(
            labels,
            vec!["Sweep-X", "Sweep-Y", "Spectral-X", "Spectral-Y"]
        );
    }

    #[test]
    fn sweep_is_unfair_spectral_is_fair() {
        // The headline qualitative claim of Figure 5b, on a small grid.
        let f = run_fairness(&Fig5Config {
            side_2d: 8,
            percents: vec![25.0, 50.0],
            ..Fig5Config::quick()
        });
        let at = |label: &str, i: usize| f.series(label).unwrap().points[i].1;
        for i in 0..2 {
            let sweep_gap = (at("Sweep-X", i) - at("Sweep-Y", i)).abs();
            let spectral_gap = (at("Spectral-X", i) - at("Spectral-Y", i)).abs();
            assert!(
                spectral_gap < sweep_gap,
                "x-point {i}: spectral gap {spectral_gap} not smaller than sweep gap {sweep_gap}"
            );
        }
    }

    #[test]
    fn spectral_no_worse_than_fractals_at_small_distance() {
        // Figure 5a's qualitative shape at the 20% point on a quick grid:
        // Spectral ≤ max(fractals).
        let f = run_worst_case(&Fig5Config::quick());
        let y = |label: &str| f.series(label).unwrap().points[0].1;
        let worst_fractal = y("Peano").max(y("Gray")).max(y("Hilbert"));
        assert!(y("Spectral") <= worst_fractal + 1e-9);
    }
}
