//! Storage-level experiment: from spans to actual I/O.
//!
//! The paper's span metric (Figure 6) is a proxy for disk behaviour. This
//! experiment closes the loop using the storage substrate: lay each mapping
//! out on pages, replay a range-query workload, and report *measured*
//! pages, seeks, model cost and buffer-pool hit rates per mapping.

use crate::mappings::MappingSet;
use crate::workloads;
use serde::Serialize;
use slpm_graph::grid::GridSpec;
use slpm_storage::{BufferPool, IoModel, PageLayout, PageMapper};

/// Configuration of the storage I/O experiment.
#[derive(Debug, Clone, Serialize)]
pub struct StorageIoConfig {
    /// Grid side (power of two).
    pub side: usize,
    /// Dimensionality.
    pub ndim: usize,
    /// Records per page.
    pub records_per_page: usize,
    /// Query box side (cells per dimension).
    pub query_side: usize,
    /// Buffer pool capacity in pages.
    pub buffer_pages: usize,
}

impl Default for StorageIoConfig {
    fn default() -> Self {
        StorageIoConfig {
            side: 16,
            ndim: 2,
            records_per_page: 8,
            query_side: 4,
            buffer_pages: 8,
        }
    }
}

impl StorageIoConfig {
    /// Reduced configuration for tests.
    pub fn quick() -> Self {
        StorageIoConfig {
            side: 8,
            ndim: 2,
            records_per_page: 4,
            query_side: 2,
            buffer_pages: 4,
        }
    }
}

/// Measured I/O of one mapping over the whole workload.
#[derive(Debug, Clone, Serialize)]
pub struct StorageIoRow {
    /// Mapping name.
    pub mapping: String,
    /// Total distinct pages read across queries (without buffering).
    pub pages: usize,
    /// Total sequential runs (seeks).
    pub seeks: usize,
    /// Total cost under the seek/transfer model.
    pub model_cost: f64,
    /// Buffer-pool hit ratio when queries are replayed in row-major
    /// placement order (nearby queries back to back).
    pub buffer_hit_ratio: f64,
}

/// Run the storage experiment: every placement of a `query_side`-cube,
/// visited in row-major order of the query corner (a spatially coherent
/// workload, as a map-browsing session would produce).
pub fn run(cfg: &StorageIoConfig) -> Vec<StorageIoRow> {
    let spec = GridSpec::cube(cfg.side, cfg.ndim);
    let set = MappingSet::paper_set(&spec).expect("power-of-two grid");
    let model = IoModel::default();
    let sides = vec![cfg.query_side; cfg.ndim];

    set.iter()
        .map(|(label, order)| {
            let mapper = PageMapper::new(order, PageLayout::new(cfg.records_per_page));
            let mut pages = 0usize;
            let mut seeks = 0usize;
            let mut cost = 0.0f64;
            let mut pool = BufferPool::new(cfg.buffer_pages);
            workloads::for_each_box(&spec, &sides, |b| {
                let vertices: Vec<usize> = b.indices(&spec).collect();
                let io = model.query_cost(&mapper, vertices.iter().copied());
                pages += io.pages;
                seeks += io.runs;
                cost += io.total;
                pool.access_many(mapper.pages_touched(vertices.iter().copied()));
            });
            StorageIoRow {
                mapping: label.to_string(),
                pages,
                seeks,
                model_cost: cost,
                buffer_hit_ratio: pool.stats().hit_ratio(),
            }
        })
        .collect()
}

/// Render the rows as a text table.
pub fn render(rows: &[StorageIoRow], cfg: &StorageIoConfig) -> String {
    let mut t = crate::table::TextTable::new([
        "mapping",
        "pages read",
        "seeks",
        "model cost",
        "buffer hit %",
    ]);
    for r in rows {
        t.push_row([
            r.mapping.clone(),
            r.pages.to_string(),
            r.seeks.to_string(),
            format!("{:.1}", r.model_cost),
            format!("{:.1}", 100.0 * r.buffer_hit_ratio),
        ]);
    }
    format!(
        "== Storage I/O: {0}^{1} grid, {2}-cube queries, {3} rec/page, {4}-page pool ==\n{5}",
        cfg.side,
        cfg.ndim,
        cfg.query_side,
        cfg.records_per_page,
        cfg.buffer_pages,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_row_per_mapping() {
        let rows = run(&StorageIoConfig::quick());
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.pages > 0, "{}", r.mapping);
            assert!(r.seeks > 0);
            assert!(r.seeks <= r.pages);
            assert!(r.model_cost > 0.0);
            assert!((0.0..=1.0).contains(&r.buffer_hit_ratio));
        }
    }

    #[test]
    fn spectral_or_hilbert_beats_sweep_on_seeks() {
        // Coherent square queries: the 2-D-aware mappings (Hilbert,
        // Spectral) need fewer seeks than the scan order.
        let rows = run(&StorageIoConfig::quick());
        let get = |name: &str| rows.iter().find(|r| r.mapping == name).unwrap();
        let sweep = get("Sweep").seeks;
        assert!(
            get("Hilbert").seeks < sweep || get("Spectral").seeks < sweep,
            "neither Hilbert ({}) nor Spectral ({}) beat Sweep ({sweep})",
            get("Hilbert").seeks,
            get("Spectral").seeks
        );
    }

    #[test]
    fn coherent_replay_gets_buffer_hits() {
        let rows = run(&StorageIoConfig::quick());
        for r in &rows {
            assert!(
                r.buffer_hit_ratio > 0.2,
                "{}: hit ratio {} suspiciously low for overlapping queries",
                r.mapping,
                r.buffer_hit_ratio
            );
        }
    }

    #[test]
    fn render_contains_all_mappings() {
        let cfg = StorageIoConfig::quick();
        let s = render(&run(&cfg), &cfg);
        for name in ["Sweep", "Peano", "Gray", "Hilbert", "Spectral"] {
            assert!(s.contains(name));
        }
    }
}
