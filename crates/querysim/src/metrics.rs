//! The locality metrics the paper's figures plot.

use crate::workloads::{self, RangeBox};
use slpm_graph::grid::GridSpec;
use spectral_lpm::LinearOrder;

/// Summary statistics of a population of spans/distances.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// Number of observations.
    pub count: usize,
    /// Maximum value.
    pub max: usize,
    /// Minimum value.
    pub min: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl SpanStats {
    /// Aggregate an iterator of observations. Returns a zeroed struct for
    /// an empty population.
    pub fn from_observations<I: IntoIterator<Item = usize>>(values: I) -> SpanStats {
        let mut count = 0usize;
        let mut max = 0usize;
        let mut min = usize::MAX;
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for v in values {
            count += 1;
            max = max.max(v);
            min = min.min(v);
            let vf = v as f64;
            sum += vf;
            sum_sq += vf * vf;
        }
        if count == 0 {
            return SpanStats {
                count: 0,
                max: 0,
                min: 0,
                mean: 0.0,
                stddev: 0.0,
            };
        }
        let mean = sum / count as f64;
        let var = (sum_sq / count as f64 - mean * mean).max(0.0);
        SpanStats {
            count,
            max,
            min,
            mean,
            stddev: var.sqrt(),
        }
    }
}

/// **Figure 5a metric.** Statistics of the 1-D distance `|rank_i − rank_j|`
/// over all pairs at Manhattan distance exactly `d`.
pub fn pair_distance_stats(spec: &GridSpec, order: &LinearOrder, d: usize) -> SpanStats {
    let mut values = Vec::new();
    workloads::for_each_pair_at_distance(spec, d, |i, j| {
        values.push(order.distance(i, j));
    });
    SpanStats::from_observations(values)
}

/// **Figure 5b metric.** Statistics of the 1-D distance over pairs
/// displaced by exactly `d` along a single dimension.
pub fn axis_pair_distance_stats(
    spec: &GridSpec,
    order: &LinearOrder,
    dim: usize,
    d: usize,
) -> SpanStats {
    let mut values = Vec::new();
    workloads::for_each_axis_pair(spec, dim, d, |i, j| {
        values.push(order.distance(i, j));
    });
    SpanStats::from_observations(values)
}

/// 1-D span of one range query: `max rank − min rank` over the points
/// inside the box (0 for a single-point box). The smaller the span, the
/// less a sequential scan must read (paper Section 5, Figure 6 preamble).
pub fn range_span(spec: &GridSpec, order: &LinearOrder, query: &RangeBox) -> usize {
    let mut lo = usize::MAX;
    let mut hi = 0usize;
    for idx in query.indices(spec) {
        let r = order.rank_of(idx);
        lo = lo.min(r);
        hi = hi.max(r);
    }
    if lo == usize::MAX {
        0
    } else {
        hi - lo
    }
}

/// **Figure 6 metric.** Span statistics over every placement of a
/// hypercubic range query of the given side: `max` is Figure 6a's
/// worst case, `stddev` is Figure 6b's fairness measure.
pub fn range_span_stats(spec: &GridSpec, order: &LinearOrder, side: usize) -> SpanStats {
    let sides = vec![side; spec.ndim()];
    let mut values = Vec::new();
    workloads::for_each_box(spec, &sides, |b| {
        values.push(range_span(spec, order, b));
    });
    SpanStats::from_observations(values)
}

/// **Figure 6 metric (partial range queries).** Span statistics over every
/// placement of every box *shape* whose volume is within `tolerance` of
/// `percent`% of the grid volume — the paper's "all possible partial range
/// queries with a certain size". `max` feeds Figure 6a, `stddev` Figure 6b.
pub fn partial_range_span_stats(
    spec: &GridSpec,
    order: &LinearOrder,
    percent: f64,
    tolerance: f64,
) -> SpanStats {
    let shapes = workloads::shapes_for_volume_percent(spec, percent, tolerance);
    let mut values = Vec::new();
    for sides in &shapes {
        workloads::for_each_box(spec, sides, |b| {
            values.push(range_span(spec, order, b));
        });
    }
    SpanStats::from_observations(values)
}

/// Span statistics over a *sampled* set of boxes (large grids).
pub fn sampled_range_span_stats(
    spec: &GridSpec,
    order: &LinearOrder,
    side: usize,
    samples: usize,
    seed: u64,
) -> SpanStats {
    let sides = vec![side; spec.ndim()];
    let boxes = workloads::sample_boxes(spec, &sides, samples, seed);
    SpanStats::from_observations(boxes.iter().map(|b| range_span(spec, order, b)))
}

/// The *boundary stretch* of an order: the maximum 1-D distance across any
/// Manhattan-distance-1 pair — Figure 1's per-curve numbers are exactly
/// this quantity evaluated on specific pairs, and its maximum is the
/// arrangement bandwidth.
pub fn boundary_stretch(spec: &GridSpec, order: &LinearOrder) -> usize {
    pair_distance_stats(spec, order, 1).max
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep_order(spec: &GridSpec) -> LinearOrder {
        LinearOrder::identity(spec.num_points())
    }

    #[test]
    fn stats_basics() {
        let s = SpanStats::from_observations([1usize, 2, 3, 4]);
        assert_eq!(s.count, 4);
        assert_eq!(s.max, 4);
        assert_eq!(s.min, 1);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.stddev - (1.25f64).sqrt()).abs() < 1e-12);
        let empty = SpanStats::from_observations(std::iter::empty());
        assert_eq!(empty.count, 0);
        assert_eq!(empty.max, 0);
    }

    #[test]
    fn sweep_pair_distance_on_2d_grid() {
        // On a W×H grid with row-major order, a pair displaced (1, 0) has
        // rank distance H; displaced (0, 1) has rank distance 1.
        let spec = GridSpec::new(&[4, 4]);
        let o = sweep_order(&spec);
        let s = pair_distance_stats(&spec, &o, 1);
        assert_eq!(s.max, 4);
        assert_eq!(s.min, 1);
    }

    #[test]
    fn axis_stats_isolate_dimensions() {
        let spec = GridSpec::new(&[4, 4]);
        let o = sweep_order(&spec);
        // Along dim 1 (fastest): rank distance d exactly.
        let s1 = axis_pair_distance_stats(&spec, &o, 1, 2);
        assert_eq!(s1.max, 2);
        assert_eq!(s1.min, 2);
        // Along dim 0 (slowest): rank distance d·4.
        let s0 = axis_pair_distance_stats(&spec, &o, 0, 2);
        assert_eq!(s0.max, 8);
        assert_eq!(s0.min, 8);
    }

    #[test]
    fn range_span_of_sweep_rows() {
        let spec = GridSpec::new(&[4, 4]);
        let o = sweep_order(&spec);
        // One full row: contiguous ranks → span 3.
        let row = RangeBox {
            lo: vec![1, 0],
            hi: vec![1, 3],
        };
        assert_eq!(range_span(&spec, &o, &row), 3);
        // One full column: spans 3 rows of 4 → 12.
        let col = RangeBox {
            lo: vec![0, 2],
            hi: vec![3, 2],
        };
        assert_eq!(range_span(&spec, &o, &col), 12);
    }

    #[test]
    fn range_span_stats_all_placements() {
        let spec = GridSpec::new(&[4, 4]);
        let o = sweep_order(&spec);
        let s = range_span_stats(&spec, &o, 2);
        // 2×2 box in sweep order: span = 4 + 1 = 5 always.
        assert_eq!(s.count, 9);
        assert_eq!(s.max, 5);
        assert_eq!(s.min, 5);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn single_point_box_has_zero_span() {
        let spec = GridSpec::new(&[3, 3]);
        let o = sweep_order(&spec);
        let s = range_span_stats(&spec, &o, 1);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn sampled_stats_bounded_by_exhaustive() {
        let spec = GridSpec::new(&[8, 8]);
        let o = sweep_order(&spec);
        let full = range_span_stats(&spec, &o, 3);
        let sampled = sampled_range_span_stats(&spec, &o, 3, 20, 42);
        assert!(sampled.max <= full.max);
        assert!(sampled.min >= full.min);
    }

    #[test]
    fn hilbert_boundary_stretch_smaller_than_sweep_on_square() {
        use crate::mappings::curve_order;
        use slpm_sfc::HilbertCurve;
        let spec = GridSpec::cube(8, 2);
        let h = curve_order(&spec, &HilbertCurve::from_side(2, 8).unwrap());
        let hs = boundary_stretch(&spec, &h);
        let ss = boundary_stretch(&spec, &sweep_order(&spec));
        // Sweep's worst adjacent pair costs a full row (8); Hilbert's
        // boundary effect is strictly worse than its typical step but the
        // classic result is that its worst adjacent stretch exceeds sweep's
        // row width on large grids. Here we only pin both are positive and
        // the exact sweep value.
        assert_eq!(ss, 8);
        assert!(hs > 0);
    }
}
