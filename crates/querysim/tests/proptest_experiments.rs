//! Property tests over the experiment layer: invariants that must hold for
//! any grid shape and any query size, independent of which mapping wins.

use proptest::prelude::*;
use slpm_graph::grid::GridSpec;
use slpm_querysim::experiments::{fig5, fig6, knn};
use slpm_querysim::mappings::MappingSet;
use slpm_querysim::{metrics, workloads};

fn small_cube() -> impl Strategy<Value = GridSpec> {
    prop_oneof![
        Just(GridSpec::cube(4, 2)),
        Just(GridSpec::cube(8, 2)),
        Just(GridSpec::cube(2, 3)),
        Just(GridSpec::cube(4, 3)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn pair_distance_stats_bounds(spec in small_cube(), d in 1usize..4) {
        let set = MappingSet::paper_set(&spec).unwrap();
        let n = spec.num_points();
        let d = d.min(spec.max_manhattan());
        for (label, order) in set.iter() {
            let s = metrics::pair_distance_stats(&spec, order, d);
            if s.count > 0 {
                prop_assert!(s.min >= 1, "{}", label);
                prop_assert!(s.max < n, "{}", label);
                prop_assert!(s.mean >= s.min as f64 - 1e-9);
                prop_assert!(s.mean <= s.max as f64 + 1e-9);
                prop_assert!(s.stddev <= (s.max - s.min) as f64 + 1e-9);
            }
        }
    }

    #[test]
    fn partial_stats_count_matches_enumeration(spec in small_cube(), pct in 5.0f64..80.0) {
        let set = MappingSet::paper_set(&spec).unwrap();
        let (_, order) = set.iter().next().unwrap();
        let shapes = workloads::shapes_for_volume_percent(&spec, pct, 1.25);
        let mut expected = 0usize;
        for sh in &shapes {
            workloads::for_each_box(&spec, sh, |_| expected += 1);
        }
        let stats = metrics::partial_range_span_stats(&spec, order, pct, 1.25);
        prop_assert_eq!(stats.count, expected);
    }

    #[test]
    fn knn_windows_monotone_in_k(spec in small_cube()) {
        let set = MappingSet::paper_set(&spec).unwrap();
        for (label, order) in set.iter() {
            let w1 = knn::knn_window_stats(&spec, order, 1);
            let w4 = knn::knn_window_stats(&spec, order, 4);
            prop_assert!(
                w4.mean >= w1.mean - 1e-9,
                "{}: k=4 window {} below k=1 window {}",
                label, w4.mean, w1.mean
            );
        }
    }

    #[test]
    fn span_max_never_exceeds_n_minus_1(spec in small_cube(), pct in 2.0f64..100.0) {
        let set = MappingSet::paper_set(&spec).unwrap();
        let n = spec.num_points();
        for (label, order) in set.iter() {
            let s = metrics::partial_range_span_stats(&spec, order, pct, 1.25);
            prop_assert!(s.max < n, "{}", label);
        }
    }
}

#[test]
fn figure_runners_have_consistent_axes() {
    // Every series in a figure shares the x grid, in order.
    let figs = [
        fig5::run_worst_case(&fig5::Fig5Config::quick()),
        fig5::run_fairness(&fig5::Fig5Config::quick()),
        fig6::run_worst_case(&fig6::Fig6Config::quick()),
        fig6::run_fairness(&fig6::Fig6Config::quick()),
    ];
    for f in &figs {
        let xs: Vec<f64> = f.series[0].points.iter().map(|p| p.0).collect();
        for s in &f.series {
            let sx: Vec<f64> = s.points.iter().map(|p| p.0).collect();
            assert_eq!(sx, xs, "{}: series {} x-grid mismatch", f.id, s.label);
        }
        // x strictly increasing.
        for w in xs.windows(2) {
            assert!(w[1] > w[0], "{}: x not increasing", f.id);
        }
        // CSV round-trips the row count.
        let csv = f.to_csv();
        assert_eq!(csv.lines().count(), xs.len() + 1, "{}", f.id);
    }
}
