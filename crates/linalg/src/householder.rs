//! Householder tridiagonalisation of dense symmetric matrices.
//!
//! This is the first half of the classic dense symmetric eigensolver
//! (EISPACK's `tred2`, as presented in Numerical Recipes and Golub & Van
//! Loan §8.3): an orthogonal similarity `QᵀAQ = T` reducing `A` to a
//! symmetric tridiagonal `T`, with the accumulated transform `Q` kept so
//! eigenvectors of `T` can be mapped back to eigenvectors of `A`.

use crate::dense::DenseMatrix;
use crate::error::LinalgError;

/// Result of a tridiagonalisation: `QᵀAQ = tridiag(off, diag, off)`.
#[derive(Debug, Clone)]
pub struct Tridiagonal {
    /// Main diagonal of `T`, length `n`.
    pub diag: Vec<f64>,
    /// Sub/super-diagonal of `T`, length `n` with `off[0] == 0` (the
    /// EISPACK convention: `off[i]` couples rows `i-1` and `i`).
    pub off: Vec<f64>,
    /// The accumulated orthogonal transform, column `j` of `q` is the image
    /// of the `j`-th tridiagonal basis vector in the original space.
    pub q: DenseMatrix,
}

/// Reduce a symmetric matrix to tridiagonal form with accumulated `Q`.
///
/// The input must be square and symmetric (checked up to `1e-10` relative
/// to the Frobenius norm).
pub fn tridiagonalize(a: &DenseMatrix) -> Result<Tridiagonal, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let tol = 1e-10 * a.frobenius_norm().max(1.0);
    a.require_symmetric(tol)?;
    if !crate::vector::all_finite(a.as_slice()) {
        return Err(LinalgError::NonFiniteInput {
            context: "tridiagonalize",
        });
    }

    // Work on a copy; `z` ends up holding Q.
    let mut z = a.clone();
    let mut d = vec![0.0f64; n];
    let mut e = vec![0.0f64; n];

    // Householder reduction (tred2, Numerical Recipes in C §11.2, adapted
    // to 0-based indexing).
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0f64;
        let mut scale = 0.0f64;
        if l > 0 {
            for k in 0..=l {
                scale += z.get(i, k).abs();
            }
            if scale == 0.0 {
                e[i] = z.get(i, l);
            } else {
                for k in 0..=l {
                    let v = z.get(i, k) / scale;
                    z.set(i, k, v);
                    h += v * v;
                }
                let mut f = z.get(i, l);
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z.set(i, l, f - g);
                f = 0.0;
                for j in 0..=l {
                    z.set(j, i, z.get(i, j) / h);
                    let mut g = 0.0;
                    for k in 0..=j {
                        g += z.get(j, k) * z.get(i, k);
                    }
                    for k in j + 1..=l {
                        g += z.get(k, j) * z.get(i, k);
                    }
                    e[j] = g / h;
                    f += e[j] * z.get(i, j);
                }
                let hh = f / (h + h);
                for j in 0..=l {
                    let f = z.get(i, j);
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        let v = z.get(j, k) - (f * e[k] + g * z.get(i, k));
                        z.set(j, k, v);
                    }
                }
            }
        } else {
            e[i] = z.get(i, l);
        }
        d[i] = h;
    }

    d[0] = 0.0;
    e[0] = 0.0;
    // Accumulate transformation matrices.
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += z.get(i, k) * z.get(k, j);
                }
                for k in 0..i {
                    let v = z.get(k, j) - g * z.get(k, i);
                    z.set(k, j, v);
                }
            }
        }
        d[i] = z.get(i, i);
        z.set(i, i, 1.0);
        for j in 0..i {
            z.set(j, i, 0.0);
            z.set(i, j, 0.0);
        }
    }

    Ok(Tridiagonal {
        diag: d,
        off: e,
        q: z,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;

    fn reconstruct(t: &Tridiagonal) -> DenseMatrix {
        // A = Q T Qᵀ
        let n = t.diag.len();
        let mut tm = DenseMatrix::zeros(n, n);
        for i in 0..n {
            tm.set(i, i, t.diag[i]);
            if i > 0 {
                tm.set(i, i - 1, t.off[i]);
                tm.set(i - 1, i, t.off[i]);
            }
        }
        t.q.matmul(&tm).unwrap().matmul(&t.q.transpose()).unwrap()
    }

    fn assert_close(a: &DenseMatrix, b: &DenseMatrix, tol: f64) {
        assert_eq!(a.rows(), b.rows());
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                assert!(
                    (a.get(i, j) - b.get(i, j)).abs() < tol,
                    "mismatch at ({i},{j}): {} vs {}",
                    a.get(i, j),
                    b.get(i, j)
                );
            }
        }
    }

    #[test]
    fn tridiagonal_matrix_is_unchanged() {
        let a = DenseMatrix::from_rows(&[
            vec![2.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 2.0],
        ])
        .unwrap();
        let t = tridiagonalize(&a).unwrap();
        assert_close(&reconstruct(&t), &a, 1e-12);
    }

    #[test]
    fn dense_symmetric_reconstructs() {
        let a = DenseMatrix::from_rows(&[
            vec![4.0, 1.0, -2.0, 2.0],
            vec![1.0, 2.0, 0.0, 1.0],
            vec![-2.0, 0.0, 3.0, -2.0],
            vec![2.0, 1.0, -2.0, -1.0],
        ])
        .unwrap();
        let t = tridiagonalize(&a).unwrap();
        assert_close(&reconstruct(&t), &a, 1e-10);
    }

    #[test]
    fn q_is_orthogonal() {
        let a = DenseMatrix::from_rows(&[
            vec![4.0, 1.0, -2.0, 2.0],
            vec![1.0, 2.0, 0.0, 1.0],
            vec![-2.0, 0.0, 3.0, -2.0],
            vec![2.0, 1.0, -2.0, -1.0],
        ])
        .unwrap();
        let t = tridiagonalize(&a).unwrap();
        let qtq = t.q.transpose().matmul(&t.q).unwrap();
        assert_close(&qtq, &DenseMatrix::identity(4), 1e-12);
    }

    #[test]
    fn random_matrices_reconstruct() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for n in [1usize, 2, 3, 5, 8, 13] {
            let mut a = DenseMatrix::zeros(n, n);
            for i in 0..n {
                for j in 0..=i {
                    let v = rng.gen_range(-1.0..1.0);
                    a.set(i, j, v);
                    a.set(j, i, v);
                }
            }
            let t = tridiagonalize(&a).unwrap();
            assert_close(&reconstruct(&t), &a, 1e-9 * (n as f64));
            assert!(vector::all_finite(&t.diag));
            assert!(vector::all_finite(&t.off));
            assert_eq!(t.off[0], 0.0);
        }
    }

    #[test]
    fn rejects_nonsquare_and_asymmetric() {
        let ns = DenseMatrix::zeros(2, 3);
        assert!(tridiagonalize(&ns).is_err());
        let asym = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]).unwrap();
        assert!(tridiagonalize(&asym).is_err());
    }

    #[test]
    fn one_by_one() {
        let a = DenseMatrix::from_rows(&[vec![5.0]]).unwrap();
        let t = tridiagonalize(&a).unwrap();
        assert_eq!(t.diag, vec![5.0]);
    }
}
