//! Multilevel (coarsen → project → refine) Fiedler solver.
//!
//! The dense QL path is O(n³) and even the Lanczos shift-invert path runs
//! every inner CG solve on the *full* graph, which makes step 3 of the
//! paper's pipeline the scalability bottleneck. This module implements the
//! classic multilevel scheme from the same relaxation lineage the paper
//! cites (Hall 1970 / Fiedler 1973; popularised for spectral partitioning
//! by Barnard & Simon):
//!
//! 1. **Coarsen** — contract the Laplacian by heavy-edge matching
//!    ([`coarsen_laplacian`]) until the graph has at most
//!    [`MultilevelOptions::coarsest_size`] vertices. The coarse operator is
//!    the Galerkin product `PᵀLP` for the piecewise-constant prolongation
//!    `P`, which is again a combinatorial Laplacian of a weighted graph —
//!    exactly the Section 4 weighted-graph extension.
//! 2. **Solve** — compute the bottom eigenpairs of the coarsest Laplacian
//!    with the existing dense Householder + QL path.
//! 3. **Prolong + refine** — interpolate each eigenvector back up one level
//!    and refine it with block inverse iteration (warm-started Jacobi-PCG
//!    solves, see [`crate::pcg`]) plus a Rayleigh–Ritz projection per step.
//!
//! Only a handful of loosely-converged solves ever touch the finest graph,
//! which is what makes spectral ordering at 10⁵–10⁶ points practical.

use crate::cg::CgOptions;
use crate::dense::DenseMatrix;
use crate::error::LinalgError;
use crate::parallel::Pool;
use crate::pcg;
use crate::sparse::CsrMatrix;
use crate::tql;
use crate::vector;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Coarse-to-fine interpolation scheme used when walking back up the
/// hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Prolongation {
    /// Edge-weight-scaled interpolation (default): each fine vertex takes
    /// the weighted average of its neighbours' aggregate values,
    /// `x[v] = Σ_j w_vj · x_c[parent[j]] / Σ_j w_vj`. The injected error is
    /// far smoother than piecewise-constant blocks, which cuts the
    /// refinement sweeps the finest levels need.
    #[default]
    Weighted,
    /// Piecewise-constant injection `x[v] = x_c[parent[v]]` — the classic
    /// aggregation transfer, kept as an option (it is the transpose of the
    /// restriction defining the Galerkin coarse operator, and the baseline
    /// the weighted scheme is measured against).
    PiecewiseConstant,
}

/// Tuning knobs for the multilevel solver (carried inside
/// [`crate::fiedler::FiedlerOptions::multilevel`]).
#[derive(Debug, Clone)]
pub struct MultilevelOptions {
    /// Stop coarsening once a level has at most this many vertices; the
    /// coarsest level is handed to the dense eigensolver.
    pub coarsest_size: usize,
    /// Extra "guard" vectors refined alongside the requested eigenpairs.
    /// A block of `k + guard_vectors` widens the spectral gap the block
    /// iteration contracts with (λ_k / λ_{k+guard+1} instead of
    /// λ_k / λ_{k+1}), which matters on grids whose low eigenvalues
    /// cluster.
    pub guard_vectors: usize,
    /// Refinement sweeps on the **finest** level before giving up.
    pub max_refine_steps: usize,
    /// Refinement sweeps on each intermediate level (prolongation error
    /// dominates there, so a couple of sweeps suffice).
    pub intermediate_steps: usize,
    /// Weighted-Jacobi smoothing passes applied to each vector right after
    /// prolongation. Piecewise-constant interpolation injects *blocky*,
    /// high-frequency error, which a smoother damps at the cost of one
    /// matvec per pass — far cheaper than an extra inverse-iteration sweep.
    pub smoothing_passes: usize,
    /// Relative tolerance of each inner Jacobi-PCG correction solve.
    /// Loose on purpose: inverse iteration converges with inexact solves,
    /// and the correction form keeps the effective accuracy improving as
    /// the eigenvector does.
    pub inner_tolerance: f64,
    /// Abort coarsening when a level shrinks by less than this factor
    /// (pathological graphs — stars, cliques — defeat matching; the
    /// hierarchy then just stops early and the coarse solve is bigger).
    pub min_shrink: f64,
    /// Coarse-to-fine interpolation scheme (see [`Prolongation`]).
    pub prolongation: Prolongation,
    /// Worker threads for the row-parallel kernels (matvec, smoothing,
    /// PCG, prolongation): `Some(t)` pins the count, `None` uses
    /// [`crate::parallel::default_threads`]. The thread count never
    /// changes results — all reductions use the fixed-chunk deterministic
    /// order of [`crate::parallel`].
    pub threads: Option<usize>,
}

impl Default for MultilevelOptions {
    fn default() -> Self {
        MultilevelOptions {
            coarsest_size: 256,
            guard_vectors: 2,
            max_refine_steps: 40,
            intermediate_steps: 3,
            smoothing_passes: 3,
            inner_tolerance: 0.15,
            min_shrink: 0.95,
            prolongation: Prolongation::default(),
            threads: None,
        }
    }
}

/// One coarsening step: the Galerkin-contracted Laplacian plus the
/// fine-vertex → coarse-vertex map that defines the prolongation.
#[derive(Debug, Clone)]
pub struct Coarsening {
    /// The coarse Laplacian `PᵀLP` (a combinatorial Laplacian of the
    /// contracted weighted graph).
    pub coarse: CsrMatrix,
    /// `parent[v]` is the coarse vertex that fine vertex `v` was merged
    /// into. Prolongation is `x_fine[v] = x_coarse[parent[v]]`.
    pub parent: Vec<usize>,
}

/// A full coarsening hierarchy for one Laplacian: the sequence of
/// [`Coarsening`] steps the multilevel solver walks down and back up.
///
/// Building the hierarchy (greedy matching + Galerkin contraction per
/// level) is a fixed cost independent of how many eigensolves run on it.
/// Recursive spectral bisection exploits that through
/// [`Hierarchy::restrict`]: instead of re-matching each half from
/// scratch, the parent hierarchy is **restricted** to the half's vertex
/// set — every matched pair that survives inside the half stays merged,
/// pairs straddling the cut degrade to singletons, and each coarse
/// operator is the Galerkin contraction of the restricted fine operator,
/// so every level remains a genuine Laplacian.
#[derive(Debug, Clone, Default)]
pub struct Hierarchy {
    /// Fine-to-coarse steps, finest first; `levels[i].coarse` is the
    /// operator level `i + 1` lives on.
    pub levels: Vec<Coarsening>,
}

impl Hierarchy {
    /// Coarsen `laplacian` by heavy-edge matching until a level has at
    /// most `opts.coarsest_size.max(floor)` vertices, matching stalls
    /// (shrink factor below `opts.min_shrink`), or a level would not be
    /// strictly larger than `floor`. Identical, level for level, to what
    /// the eigensolver builds internally — the eigensolver simply calls
    /// this.
    pub fn build(
        laplacian: &CsrMatrix,
        floor: usize,
        opts: &MultilevelOptions,
        pool: &Pool,
    ) -> Result<Hierarchy, LinalgError> {
        let coarsest_size = opts.coarsest_size.max(floor + 2);
        let mut levels: Vec<Coarsening> = Vec::new();
        let mut current = laplacian;
        while current.rows() > coarsest_size {
            let step = coarsen_laplacian_pooled(current, pool)?;
            let shrunk = step.coarse_len() < (current.rows() as f64 * opts.min_shrink) as usize;
            if !shrunk || step.coarse_len() <= floor {
                break;
            }
            levels.push(step);
            current = &levels.last().expect("just pushed").coarse;
        }
        Ok(Hierarchy { levels })
    }

    /// The coarsest operator of the hierarchy, or `fallback` (the finest
    /// operator) when no level was built.
    pub fn coarsest<'a>(&'a self, fallback: &'a CsrMatrix) -> &'a CsrMatrix {
        self.levels.last().map_or(fallback, |c| &c.coarse)
    }

    /// Restrict this hierarchy to an induced sub-problem.
    ///
    /// `vertices` are finest-level vertex indices of this hierarchy (in
    /// the order the sub-problem numbers them — the `ids` returned by
    /// `induced_subgraph`), and `sub` is the sub-problem's own Laplacian
    /// on that numbering. Per level, the parent map is compressed onto
    /// the surviving vertices (distinct coarse ids in ascending order, so
    /// the numbering is deterministic) and the coarse operator is the
    /// Galerkin contraction `PᵀLP` of the restricted fine operator. The
    /// walk stops exactly as [`Hierarchy::build`] does — insufficient
    /// shrink or small enough — and if the parent hierarchy runs out of
    /// levels while the sub-problem is still large, fresh heavy-edge
    /// coarsening extends it.
    ///
    /// Matched pairs are edges of the parent graph, so a pair inside the
    /// sub-problem is still an edge of `sub`; contraction by such pairs
    /// preserves connectivity, which keeps the solver's connected-input
    /// precondition intact for connected sub-problems.
    pub fn restrict(
        &self,
        vertices: &[usize],
        sub: &CsrMatrix,
        floor: usize,
        opts: &MultilevelOptions,
        pool: &Pool,
    ) -> Result<Hierarchy, LinalgError> {
        let coarsest_size = opts.coarsest_size.max(floor + 2);
        let mut levels: Vec<Coarsening> = Vec::new();
        // `ids[i]` = the parent-hierarchy vertex (at the current depth's
        // fine level) that local vertex `i` of the current operator is.
        let mut ids: Vec<usize> = vertices.to_vec();
        let mut current: CsrMatrix = sub.clone();
        for step in &self.levels {
            if current.rows() <= coarsest_size {
                break;
            }
            // Compress the parent map onto the surviving vertices:
            // distinct coarse ids, ascending, become the local numbering.
            let mut coarse_ids: Vec<usize> = ids.iter().map(|&v| step.parent[v]).collect();
            let mut sorted = coarse_ids.clone();
            sorted.sort_unstable();
            sorted.dedup();
            let rank = |c: usize| sorted.binary_search(&c).expect("own coarse id");
            for c in coarse_ids.iter_mut() {
                *c = rank(*c);
            }
            let local_parent = coarse_ids;
            let coarse_len = sorted.len();
            let shrunk = coarse_len < (current.rows() as f64 * opts.min_shrink) as usize;
            if !shrunk || coarse_len <= floor {
                break;
            }
            // Galerkin contraction of the *restricted* fine operator by
            // the restricted parent map — same triplet remap as
            // `coarsen_laplacian_pooled`, so the result is a Laplacian.
            let coarse = galerkin_contract(&current, &local_parent, coarse_len, pool)?;
            ids = sorted;
            current = coarse.clone();
            levels.push(Coarsening {
                coarse,
                parent: local_parent,
            });
        }
        // Parent hierarchy exhausted but the sub-problem is still big:
        // extend with fresh matching (rare — restricted levels shrink at
        // the parent's rate).
        while current.rows() > coarsest_size {
            let step = coarsen_laplacian_pooled(&current, pool)?;
            let shrunk = step.coarse_len() < (current.rows() as f64 * opts.min_shrink) as usize;
            if !shrunk || step.coarse_len() <= floor {
                break;
            }
            current = step.coarse.clone();
            levels.push(step);
        }
        Ok(Hierarchy { levels })
    }
}

/// Galerkin contraction `PᵀLP` for a piecewise-constant prolongation given
/// by `parent`: every fine triplet `(i, j, v)` lands at
/// `(parent[i], parent[j])` and `from_triplets` sums duplicates, which
/// preserves symmetry and zero row sums exactly. Row-chunked on the pool.
fn galerkin_contract(
    fine: &CsrMatrix,
    parent: &[usize],
    coarse_len: usize,
    pool: &Pool,
) -> Result<CsrMatrix, LinalgError> {
    let n = fine.rows();
    debug_assert_eq!(parent.len(), n);
    let triplets = pool
        .map_chunks(n, |lo, hi| {
            let mut local = Vec::new();
            for i in lo..hi {
                for (j, v) in fine.row_iter(i) {
                    local.push((parent[i], parent[j], v));
                }
            }
            local
        })
        .concat();
    CsrMatrix::from_triplets(coarse_len, coarse_len, &triplets)
}

impl Coarsening {
    /// Number of coarse vertices.
    pub fn coarse_len(&self) -> usize {
        self.coarse.rows()
    }

    /// Interpolate a coarse-level vector back to the fine level
    /// (piecewise-constant prolongation).
    pub fn prolong(&self, coarse_values: &[f64]) -> Vec<f64> {
        self.parent.iter().map(|&p| coarse_values[p]).collect()
    }
}

/// Contract a Laplacian one level by heavy-edge matching.
///
/// Edges are visited in order of **decreasing weight** (ties broken by the
/// smaller endpoint pair, so the result is deterministic); an edge whose
/// endpoints are both unmatched contracts them into one coarse vertex —
/// the classic greedy ½-approximation of the maximum-weight matching.
/// Vertices left unmatched become singletons. The contracted operator is
/// the Galerkin product `PᵀLP`, computed directly by re-mapping the fine
/// triplets — merged-pair internal edges cancel into the diagonal, and
/// parallel coarse edges sum their weights, preserving Laplacian structure
/// (symmetry and zero row sums) exactly.
pub fn coarsen_laplacian(laplacian: &CsrMatrix) -> Result<Coarsening, LinalgError> {
    // xtask:allow(adhoc-pool): compatibility entry point — pooled callers
    // use coarsen_laplacian_pooled instead.
    coarsen_laplacian_pooled(laplacian, &Pool::default())
}

/// [`coarsen_laplacian`] with an explicit worker pool: the edge-rating
/// pass (collecting and weighting every undirected edge for the greedy
/// matching) and the Galerkin triplet remap both run row-chunked on the
/// pool; the matching itself is inherently sequential and stays serial.
/// Chunk order is fixed, so the result is identical for every thread
/// count.
pub fn coarsen_laplacian_pooled(
    laplacian: &CsrMatrix,
    pool: &Pool,
) -> Result<Coarsening, LinalgError> {
    let n = laplacian.rows();
    if laplacian.cols() != n {
        return Err(LinalgError::DimensionMismatch {
            context: "coarsen_laplacian: matrix not square",
            expected: n,
            found: laplacian.cols(),
        });
    }
    // Off-diagonal Laplacian entries are −w for edge weight w > 0; collect
    // each undirected edge once from the upper triangle (the edge-rating
    // pass, row-chunked on the pool).
    let mut edges: Vec<(f64, usize, usize)> = pool
        .map_chunks(n, |lo, hi| {
            let mut local = Vec::new();
            for u in lo..hi {
                for (v, entry) in laplacian.row_iter(u) {
                    if v > u && -entry > 0.0 {
                        local.push((-entry, u, v));
                    }
                }
            }
            local
        })
        .concat();
    edges.sort_unstable_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .expect("finite weights by CSR invariant")
            .then_with(|| (a.1, a.2).cmp(&(b.1, b.2)))
    });

    const UNMATCHED: usize = usize::MAX;
    let mut mate = vec![UNMATCHED; n];
    for &(_, u, v) in &edges {
        if mate[u] == UNMATCHED && mate[v] == UNMATCHED {
            mate[u] = v;
            mate[v] = u;
        }
    }
    for (u, m) in mate.iter_mut().enumerate() {
        if *m == UNMATCHED {
            *m = u; // singleton
        }
    }

    // Assign coarse ids in order of each pair's smaller endpoint.
    let mut parent = vec![UNMATCHED; n];
    let mut next = 0usize;
    for u in 0..n {
        if parent[u] != UNMATCHED {
            continue;
        }
        parent[u] = next;
        let m = mate[u];
        if m != u {
            parent[m] = next;
        }
        next += 1;
    }

    // Galerkin triplets: every fine entry (i, j, v) lands at
    // (parent[i], parent[j]); from_triplets sums duplicates. Row-chunked
    // remap on the pool (the sort/merge inside from_triplets stays
    // serial).
    let parent_ref = &parent;
    let triplets = pool
        .map_chunks(n, |lo, hi| {
            let mut local = Vec::new();
            for i in lo..hi {
                for (j, v) in laplacian.row_iter(i) {
                    local.push((parent_ref[i], parent_ref[j], v));
                }
            }
            local
        })
        .concat();
    let coarse = CsrMatrix::from_triplets(next, next, &triplets)?;
    Ok(Coarsening { coarse, parent })
}

/// The `k` smallest **nonzero** eigenpairs of a connected Laplacian by the
/// multilevel scheme, ascending: `(λ₂, v₂), …, (λ_{k+1}, v_{k+1})`.
///
/// Each representative is mean-centred, unit-norm and sign-canonicalised,
/// with its eigenvalue refreshed as a Rayleigh quotient against the input
/// Laplacian — the same canonical form the dense and Lanczos paths return.
///
/// Preconditions are the caller's (see [`crate::fiedler::fiedler_pair`]):
/// the matrix must be an actual Laplacian of a **connected** graph. The
/// convergence target is `‖Lv − λv‖ ≤ tolerance · max(gershgorin, 1)`,
/// scaled to the matrix magnitude so large weighted graphs converge.
pub fn smallest_nonzero_eigenpairs(
    laplacian: &CsrMatrix,
    k: usize,
    tolerance: f64,
    seed: u64,
    opts: &MultilevelOptions,
) -> Result<Vec<(f64, Vec<f64>)>, LinalgError> {
    // xtask:allow(adhoc-pool): compatibility entry point — resolves
    // opts.threads into a scoped pool; pooled callers use the _on variant.
    let pool = Pool::new(opts.threads);
    smallest_nonzero_eigenpairs_on(laplacian, k, tolerance, seed, opts, &pool)
}

/// [`smallest_nonzero_eigenpairs`] on a caller-supplied [`Pool`] — the
/// path the CLI and recursive bisection use so every kernel down the call
/// chain (coarsening, smoothing, PCG, matvec) schedules onto the same
/// persistent executor. `opts.threads` is ignored; the pool decides.
pub fn smallest_nonzero_eigenpairs_on(
    laplacian: &CsrMatrix,
    k: usize,
    tolerance: f64,
    seed: u64,
    opts: &MultilevelOptions,
    pool: &Pool,
) -> Result<Vec<(f64, Vec<f64>)>, LinalgError> {
    let n = laplacian.rows();
    if n < k + 1 {
        return Err(LinalgError::ProblemTooSmall {
            dimension: n,
            minimum: k + 1,
        });
    }
    if k == 0 {
        return Ok(vec![]);
    }

    // Small problems skip the hierarchy entirely: the coarse solver *is*
    // the exact dense path.
    let coarsest_size = opts.coarsest_size.max(k + 2);
    if n <= coarsest_size {
        return dense_smallest(laplacian, k);
    }

    // Block width: requested pairs plus guard vectors, capped so the
    // coarsest dense solve can supply them all.
    let block = (k + opts.guard_vectors).min(coarsest_size - 1);

    // --- 1. Coarsen until the graph is small (or matching stalls). ---
    let hierarchy = Hierarchy::build(laplacian, block, opts, pool)?;
    smallest_nonzero_eigenpairs_on_hierarchy(laplacian, &hierarchy, k, tolerance, seed, opts, pool)
}

/// The solve phase of [`smallest_nonzero_eigenpairs_on`] on a prebuilt
/// [`Hierarchy`]: coarsest-level solve, then the prolong + smooth +
/// refine walk back up. Recursive bisection calls this directly with
/// [`Hierarchy::restrict`]ed hierarchies so each half skips re-coarsening.
///
/// The hierarchy must belong to `laplacian` (its first level's parent map
/// is indexed by `laplacian`'s rows); small problems
/// (`n ≤ coarsest_size`) take the exact dense path regardless.
pub fn smallest_nonzero_eigenpairs_on_hierarchy(
    laplacian: &CsrMatrix,
    hierarchy: &Hierarchy,
    k: usize,
    tolerance: f64,
    seed: u64,
    opts: &MultilevelOptions,
    pool: &Pool,
) -> Result<Vec<(f64, Vec<f64>)>, LinalgError> {
    let n = laplacian.rows();
    if n < k + 1 {
        return Err(LinalgError::ProblemTooSmall {
            dimension: n,
            minimum: k + 1,
        });
    }
    if k == 0 {
        return Ok(vec![]);
    }
    let coarsest_size = opts.coarsest_size.max(k + 2);
    if n <= coarsest_size {
        return dense_smallest(laplacian, k);
    }
    let block = (k + opts.guard_vectors).min(coarsest_size - 1);
    let levels = &hierarchy.levels;

    // --- 2. Solve the coarsest level. ---
    // Matching can stall far above `coarsest_size` (hub/clique-like graphs
    // defeat edge matching); materialising such a level densely would cost
    // O(n²) memory, so past a small multiple of the intended coarsest size
    // the bottom pairs come from shift-invert Lanczos instead.
    let coarsest = levels.last().map_or(laplacian, |c| &c.coarse);
    let dense_cap = coarsest_size.saturating_mul(4);
    let coarse_pairs = if coarsest.rows() <= dense_cap {
        dense_smallest(coarsest, block)?
    } else {
        crate::fiedler::smallest_nonzero_eigenpairs_on(
            coarsest,
            block,
            &crate::fiedler::FiedlerOptions {
                method: crate::fiedler::FiedlerMethod::ShiftInvert,
                tolerance,
                seed,
                ..Default::default()
            },
            pool,
        )?
    };
    if levels.is_empty() {
        // Matching stalled immediately: the coarse solve already ran on
        // the input itself.
        return Ok(coarse_pairs.into_iter().take(k).collect());
    }
    let mut lambdas: Vec<f64> = coarse_pairs.iter().map(|(l, _)| *l).collect();
    let mut vectors: Vec<Vec<f64>> = coarse_pairs.into_iter().map(|(_, v)| v).collect();

    // --- 3. Walk back up: prolong, then refine at every level. ---
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_C0A2_5E00_0000);
    let scale = laplacian.gershgorin_upper_bound().max(1.0);
    let target = tolerance * scale;
    for depth in (0..levels.len()).rev() {
        let step = &levels[depth];
        let fine = if depth == 0 {
            laplacian
        } else {
            &levels[depth - 1].coarse
        };
        for v in &mut vectors {
            *v = prolong_pooled(fine, step, v, opts.prolongation, pool);
        }
        smooth_block(fine, &mut vectors, &lambdas, opts.smoothing_passes, pool);
        let finest = depth == 0;
        let sweeps = if finest {
            opts.max_refine_steps
        } else {
            opts.intermediate_steps
        };
        // Intermediate levels only chase prolongation error; the finest
        // level must actually hit the convergence target.
        let level_target = if finest { target } else { f64::INFINITY };
        lambdas = refine_block(
            fine,
            &mut vectors,
            k,
            level_target,
            sweeps,
            opts,
            &mut rng,
            pool,
        )?;
        if finest {
            let worst = worst_residual(fine, &vectors, &lambdas, k, pool)?;
            if worst > target {
                return Err(LinalgError::NoConvergence {
                    solver: "multilevel",
                    iterations: opts.max_refine_steps,
                    residual: worst,
                    tolerance: target,
                });
            }
        }
    }

    let mut out = Vec::with_capacity(k);
    for (lambda, mut v) in lambdas.into_iter().zip(vectors).take(k) {
        vector::center(&mut v);
        if vector::normalize(&mut v) == 0.0 {
            return Err(LinalgError::NonFiniteInput {
                context: "multilevel: refined eigenvector collapsed",
            });
        }
        vector::canonicalize_sign(&mut v);
        out.push((lambda, v));
    }
    Ok(out)
}

/// Refine the bottom `k` nonzero eigenpairs **directly at the fine
/// level** from caller-supplied warm-start vectors, skipping the coarse
/// hierarchy entirely.
///
/// Recursive bisection uses this to amortise the parent fragment's solve:
/// the parent's refined Fiedler vector restricted to a half is an
/// excellent starting block for the half's own eigenproblem, so the child
/// can skip the coarsest dense solve and the prolong/smooth walk-up. The
/// block is padded to `k + guard_vectors` with seeded random guards, and
/// the convergence target is identical to the hierarchy path's
/// (`tolerance · max(gershgorin, 1)`); if [`MultilevelOptions::max_refine_steps`]
/// sweeps cannot reach it from the supplied guess, the call returns
/// [`LinalgError::NoConvergence`] and the caller should fall back to a
/// full hierarchy solve.
pub fn refine_warm_started_on(
    laplacian: &CsrMatrix,
    warm: &[Vec<f64>],
    k: usize,
    tolerance: f64,
    seed: u64,
    opts: &MultilevelOptions,
    pool: &Pool,
) -> Result<Vec<(f64, Vec<f64>)>, LinalgError> {
    let n = laplacian.rows();
    if n < k + 1 {
        return Err(LinalgError::ProblemTooSmall {
            dimension: n,
            minimum: k + 1,
        });
    }
    if k == 0 {
        return Ok(vec![]);
    }
    for w in warm {
        if w.len() != n {
            return Err(LinalgError::DimensionMismatch {
                context: "multilevel warm start",
                expected: n,
                found: w.len(),
            });
        }
    }
    let block = (k + opts.guard_vectors).max(k).min(n - 1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_AA3A_5E00_0001);
    let mut vectors: Vec<Vec<f64>> = warm.iter().take(block).cloned().collect();
    while vectors.len() < block {
        let mut v = vec![0.0; n];
        vector::fill_random(&mut rng, &mut v);
        vectors.push(v);
    }
    let scale = laplacian.gershgorin_upper_bound().max(1.0);
    let target = tolerance * scale;
    let lambdas = refine_block(
        laplacian,
        &mut vectors,
        k,
        target,
        opts.max_refine_steps,
        opts,
        &mut rng,
        pool,
    )?;
    let worst = worst_residual(laplacian, &vectors, &lambdas, k, pool)?;
    if worst > target {
        return Err(LinalgError::NoConvergence {
            solver: "multilevel warm start",
            iterations: opts.max_refine_steps,
            residual: worst,
            tolerance: target,
        });
    }
    let mut out = Vec::with_capacity(k);
    for (lambda, mut v) in lambdas.into_iter().zip(vectors).take(k) {
        vector::center(&mut v);
        if vector::normalize(&mut v) == 0.0 {
            return Err(LinalgError::NonFiniteInput {
                context: "multilevel warm start: refined eigenvector collapsed",
            });
        }
        vector::canonicalize_sign(&mut v);
        out.push((lambda, v));
    }
    Ok(out)
}

/// [`smallest_nonzero_eigenpairs`] specialised to the Fiedler pair.
pub fn fiedler_pair(
    laplacian: &CsrMatrix,
    tolerance: f64,
    seed: u64,
    opts: &MultilevelOptions,
) -> Result<(f64, Vec<f64>), LinalgError> {
    let mut pairs = smallest_nonzero_eigenpairs(laplacian, 1, tolerance, seed, opts)?;
    let (lambda, v) = pairs.swap_remove(0);
    Ok((lambda, v))
}

/// [`fiedler_pair`] on a caller-supplied [`Pool`].
pub fn fiedler_pair_on(
    laplacian: &CsrMatrix,
    tolerance: f64,
    seed: u64,
    opts: &MultilevelOptions,
    pool: &Pool,
) -> Result<(f64, Vec<f64>), LinalgError> {
    let mut pairs = smallest_nonzero_eigenpairs_on(laplacian, 1, tolerance, seed, opts, pool)?;
    let (lambda, v) = pairs.swap_remove(0);
    Ok((lambda, v))
}

/// Exact bottom-of-spectrum solve via the dense Householder + QL path, in
/// the crate's canonical form (centred, unit, sign-canonical, ascending).
/// Shared with [`crate::fiedler::smallest_nonzero_eigenpairs`]'s dense
/// branch so the canonical-form convention lives in exactly one place.
pub(crate) fn dense_smallest(
    laplacian: &CsrMatrix,
    k: usize,
) -> Result<Vec<(f64, Vec<f64>)>, LinalgError> {
    let eig = tql::symmetric_eigen(&laplacian.to_dense())?;
    let mut out = Vec::with_capacity(k);
    for i in 1..=k {
        let mut v = eig.eigenvector(i);
        vector::center(&mut v);
        if vector::normalize(&mut v) == 0.0 {
            return Err(LinalgError::NonFiniteInput {
                context: "dense eigensolve: eigenvector collapsed (disconnected graph?)",
            });
        }
        vector::canonicalize_sign(&mut v);
        out.push((eig.eigenvalues[i], v));
    }
    Ok(out)
}

/// Interpolate one coarse-level vector to the fine level on the pool.
///
/// `fine` is the matrix of the level being prolonged **to** (its row count
/// equals `step.parent.len()`); the weighted scheme reads its off-diagonal
/// weights, the piecewise-constant scheme only gathers through
/// `step.parent`. Elementwise per fine vertex, so bitwise identical for
/// every thread count.
fn prolong_pooled(
    fine: &CsrMatrix,
    step: &Coarsening,
    coarse_values: &[f64],
    scheme: Prolongation,
    pool: &Pool,
) -> Vec<f64> {
    let parent = &step.parent;
    debug_assert_eq!(fine.rows(), parent.len());
    let mut out = vec![0.0; parent.len()];
    match scheme {
        Prolongation::PiecewiseConstant => {
            pool.for_each_chunk(&mut out, |off, chunk| {
                for (j, o) in chunk.iter_mut().enumerate() {
                    *o = coarse_values[parent[off + j]];
                }
            });
        }
        Prolongation::Weighted => {
            pool.for_each_chunk(&mut out, |off, chunk| {
                for (j, o) in chunk.iter_mut().enumerate() {
                    let v = off + j;
                    let mut num = 0.0;
                    let mut den = 0.0;
                    for (u, entry) in fine.row_iter(v) {
                        if u != v && entry < 0.0 {
                            num += -entry * coarse_values[parent[u]];
                            den += -entry;
                        }
                    }
                    // Isolated vertices (no edges) fall back to injection.
                    *o = if den > 0.0 {
                        num / den
                    } else {
                        coarse_values[parent[v]]
                    };
                }
            });
        }
    }
    out
}

/// Worst residual `‖Lvᵢ − λᵢvᵢ‖` over the first `k` block vectors.
fn worst_residual(
    laplacian: &CsrMatrix,
    vectors: &[Vec<f64>],
    lambdas: &[f64],
    k: usize,
    pool: &Pool,
) -> Result<f64, LinalgError> {
    let n = laplacian.rows();
    let mut worst = 0.0f64;
    let mut r = vec![0.0; n];
    for i in 0..k {
        if vectors[i].len() != n {
            return Err(LinalgError::DimensionMismatch {
                context: "multilevel worst_residual",
                expected: n,
                found: vectors[i].len(),
            });
        }
        pool.matvec_into(laplacian, &vectors[i], &mut r);
        pool.axpy(-lambdas[i], &vectors[i], &mut r);
        worst = worst.max(pool.norm2(&r));
    }
    Ok(worst)
}

/// Damp the high-frequency component of freshly-prolonged vectors with a
/// few weighted-Jacobi passes on `(L − θI)v`: eigencomponents near θ are
/// preserved while the blocky interpolation error (which lives at the top
/// of the spectrum) shrinks by a constant factor per pass, at one matvec
/// each. Row-parallel on the pool; thread count never changes the result.
fn smooth_block(
    laplacian: &CsrMatrix,
    vectors: &mut [Vec<f64>],
    lambdas: &[f64],
    passes: usize,
    pool: &Pool,
) {
    if passes == 0 {
        return;
    }
    let n = laplacian.rows();
    let mut inv_diag = vec![0.0; n];
    pool.for_each_chunk(&mut inv_diag, |row0, chunk| {
        for (j, d) in chunk.iter_mut().enumerate() {
            let v = laplacian.get(row0 + j, row0 + j);
            *d = if v > 0.0 { 1.0 / v } else { 0.0 };
        }
    });
    const OMEGA: f64 = 0.7;
    let mut r = vec![0.0; n];
    for (v, &theta) in vectors.iter_mut().zip(lambdas) {
        for _ in 0..passes {
            pool.matvec_into(laplacian, v, &mut r);
            pool.axpy(-theta, v, &mut r);
            // Level-1 elementwise update — light engagement threshold.
            pool.for_each_chunk_light(v, |off, chunk| {
                for (j, vi) in chunk.iter_mut().enumerate() {
                    *vi -= OMEGA * r[off + j] * inv_diag[off + j];
                }
            });
        }
    }
}

/// Block inverse iteration with per-sweep Rayleigh–Ritz projection.
///
/// Refines `vectors` in place towards the bottom nonzero eigenspace of
/// `laplacian` and returns the Ritz values (ascending, aligned with the
/// block). Stops early once the first `k` residuals are below `target`.
///
/// Each sweep: (a) centre + orthonormalise the block, (b) Rayleigh–Ritz on
/// the b-dimensional subspace, (c) one warm-started inverse-iteration
/// correction per vector — solve `L d = v − Lv/θ` with Jacobi-PCG and set
/// `v ← v/θ + d`, which equals the inverse-iteration update `L⁻¹v` but
/// hands the solver a right-hand side that shrinks with the eigen-residual.
#[allow(clippy::too_many_arguments)]
fn refine_block(
    laplacian: &CsrMatrix,
    vectors: &mut [Vec<f64>],
    k: usize,
    target: f64,
    sweeps: usize,
    opts: &MultilevelOptions,
    rng: &mut StdRng,
    pool: &Pool,
) -> Result<Vec<f64>, LinalgError> {
    let n = laplacian.rows();
    let b = vectors.len();
    let cg_opts = CgOptions {
        tolerance: opts.inner_tolerance,
        max_iterations: None,
        deflate_mean: true,
        threads: Some(pool.threads()),
    };
    let mut lambdas = vec![0.0; b];
    for sweep in 0..sweeps.max(1) {
        orthonormalize(vectors, rng, pool);

        // Rayleigh–Ritz: T = VᵀLV, rotate V by T's eigenbasis.
        let lv: Vec<Vec<f64>> = vectors
            .iter()
            .map(|v| {
                let mut y = vec![0.0; n];
                pool.matvec_into(laplacian, v, &mut y);
                y
            })
            .collect();
        let mut t = DenseMatrix::zeros(b, b);
        for i in 0..b {
            for j in i..b {
                let e = pool.dot(&vectors[i], &lv[j]);
                t.set(i, j, e);
                t.set(j, i, e);
            }
        }
        let ritz = tql::symmetric_eigen(&t)?;
        let rotated = rotate(vectors, &ritz, pool);
        let rotated_lv = rotate(&lv, &ritz, pool);
        for (dst, src) in vectors.iter_mut().zip(rotated) {
            *dst = src;
        }
        lambdas.copy_from_slice(&ritz.eigenvalues);

        // Residuals of the whole block (we have LV for free); convergence
        // is gated on the k wanted pairs only.
        let mut residuals = vec![0.0f64; b];
        for i in 0..b {
            let mut r = rotated_lv[i].clone();
            pool.axpy(-lambdas[i], &vectors[i], &mut r);
            residuals[i] = pool.norm2(&r);
        }
        let worst = residuals[..k].iter().cloned().fold(0.0f64, f64::max);
        // With a finite target this is a convergence check; on intermediate
        // levels (infinite target) every sweep but the last runs its
        // correction, and the trailing Rayleigh–Ritz still leaves the block
        // orthonormal for prolongation.
        if (target.is_finite() && worst <= target) || sweep + 1 == sweeps {
            break;
        }

        // Inverse-iteration correction per block vector, skipping (locking)
        // vectors already well below the convergence target — typically the
        // wanted pairs, whose spectral gaps are widest, leaving only the
        // guard vectors to pay for solves in late sweeps.
        let lock_below = if target.is_finite() {
            0.3 * target
        } else {
            0.0
        };
        for (i, v) in vectors.iter_mut().enumerate() {
            if residuals[i] <= lock_below {
                continue;
            }
            let theta = lambdas[i];
            if !(theta.is_finite() && theta > 0.0) {
                return Err(LinalgError::NotPositiveDefinite { curvature: theta });
            }
            // rhs = v − Lv/θ has norm ‖residual‖/θ, so the relative PCG
            // tolerance tightens automatically as the pair converges.
            let mut rhs = rotated_lv[i].clone();
            pool.scale(-1.0 / theta, &mut rhs);
            pool.axpy(1.0, v, &mut rhs);
            // The inner solve inherits this pool — nested kernels must
            // never fall back to per-call scoped spawns.
            let correction = pcg::solve_jacobi_on(laplacian, &rhs, &cg_opts, *pool)?;
            let mut x = correction.solution;
            pool.axpy(1.0 / theta, v, &mut x);
            *v = x;
        }
    }
    Ok(lambdas)
}

/// Centre every block vector and orthonormalise with modified Gram–Schmidt,
/// replacing any collapsed vector by a fresh seeded random direction.
/// Runs the dots/axpys on the pool (bitwise equal to serial).
fn orthonormalize(vectors: &mut [Vec<f64>], rng: &mut StdRng, pool: &Pool) {
    for i in 0..vectors.len() {
        let mut attempts = 0;
        loop {
            let (done, rest) = vectors.split_at_mut(i);
            let v = &mut rest[0];
            pool.center(v);
            for q in done.iter() {
                let c = pool.dot(q, v);
                pool.axpy(-c, q, v);
            }
            let norm = pool.norm2(v);
            if norm > 1e-10 {
                pool.scale(1.0 / norm, v);
                break;
            }
            if attempts >= 4 {
                if norm > 0.0 {
                    pool.scale(1.0 / norm, v);
                }
                break;
            }
            vector::fill_random(rng, v);
            attempts += 1;
        }
    }
}

/// `V · Y` for the Ritz rotation `Y` (eigenvectors of the projected
/// operator, ascending). Axpys run on the pool.
fn rotate(vectors: &[Vec<f64>], ritz: &tql::SymmetricEigen, pool: &Pool) -> Vec<Vec<f64>> {
    let b = vectors.len();
    let n = vectors[0].len();
    let mut out = vec![vec![0.0; n]; b];
    for (col, dst) in out.iter_mut().enumerate() {
        let y = ritz.eigenvector(col);
        for (j, vj) in vectors.iter().enumerate() {
            pool.axpy(y[j], vj, dst);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_laplacian(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            let deg = if i == 0 || i == n - 1 { 1.0 } else { 2.0 };
            t.push((i, i, deg));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, &t).unwrap()
    }

    fn grid_laplacian(w: usize, h: usize) -> CsrMatrix {
        let idx = |x: usize, y: usize| x * h + y;
        let mut t = Vec::new();
        let mut deg = vec![0.0; w * h];
        let edge = |t: &mut Vec<(usize, usize, f64)>, deg: &mut Vec<f64>, a: usize, b: usize| {
            t.push((a, b, -1.0));
            t.push((b, a, -1.0));
            deg[a] += 1.0;
            deg[b] += 1.0;
        };
        for x in 0..w {
            for y in 0..h {
                if x + 1 < w {
                    edge(&mut t, &mut deg, idx(x, y), idx(x + 1, y));
                }
                if y + 1 < h {
                    edge(&mut t, &mut deg, idx(x, y), idx(x, y + 1));
                }
            }
        }
        for (i, d) in deg.into_iter().enumerate() {
            t.push((i, i, d));
        }
        CsrMatrix::from_triplets(w * h, w * h, &t).unwrap()
    }

    #[test]
    fn coarsening_preserves_laplacian_structure() {
        let lap = grid_laplacian(8, 8);
        let c = coarsen_laplacian(&lap).unwrap();
        // Roughly halves the vertex count on a grid.
        assert!(c.coarse_len() <= 40, "coarse size {}", c.coarse_len());
        assert!(c.coarse_len() >= 16);
        // Still symmetric with zero row sums.
        c.coarse.require_symmetric(1e-12).unwrap();
        for s in c.coarse.row_sums() {
            assert!(s.abs() < 1e-12);
        }
        // Every fine vertex has a parent in range; groups have size ≤ 2.
        let mut count = vec![0usize; c.coarse_len()];
        for &p in &c.parent {
            count[p] += 1;
        }
        assert!(count.iter().all(|&c| (1..=2).contains(&c)));
    }

    #[test]
    fn coarsening_is_galerkin_product() {
        // The contracted operator must satisfy (PᵀLP)x = Pᵀ(L(Px)) for any
        // coarse vector x.
        let lap = grid_laplacian(5, 4);
        let c = coarsen_laplacian(&lap).unwrap();
        let nc = c.coarse_len();
        let x: Vec<f64> = (0..nc).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let px = c.prolong(&x);
        let lpx = lap.matvec(&px).unwrap();
        let mut ptlpx = vec![0.0; nc];
        for (v, &p) in c.parent.iter().enumerate() {
            ptlpx[p] += lpx[v];
        }
        let direct = c.coarse.matvec(&x).unwrap();
        for i in 0..nc {
            assert!(
                (ptlpx[i] - direct[i]).abs() < 1e-10,
                "coarse row {i}: {} vs {}",
                ptlpx[i],
                direct[i]
            );
        }
    }

    #[test]
    fn coarsening_prefers_heavy_edges() {
        // Path 0-1-2-3 with a heavy middle edge: matching must contract
        // (1,2) first, leaving 0 and 3 as singletons.
        let t = [
            (0usize, 1usize, -1.0),
            (1, 0, -1.0),
            (1, 2, -10.0),
            (2, 1, -10.0),
            (2, 3, -1.0),
            (3, 2, -1.0),
            (0, 0, 1.0),
            (1, 1, 11.0),
            (2, 2, 11.0),
            (3, 3, 11.0 - 10.0),
        ];
        let lap = CsrMatrix::from_triplets(4, 4, &t).unwrap();
        let c = coarsen_laplacian(&lap).unwrap();
        assert_eq!(c.parent[1], c.parent[2]);
        assert_ne!(c.parent[0], c.parent[1]);
        assert_ne!(c.parent[3], c.parent[1]);
    }

    #[test]
    fn small_problem_is_exact_dense() {
        // n below coarsest_size: multilevel must agree with dense QL to
        // machine precision.
        let n = 20;
        let lap = path_laplacian(n);
        let opts = MultilevelOptions::default();
        let (lambda, v) = fiedler_pair(&lap, 1e-9, 7, &opts).unwrap();
        let expect = 4.0 * (std::f64::consts::PI / (2.0 * n as f64)).sin().powi(2);
        assert!((lambda - expect).abs() < 1e-10, "{lambda} vs {expect}");
        let mut r = lap.matvec(&v).unwrap();
        vector::axpy(-lambda, &v, &mut r);
        assert!(vector::norm2(&r) < 1e-10);
    }

    #[test]
    fn multilevel_matches_closed_form_on_long_path() {
        // n = 1200 forces a real hierarchy (coarsest_size 256 → ~3 levels).
        let n = 1200;
        let lap = path_laplacian(n);
        let opts = MultilevelOptions::default();
        let (lambda, v) = fiedler_pair(&lap, 1e-9, 7, &opts).unwrap();
        let expect = 4.0 * (std::f64::consts::PI / (2.0 * n as f64)).sin().powi(2);
        assert!(
            (lambda - expect).abs() < 1e-9 * expect.max(1e-3),
            "{lambda} vs {expect}"
        );
        let mut r = lap.matvec(&v).unwrap();
        vector::axpy(-lambda, &v, &mut r);
        assert!(vector::norm2(&r) < 1e-8, "residual {}", vector::norm2(&r));
        // The path's Fiedler vector is monotone.
        let inc = v.windows(2).all(|w| w[1] > w[0]);
        let dec = v.windows(2).all(|w| w[1] < w[0]);
        assert!(inc || dec);
    }

    #[test]
    fn multilevel_k_pairs_match_dense_on_grid() {
        // 24×18 grid (n = 432 > coarsest floor when shrunk): compare the
        // three smallest nonzero eigenvalues against the dense reference.
        let lap = grid_laplacian(24, 18);
        let opts = MultilevelOptions {
            coarsest_size: 64, // force a real hierarchy at this size
            ..Default::default()
        };
        let ml = smallest_nonzero_eigenpairs(&lap, 3, 1e-10, 1, &opts).unwrap();
        let eig = tql::symmetric_eigen(&lap.to_dense()).unwrap();
        for i in 0..3 {
            let expect = eig.eigenvalues[i + 1];
            assert!(
                (ml[i].0 - expect).abs() < 1e-7 * expect.max(1.0),
                "pair {i}: {} vs {expect}",
                ml[i].0
            );
            // Genuine eigenpair.
            let mut r = lap.matvec(&ml[i].1).unwrap();
            vector::axpy(-ml[i].0, &ml[i].1, &mut r);
            assert!(vector::norm2(&r) < 1e-8);
        }
        assert!(ml[0].0 <= ml[1].0 && ml[1].0 <= ml[2].0);
    }

    #[test]
    fn weighted_graph_converges() {
        // Weights spanning six orders of magnitude: the scaled convergence
        // target and Jacobi preconditioning must still deliver a pair.
        let n = 600;
        let mut t = Vec::new();
        let mut deg = vec![0.0; n];
        for i in 0..n - 1 {
            let w = if i % 3 == 0 { 1e6 } else { 1.0 };
            t.push((i, i + 1, -w));
            t.push((i + 1, i, -w));
            deg[i] += w;
            deg[i + 1] += w;
        }
        for (i, d) in deg.into_iter().enumerate() {
            t.push((i, i, d));
        }
        let lap = CsrMatrix::from_triplets(n, n, &t).unwrap();
        let (lambda, v) = fiedler_pair(&lap, 1e-9, 3, &MultilevelOptions::default()).unwrap();
        assert!(lambda > 0.0);
        let mut r = lap.matvec(&v).unwrap();
        vector::axpy(-lambda, &v, &mut r);
        let scale = lap.gershgorin_upper_bound();
        assert!(
            vector::norm2(&r) <= 1e-8 * scale,
            "residual {} vs scale {scale}",
            vector::norm2(&r)
        );
    }

    #[test]
    fn matching_stall_falls_back_to_iterative_coarse_solve() {
        // Star K_{1,n-1}: edge matching contracts exactly one pair per
        // level, so the hierarchy stalls at the input itself. The solver
        // must route the coarse solve through shift-invert Lanczos instead
        // of materialising an O(n²) dense matrix. λ₂ of a star is 1.
        let n = 1500; // > 4 × default coarsest_size
        let mut t = Vec::new();
        for i in 1..n {
            t.push((0, i, -1.0));
            t.push((i, 0, -1.0));
            t.push((i, i, 1.0));
        }
        t.push((0, 0, (n - 1) as f64));
        let lap = CsrMatrix::from_triplets(n, n, &t).unwrap();
        let (lambda, v) = fiedler_pair(&lap, 1e-9, 5, &MultilevelOptions::default()).unwrap();
        assert!((lambda - 1.0).abs() < 1e-6, "star λ₂ {lambda}");
        let mut r = lap.matvec(&v).unwrap();
        vector::axpy(-lambda, &v, &mut r);
        assert!(vector::norm2(&r) < 1e-6);
    }

    #[test]
    fn deterministic_given_seed() {
        let lap = grid_laplacian(20, 20);
        let opts = MultilevelOptions {
            coarsest_size: 64,
            ..Default::default()
        };
        let a = smallest_nonzero_eigenpairs(&lap, 2, 1e-10, 42, &opts).unwrap();
        let b = smallest_nonzero_eigenpairs(&lap, 2, 1e-10, 42, &opts).unwrap();
        for ((la, va), (lb, vb)) in a.iter().zip(&b) {
            assert_eq!(la, lb);
            assert_eq!(va, vb);
        }
    }

    #[test]
    fn threaded_solve_bitwise_identical_to_serial() {
        // The whole multilevel path — pooled coarsening, prolongation,
        // Jacobi smoothing, block refinement with threaded PCG — must
        // return bit-identical eigenpairs for 1, 2, and 4 workers.
        let lap = grid_laplacian(150, 140); // 21,000 vertices > SPAWN_MIN
        let run = |threads: usize| {
            let opts = MultilevelOptions {
                threads: Some(threads),
                ..Default::default()
            };
            smallest_nonzero_eigenpairs(&lap, 2, 1e-8, 11, &opts).unwrap()
        };
        let serial = run(1);
        for threads in [2usize, 4] {
            let par = run(threads);
            for ((ls, vs), (lp, vp)) in serial.iter().zip(&par) {
                assert_eq!(ls.to_bits(), lp.to_bits(), "threads={threads}");
                assert_eq!(vs, vp, "threads={threads}");
            }
        }
    }

    #[test]
    fn coarsening_identical_across_thread_counts() {
        let lap = grid_laplacian(160, 160); // 25,600 vertices > SPAWN_MIN
        let serial = coarsen_laplacian_pooled(&lap, &Pool::serial()).unwrap();
        for threads in [2usize, 4] {
            let par = coarsen_laplacian_pooled(&lap, &Pool::new(Some(threads))).unwrap();
            assert_eq!(par.parent, serial.parent, "threads={threads}");
            assert_eq!(par.coarse, serial.coarse, "threads={threads}");
        }
    }

    #[test]
    fn weighted_prolongation_is_the_default() {
        assert_eq!(
            MultilevelOptions::default().prolongation,
            Prolongation::Weighted
        );
    }

    #[test]
    fn both_prolongation_schemes_match_closed_form() {
        // Either transfer is only an initial guess for the refinement, so
        // both must land on the same eigenpair — the path's closed-form λ₂.
        let n = 1200;
        let lap = path_laplacian(n);
        let expect = 4.0 * (std::f64::consts::PI / (2.0 * n as f64)).sin().powi(2);
        for scheme in [Prolongation::Weighted, Prolongation::PiecewiseConstant] {
            let opts = MultilevelOptions {
                prolongation: scheme,
                ..Default::default()
            };
            let (lambda, v) = fiedler_pair(&lap, 1e-9, 7, &opts).unwrap();
            assert!(
                (lambda - expect).abs() < 1e-9 * expect.max(1e-3),
                "{scheme:?}: {lambda} vs {expect}"
            );
            let mut r = lap.matvec(&v).unwrap();
            vector::axpy(-lambda, &v, &mut r);
            assert!(vector::norm2(&r) < 1e-8, "{scheme:?} residual");
        }
    }

    #[test]
    fn weighted_prolongation_injects_smoother_error() {
        // The motivation for the weighted transfer: right after
        // prolongation (before any smoothing/refinement) the Rayleigh
        // quotient of the interpolated Fiedler guess must not be worse
        // than piecewise-constant injection's — the blocky injected error
        // lives at the top of the spectrum and inflates the quotient.
        let lap = grid_laplacian(30, 30);
        let step = coarsen_laplacian(&lap).unwrap();
        // Exact Fiedler vector of the coarse operator as the coarse guess.
        let coarse_pairs = dense_smallest(&step.coarse, 1).unwrap();
        let coarse_v = &coarse_pairs[0].1;
        let pool = Pool::serial();
        let rq = |v: &[f64]| {
            let mut lv = vec![0.0; v.len()];
            lap.matvec_into(v, &mut lv);
            vector::dot(v, &lv) / vector::dot(v, v)
        };
        let mut pc = prolong_pooled(
            &lap,
            &step,
            coarse_v,
            Prolongation::PiecewiseConstant,
            &pool,
        );
        let mut wt = prolong_pooled(&lap, &step, coarse_v, Prolongation::Weighted, &pool);
        vector::center(&mut pc);
        vector::center(&mut wt);
        let (rq_pc, rq_wt) = (rq(&pc), rq(&wt));
        assert!(
            rq_wt <= rq_pc * 1.0001,
            "weighted transfer worse: {rq_wt} vs {rq_pc}"
        );
    }

    #[test]
    fn rejects_tiny_problems_and_k_zero() {
        let lap = path_laplacian(3);
        assert!(matches!(
            smallest_nonzero_eigenpairs(&lap, 4, 1e-9, 0, &MultilevelOptions::default()),
            Err(LinalgError::ProblemTooSmall { .. })
        ));
        assert!(
            smallest_nonzero_eigenpairs(&lap, 0, 1e-9, 0, &MultilevelOptions::default())
                .unwrap()
                .is_empty()
        );
    }
}
