//! Jacobi-preconditioned conjugate gradients.
//!
//! Plain CG (see [`crate::cg`]) is fine for *unweighted* grid Laplacians,
//! whose diagonal is nearly constant. Section 4's weighted graphs (inverse-
//! distance weights, heavy affinity edges) can skew the diagonal by orders
//! of magnitude; dividing by it — the Jacobi preconditioner `M = diag(A)` —
//! restores the iteration count at one extra vector multiply per step.

use crate::cg::CgOptions;
use crate::error::LinalgError;
use crate::operator::LinearOperator;
use crate::parallel::Pool;
use crate::sparse::CsrMatrix;
use crate::vector;

/// Outcome of a preconditioned solve (same shape as [`crate::cg::CgOutcome`]).
#[derive(Debug, Clone)]
pub struct PcgOutcome {
    /// The solution vector.
    pub solution: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual `‖b − Ax‖ / ‖b‖`.
    pub relative_residual: f64,
}

/// Solve `A x = b` with Jacobi (diagonal) preconditioning.
///
/// `A` is given as a CSR matrix (the diagonal must be available, which a
/// generic [`LinearOperator`] cannot provide). Zero or negative diagonal
/// entries are rejected — the preconditioner requires an SPD-compatible
/// diagonal. With `opts.deflate_mean` the solve runs in the zero-mean
/// subspace exactly like plain CG (the standard treatment for singular
/// Laplacians).
///
/// The matvec, dot, axpy, and preconditioner kernels run on the scoped
/// worker pool selected by `opts.threads` ([`crate::parallel`]); the
/// reductions use fixed chunking, so the returned solution is bitwise
/// identical for every thread count. Callers that already hold a pool
/// (e.g. one backed by a persistent executor) should use
/// [`solve_jacobi_on`] so the solve inherits it instead of building a
/// scoped pool per call.
pub fn solve_jacobi(a: &CsrMatrix, b: &[f64], opts: &CgOptions) -> Result<PcgOutcome, LinalgError> {
    // xtask:allow(adhoc-pool): compatibility entry point — resolves opts.threads
    // into a scoped pool; pooled callers use solve_jacobi_on instead.
    solve_jacobi_on(a, b, opts, Pool::new(opts.threads))
}

/// [`solve_jacobi`] on a caller-supplied [`Pool`] — the path the
/// multilevel driver uses so nested PCG solves schedule onto the same
/// persistent executor as everything else instead of falling back to
/// scoped spawns. `opts.threads` is ignored; the pool decides.
pub fn solve_jacobi_on(
    a: &CsrMatrix,
    b: &[f64],
    opts: &CgOptions,
    pool: Pool<'_>,
) -> Result<PcgOutcome, LinalgError> {
    let n = a.dim();
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            context: "pcg::solve_jacobi rhs",
            expected: n,
            found: b.len(),
        });
    }
    if !vector::all_finite(b) {
        return Err(LinalgError::NonFiniteInput {
            context: "pcg::solve_jacobi rhs",
        });
    }
    let mut inv_diag = vec![0.0; n];
    pool.for_each_chunk(&mut inv_diag, |row0, chunk| {
        for (j, d) in chunk.iter_mut().enumerate() {
            *d = a.get(row0 + j, row0 + j);
        }
    });
    for d in inv_diag.iter_mut() {
        if !(d.is_finite() && *d > 0.0) {
            return Err(LinalgError::NotPositiveDefinite { curvature: *d });
        }
        *d = 1.0 / *d;
    }

    let max_iters = opts.max_iterations.unwrap_or(10 * n + 100);
    let mut rhs = b.to_vec();
    if opts.deflate_mean {
        pool.center(&mut rhs);
    }
    let b_norm = pool.norm2(&rhs);
    if b_norm == 0.0 {
        return Ok(PcgOutcome {
            solution: vec![0.0; n],
            iterations: 0,
            relative_residual: 0.0,
        });
    }

    let mut x = vec![0.0; n];
    let mut r = rhs;
    // z = M⁻¹ r
    let mut z = vec![0.0; n];
    pool.for_each_chunk_light(&mut z, |off, chunk| {
        for (j, zi) in chunk.iter_mut().enumerate() {
            *zi = r[off + j] * inv_diag[off + j];
        }
    });
    if opts.deflate_mean {
        pool.center(&mut z);
    }
    let mut p = z.clone();
    let mut rz_old = pool.dot(&r, &z);
    let mut ap = vec![0.0; n];

    for iter in 0..max_iters {
        pool.matvec_into(a, &p, &mut ap);
        if opts.deflate_mean {
            pool.center(&mut ap);
        }
        let curvature = pool.dot(&p, &ap);
        if curvature <= 0.0 {
            let rel = pool.norm2(&r) / b_norm;
            if rel <= opts.tolerance.max(1e-10) {
                return Ok(PcgOutcome {
                    solution: x,
                    iterations: iter,
                    relative_residual: rel,
                });
            }
            return Err(LinalgError::NotPositiveDefinite { curvature });
        }
        let alpha = rz_old / curvature;
        pool.axpy(alpha, &p, &mut x);
        pool.axpy(-alpha, &ap, &mut r);
        if opts.deflate_mean {
            pool.center(&mut r);
        }
        let rel = pool.norm2(&r) / b_norm;
        if rel <= opts.tolerance {
            if opts.deflate_mean {
                pool.center(&mut x);
            }
            return Ok(PcgOutcome {
                solution: x,
                iterations: iter + 1,
                relative_residual: rel,
            });
        }
        pool.for_each_chunk_light(&mut z, |off, chunk| {
            for (j, zi) in chunk.iter_mut().enumerate() {
                *zi = r[off + j] * inv_diag[off + j];
            }
        });
        if opts.deflate_mean {
            pool.center(&mut z);
        }
        let rz_new = pool.dot(&r, &z);
        let beta = rz_new / rz_old;
        pool.for_each_chunk_light(&mut p, |off, chunk| {
            for (j, pi) in chunk.iter_mut().enumerate() {
                *pi = z[off + j] + beta * *pi;
            }
        });
        rz_old = rz_new;
    }

    Err(LinalgError::NoConvergence {
        solver: "pcg-jacobi",
        iterations: max_iters,
        residual: pool.norm2(&r) / b_norm,
        tolerance: opts.tolerance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg;

    fn weighted_path_laplacian(weights: &[f64]) -> CsrMatrix {
        // Path with given edge weights; n = weights.len() + 1.
        let n = weights.len() + 1;
        let mut t = Vec::new();
        let mut deg = vec![0.0; n];
        for (i, &w) in weights.iter().enumerate() {
            t.push((i, i + 1, -w));
            t.push((i + 1, i, -w));
            deg[i] += w;
            deg[i + 1] += w;
        }
        for (i, d) in deg.into_iter().enumerate() {
            t.push((i, i, d));
        }
        CsrMatrix::from_triplets(n, n, &t).unwrap()
    }

    #[test]
    fn solves_spd_system() {
        let a =
            CsrMatrix::from_triplets(2, 2, &[(0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)])
                .unwrap();
        let out = solve_jacobi(&a, &[1.0, 2.0], &CgOptions::default()).unwrap();
        assert!((out.solution[0] - 1.0 / 11.0).abs() < 1e-10);
        assert!((out.solution[1] - 7.0 / 11.0).abs() < 1e-10);
    }

    #[test]
    fn matches_plain_cg_on_singular_laplacian() {
        let lap = weighted_path_laplacian(&[1.0, 100.0, 1.0, 50.0, 1.0]);
        let mut b: Vec<f64> = (0..6).map(|i| (i as f64).cos()).collect();
        vector::center(&mut b);
        let opts = CgOptions {
            deflate_mean: true,
            tolerance: 1e-12,
            ..Default::default()
        };
        let plain = cg::solve(&lap, &b, &opts).unwrap();
        let pre = solve_jacobi(&lap, &b, &opts).unwrap();
        for i in 0..6 {
            assert!(
                (plain.solution[i] - pre.solution[i]).abs() < 1e-7,
                "component {i}"
            );
        }
    }

    #[test]
    fn preconditioning_helps_on_skewed_diagonal() {
        // The case Jacobi provably fixes: a strongly diagonally dominant
        // system whose diagonal spans six orders of magnitude. Plain CG
        // pays the diagonal's condition number; Jacobi normalises it away.
        let n = 32usize;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 10f64.powi((i % 7) as i32)));
            if i + 1 < n {
                t.push((i, i + 1, 0.01));
                t.push((i + 1, i, 0.01));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &t).unwrap();
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let opts = CgOptions {
            tolerance: 1e-10,
            ..Default::default()
        };
        let plain = cg::solve(&a, &b, &opts).unwrap();
        let pre = solve_jacobi(&a, &b, &opts).unwrap();
        assert!(
            pre.iterations < plain.iterations,
            "jacobi {} not fewer than plain {}",
            pre.iterations,
            plain.iterations
        );
        // Both actually solve the system.
        let ax = a.matvec(&pre.solution).unwrap();
        for i in 0..n {
            assert!((ax[i] - b[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn comparable_to_plain_cg_on_weighted_laplacian() {
        // On alternating-weight path Laplacians Jacobi is not guaranteed to
        // win (the coupling structure, not the diagonal, dominates); it
        // must stay within a modest factor and solve correctly.
        let weights: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 1.0 } else { 1e4 })
            .collect();
        let lap = weighted_path_laplacian(&weights);
        let n = lap.rows();
        let mut b: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        vector::center(&mut b);
        let opts = CgOptions {
            deflate_mean: true,
            tolerance: 1e-10,
            ..Default::default()
        };
        let plain = cg::solve(&lap, &b, &opts).unwrap();
        let pre = solve_jacobi(&lap, &b, &opts).unwrap();
        assert!(
            (pre.iterations as f64) <= 2.0 * plain.iterations as f64,
            "jacobi {} vs plain {}",
            pre.iterations,
            plain.iterations
        );
        let lx = lap.matvec(&pre.solution).unwrap();
        for i in 0..n {
            assert!((lx[i] - b[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn rejects_bad_diagonal_and_inputs() {
        let zero_diag = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        assert!(matches!(
            solve_jacobi(&zero_diag, &[1.0, 0.0], &CgOptions::default()),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        let a = CsrMatrix::from_diagonal(&[1.0, 1.0]);
        assert!(solve_jacobi(&a, &[1.0], &CgOptions::default()).is_err());
        assert!(solve_jacobi(&a, &[f64::NAN, 0.0], &CgOptions::default()).is_err());
    }

    #[test]
    fn threaded_solve_bitwise_identical_to_serial() {
        // A grid Laplacian big enough that the pool genuinely spawns
        // (n > SPAWN_MIN): every solve — 1, 2, 4 threads — must return the
        // same bits, iteration count, and residual as the serial run,
        // because matvec/dot/axpy/center all use fixed-chunk deterministic
        // kernels.
        let (w, h) = (160, 120); // 19,200 > parallel::SPAWN_MIN
        let n = w * h;
        let idx = |x: usize, y: usize| x * h + y;
        let mut t = Vec::new();
        let mut deg = vec![0.0; n];
        for x in 0..w {
            for y in 0..h {
                for (nx, ny) in [(x + 1, y), (x, y + 1)] {
                    if nx < w && ny < h {
                        t.push((idx(x, y), idx(nx, ny), -1.0));
                        t.push((idx(nx, ny), idx(x, y), -1.0));
                        deg[idx(x, y)] += 1.0;
                        deg[idx(nx, ny)] += 1.0;
                    }
                }
            }
        }
        for (i, d) in deg.into_iter().enumerate() {
            t.push((i, i, d));
        }
        let lap = CsrMatrix::from_triplets(n, n, &t).unwrap();
        let mut b: Vec<f64> = (0..n).map(|i| ((i * 31 % 97) as f64) - 48.0).collect();
        vector::center(&mut b);
        let solve = |threads: usize| {
            solve_jacobi(
                &lap,
                &b,
                &CgOptions {
                    deflate_mean: true,
                    tolerance: 1e-10,
                    threads: Some(threads),
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let serial = solve(1);
        for threads in [2usize, 4] {
            let par = solve(threads);
            assert_eq!(par.iterations, serial.iterations, "threads={threads}");
            assert_eq!(
                par.relative_residual.to_bits(),
                serial.relative_residual.to_bits(),
                "threads={threads}"
            );
            assert_eq!(par.solution, serial.solution, "threads={threads}");
        }
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = CsrMatrix::from_diagonal(&[2.0, 3.0]);
        let out = solve_jacobi(&a, &[0.0, 0.0], &CgOptions::default()).unwrap();
        assert_eq!(out.iterations, 0);
        assert_eq!(out.solution, vec![0.0, 0.0]);
    }
}
