//! Scoped worker-pool parallel primitives for the sparse kernels.
//!
//! Every hot kernel under the multilevel Fiedler pipeline — CSR matvec,
//! the level-1 vector reductions, weighted-Jacobi smoothing, the PCG inner
//! solves — is embarrassingly row-parallel, exactly as multilevel spectral
//! practice treats them (Barnard & Simon's multilevel spectral bisection,
//! METIS-style coarsening). This module provides the two primitives they
//! all reduce to, built on scoped threads (the in-tree `crossbeam` shim's
//! `thread::scope`, i.e. `std::thread::scope`):
//!
//! * [`Pool::for_each_chunk`] — *chunked `par_for`*: split a mutable slice
//!   into contiguous chunks and run a closure on each, in parallel. Used
//!   for elementwise updates (axpy, scale, Jacobi sweeps) and row-chunked
//!   SpMV, all of which compute each output element independently, so the
//!   result is bitwise identical no matter how the slice is split.
//! * [`Pool::reduce`] — *deterministic tree reduction*: partial results are
//!   computed per **fixed-size chunk** (boundaries depend only on the
//!   problem size, never on the thread count) and combined by a pairwise
//!   tree in chunk order. A parallel dot product therefore returns the
//!   **same bits** whether run on 1, 2, or 64 threads — and the serial
//!   kernels in [`crate::vector`] use the identical chunking, so switching
//!   threading on or off cannot change a single eigenvalue, residual, or
//!   linear-order rank downstream.
//!
//! Worker threads are *scoped*: each call spawns at most
//! [`Pool::threads`]` − 1` helpers that borrow the caller's data and are
//! joined before the call returns — no lifetime gymnastics, no channels,
//! no shutdown protocol. Spawning costs a few tens of microseconds, so
//! parallelism only engages above [`SPAWN_MIN`] elements; below that every
//! primitive runs inline on the calling thread.
//!
//! The pool itself is just a resolved thread count. The *default* count is
//! lazily initialised on first use from the `SLPM_THREADS` environment
//! variable if set, else [`std::thread::available_parallelism`] — so
//! `threads: None` everywhere means "use the machine".

use crate::sparse::CsrMatrix;
use crate::vector;
use crossbeam::thread;
use std::sync::OnceLock;

/// Elements per reduction chunk. Chunk boundaries are a function of the
/// problem size **only**, which is what makes parallel reductions bitwise
/// reproducible across thread counts (including one).
pub const REDUCE_CHUNK: usize = 4096;

/// Minimum number of elements before a primitive spawns worker threads;
/// below this the spawn overhead (~tens of µs) exceeds the kernel cost and
/// everything runs inline. Has no effect on results, only on scheduling.
pub const SPAWN_MIN: usize = 16_384;

/// Lazily-resolved default worker count: `SLPM_THREADS` env override, else
/// the machine's available parallelism, else 1.
pub fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(v) = std::env::var("SLPM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// An executor that can run a batch of **borrowing** jobs to completion —
/// the seam that lets the scoped kernels borrow a *persistent* thread pool
/// (e.g. `slpm_serve`'s `WorkerPool`) instead of spawning fresh scoped
/// threads on every call, so one pool abstraction serves both the
/// eigensolver and the query engine.
///
/// # Contract
/// `run_jobs` must execute **every** job before returning (order and
/// placement are free — the kernels built on it are bitwise independent of
/// both) and must propagate a job panic to the caller. The crossbeam
/// shim's `thread::run_scoped` implements exactly this contract over any
/// `'static` job sink.
pub trait ScopeExecutor: Sync {
    /// Run every job to completion, then return.
    fn run_jobs(&self, jobs: Vec<Box<dyn FnOnce() + Send + '_>>);
}

/// A scoped worker pool: a resolved thread count plus the spawn/join logic.
///
/// Cheap to construct and copy; holds no OS resources of its own. By
/// default threads are spawned per call (scoped) and joined before the
/// call returns; [`Pool::with_executor`] instead borrows a persistent
/// [`ScopeExecutor`], which amortises the per-call spawn cost for the
/// many-small-kernel regime. The executor never changes results — every
/// kernel is bitwise identical for any thread count and either backend.
#[derive(Clone, Copy)]
pub struct Pool<'e> {
    threads: usize,
    /// `None`: scoped threads per call. `Some`: persistent executor.
    executor: Option<&'e dyn ScopeExecutor>,
}

impl std::fmt::Debug for Pool<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .field("executor", &self.executor.map(|_| "persistent"))
            .finish()
    }
}

impl Default for Pool<'static> {
    /// The machine-default pool ([`default_threads`]).
    fn default() -> Self {
        Pool::new(None)
    }
}

impl Pool<'static> {
    /// Resolve a thread-count knob: `Some(t)` pins the worker count,
    /// `None` uses [`default_threads`] (env override / machine size).
    pub fn new(threads: Option<usize>) -> Self {
        Pool {
            threads: threads.unwrap_or_else(default_threads).max(1),
            executor: None,
        }
    }

    /// A single-threaded pool; every primitive runs inline.
    pub fn serial() -> Self {
        Pool {
            threads: 1,
            executor: None,
        }
    }
}

impl<'e> Pool<'e> {
    /// Opt-in: schedule parallel work onto a persistent [`ScopeExecutor`]
    /// with `threads` workers instead of spawning scoped threads per
    /// call. Chunking (and therefore every result bit) is identical to
    /// the scoped backend at the same thread count.
    pub fn with_executor(threads: usize, executor: &'e dyn ScopeExecutor) -> Pool<'e> {
        Pool {
            threads: threads.max(1),
            executor: Some(executor),
        }
    }

    /// Worker count this pool schedules onto.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of workers to actually engage for `n` independent elements.
    fn workers_for(&self, n: usize) -> usize {
        if self.threads <= 1 || n < SPAWN_MIN {
            1
        } else {
            self.threads.min(n.div_ceil(REDUCE_CHUNK)).max(1)
        }
    }

    /// Chunked `par_for`: split `data` into one contiguous chunk per
    /// engaged worker and run `f(offset, chunk)` on each in parallel.
    ///
    /// `f` must compute each element of its chunk from the element's
    /// *global* index only (`offset + local`), independent of the split —
    /// then the result is identical for every thread count.
    pub fn for_each_chunk<T, F>(&self, data: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let n = data.len();
        let workers = self.workers_for(n);
        if workers <= 1 {
            f(0, data);
            return;
        }
        if let Some(executor) = self.executor {
            // Persistent backend: same balanced split, shipped as boxed
            // borrowing jobs (the executor blocks until all complete).
            let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(workers);
            let mut rest = data;
            let mut offset = 0usize;
            for w in 0..workers {
                let count = rest.len() / (workers - w);
                let (head, tail) = rest.split_at_mut(count);
                rest = tail;
                let g = &f;
                jobs.push(Box::new(move || g(offset, head)));
                offset += count;
            }
            executor.run_jobs(jobs);
            return;
        }
        thread::scope(|s| {
            let mut rest = data;
            let mut offset = 0usize;
            // Spawn workers − 1 helpers; the calling thread takes the last
            // span itself instead of idling at the join.
            for w in 0..workers - 1 {
                // Balanced contiguous split of the remaining elements.
                let count = rest.len() / (workers - w);
                let (head, tail) = rest.split_at_mut(count);
                rest = tail;
                let g = &f;
                s.spawn(move |_| g(offset, head));
                offset += count;
            }
            f(offset, rest);
        })
        .expect("parallel worker panicked");
    }

    /// Deterministic reduction over `0..n`: `partial(start, end)` is
    /// evaluated for every fixed [`REDUCE_CHUNK`]-sized chunk (in parallel
    /// when worthwhile, via [`Pool::map_chunks`]) and the partials are
    /// combined by a pairwise tree fold in chunk order — bitwise
    /// reproducible for any thread count.
    pub fn reduce<F>(&self, n: usize, partial: F) -> f64
    where
        F: Fn(usize, usize) -> f64 + Sync,
    {
        tree_fold(&mut self.map_chunks(n, partial))
    }

    /// Evaluate `f(start, end)` for every fixed [`REDUCE_CHUNK`]-sized
    /// chunk of `0..n` (in parallel when worthwhile) and return the
    /// per-chunk results **in chunk order** — the gather analogue of
    /// [`Pool::reduce`], used for passes that collect variable-sized
    /// output per row range (e.g. the edge-rating pass of heavy-edge
    /// matching). Chunk boundaries depend only on `n`, so the concatenated
    /// result is identical for every thread count.
    pub fn map_chunks<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, usize) -> T + Sync,
    {
        let chunks = n.div_ceil(REDUCE_CHUNK).max(1);
        let mut out: Vec<Option<T>> = (0..chunks).map(|_| None).collect();
        let workers = self.workers_for(n);
        if workers <= 1 {
            for (c, slot) in out.iter_mut().enumerate() {
                let start = c * REDUCE_CHUNK;
                *slot = Some(f(start, (start + REDUCE_CHUNK).min(n)));
            }
        } else if let Some(executor) = self.executor {
            let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(workers);
            let mut rest: &mut [Option<T>] = &mut out;
            let mut first = 0usize;
            for w in 0..workers {
                let count = rest.len() / (workers - w);
                let (head, tail) = rest.split_at_mut(count);
                rest = tail;
                let g = &f;
                jobs.push(Box::new(move || {
                    for (k, slot) in head.iter_mut().enumerate() {
                        let start = (first + k) * REDUCE_CHUNK;
                        *slot = Some(g(start, (start + REDUCE_CHUNK).min(n)));
                    }
                }));
                first += count;
            }
            executor.run_jobs(jobs);
        } else {
            thread::scope(|s| {
                let mut rest: &mut [Option<T>] = &mut out;
                let mut first = 0usize;
                for w in 0..workers - 1 {
                    let count = rest.len() / (workers - w);
                    let (head, tail) = rest.split_at_mut(count);
                    rest = tail;
                    let g = &f;
                    s.spawn(move |_| {
                        for (k, slot) in head.iter_mut().enumerate() {
                            let start = (first + k) * REDUCE_CHUNK;
                            *slot = Some(g(start, (start + REDUCE_CHUNK).min(n)));
                        }
                    });
                    first += count;
                }
                for (k, slot) in rest.iter_mut().enumerate() {
                    let start = (first + k) * REDUCE_CHUNK;
                    *slot = Some(f(start, (start + REDUCE_CHUNK).min(n)));
                }
            })
            .expect("parallel worker panicked");
        }
        out.into_iter()
            .map(|slot| slot.expect("every chunk evaluated"))
            .collect()
    }

    /// Dot product `xᵀy` — parallel, bitwise equal to [`vector::dot`].
    pub fn dot(&self, x: &[f64], y: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), y.len(), "dot: length mismatch");
        self.reduce(x.len(), |a, b| vector::dot_kernel(&x[a..b], &y[a..b]))
    }

    /// Euclidean norm `‖x‖₂` — parallel, bitwise equal to
    /// [`vector::norm2`].
    pub fn norm2(&self, x: &[f64]) -> f64 {
        self.dot(x, x).sqrt()
    }

    /// Entry sum — parallel, bitwise equal to the serial chunked sum
    /// behind [`vector::mean`].
    pub fn sum(&self, x: &[f64]) -> f64 {
        self.reduce(x.len(), |a, b| vector::sum_kernel(&x[a..b]))
    }

    /// `y ← y + alpha·x` — parallel, elementwise (bitwise equal to
    /// [`vector::axpy`] for any thread count).
    pub fn axpy(&self, alpha: f64, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
        self.for_each_chunk(y, |off, chunk| {
            vector::axpy(alpha, &x[off..off + chunk.len()], chunk);
        });
    }

    /// `x ← alpha·x` — parallel.
    pub fn scale(&self, alpha: f64, x: &mut [f64]) {
        self.for_each_chunk(x, |_, chunk| vector::scale(alpha, chunk));
    }

    /// Subtract the mean from every entry — parallel, bitwise equal to
    /// [`vector::center`].
    pub fn center(&self, x: &mut [f64]) {
        if x.is_empty() {
            return;
        }
        let m = self.sum(x) / x.len() as f64;
        self.for_each_chunk(x, |_, chunk| {
            for v in chunk.iter_mut() {
                *v -= m;
            }
        });
    }

    /// `y = A x` with row-chunked parallelism — each output row is an
    /// independent sparse dot product, so the result is bitwise equal to
    /// [`CsrMatrix::matvec_into`] for any thread count.
    pub fn matvec_into(&self, a: &CsrMatrix, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), a.cols());
        debug_assert_eq!(y.len(), a.rows());
        self.for_each_chunk(y, |row0, chunk| a.matvec_rows_into(row0, x, chunk));
    }
}

/// Pairwise tree reduction of `partials` in index order; deterministic for
/// a given partial list. The serial chunked kernels in [`crate::vector`]
/// fold their chunk partials through this same function, which is what
/// pins one summation order across every thread count.
pub(crate) fn tree_fold(partials: &mut [f64]) -> f64 {
    if partials.is_empty() {
        return 0.0;
    }
    let mut len = partials.len();
    while len > 1 {
        let mut write = 0;
        let mut read = 0;
        while read < len {
            partials[write] = if read + 1 < len {
                partials[read] + partials[read + 1]
            } else {
                partials[read]
            };
            write += 1;
            read += 2;
        }
        len = write;
    }
    partials[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_vec(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn grid_laplacian(w: usize, h: usize) -> CsrMatrix {
        let idx = |x: usize, y: usize| x * h + y;
        let mut t = Vec::new();
        let mut deg = vec![0.0; w * h];
        for x in 0..w {
            for y in 0..h {
                for (nx, ny) in [(x + 1, y), (x, y + 1)] {
                    if nx < w && ny < h {
                        t.push((idx(x, y), idx(nx, ny), -1.0));
                        t.push((idx(nx, ny), idx(x, y), -1.0));
                        deg[idx(x, y)] += 1.0;
                        deg[idx(nx, ny)] += 1.0;
                    }
                }
            }
        }
        for (i, d) in deg.into_iter().enumerate() {
            t.push((i, i, d));
        }
        CsrMatrix::from_triplets(w * h, w * h, &t).unwrap()
    }

    #[test]
    fn default_pool_resolves_at_least_one_thread() {
        assert!(default_threads() >= 1);
        assert!(Pool::default().threads() >= 1);
        assert_eq!(Pool::new(Some(0)).threads(), 1);
        assert_eq!(Pool::new(Some(3)).threads(), 3);
        assert_eq!(Pool::serial().threads(), 1);
    }

    #[test]
    fn tree_fold_cases() {
        assert_eq!(tree_fold(&mut []), 0.0);
        assert_eq!(tree_fold(&mut [3.5]), 3.5);
        // ((1+2)+(3+4)) + (5): tree order, not left-to-right.
        assert_eq!(tree_fold(&mut [1.0, 2.0, 3.0, 4.0, 5.0]), 15.0);
    }

    #[test]
    fn dot_bitwise_identical_across_thread_counts() {
        // Larger than SPAWN_MIN so threads genuinely engage, with an odd
        // tail so chunk boundaries are exercised.
        let n = SPAWN_MIN + 3 * REDUCE_CHUNK + 17;
        let x = random_vec(n, 1);
        let y = random_vec(n, 2);
        let serial = vector::dot(&x, &y);
        for t in [1usize, 2, 4] {
            let par = Pool::new(Some(t)).dot(&x, &y);
            assert_eq!(par.to_bits(), serial.to_bits(), "threads={t}");
        }
    }

    #[test]
    fn sum_and_center_bitwise_identical() {
        let n = SPAWN_MIN + 1234;
        let base = random_vec(n, 3);
        let serial_sum: f64 = vector::sum_kernel_chunked(&base);
        for t in [1usize, 2, 4] {
            let pool = Pool::new(Some(t));
            assert_eq!(pool.sum(&base).to_bits(), serial_sum.to_bits());
            let mut a = base.clone();
            let mut b = base.clone();
            vector::center(&mut a);
            pool.center(&mut b);
            assert_eq!(a, b, "center differs at threads={t}");
        }
    }

    #[test]
    fn axpy_and_scale_match_serial() {
        let n = SPAWN_MIN + 77;
        let x = random_vec(n, 4);
        let base = random_vec(n, 5);
        for t in [1usize, 2, 4] {
            let pool = Pool::new(Some(t));
            let mut a = base.clone();
            let mut b = base.clone();
            vector::axpy(0.37, &x, &mut a);
            pool.axpy(0.37, &x, &mut b);
            assert_eq!(a, b, "axpy differs at threads={t}");
            vector::scale(-1.5, &mut a);
            pool.scale(-1.5, &mut b);
            assert_eq!(a, b, "scale differs at threads={t}");
        }
    }

    #[test]
    fn matvec_bitwise_identical_across_thread_counts() {
        let lap = grid_laplacian(180, 120); // 21,600 rows > SPAWN_MIN
        let x = random_vec(lap.rows(), 6);
        let mut serial = vec![0.0; lap.rows()];
        lap.matvec_into(&x, &mut serial);
        for t in [1usize, 2, 4] {
            let mut y = vec![0.0; lap.rows()];
            Pool::new(Some(t)).matvec_into(&lap, &x, &mut y);
            assert_eq!(y, serial, "matvec differs at threads={t}");
        }
    }

    #[test]
    fn small_inputs_run_inline() {
        // Below SPAWN_MIN nothing spawns, but results are still right.
        let x = random_vec(100, 7);
        let y = random_vec(100, 8);
        let pool = Pool::new(Some(8));
        assert_eq!(pool.dot(&x, &y).to_bits(), vector::dot(&x, &y).to_bits());
        assert_eq!(pool.norm2(&x).to_bits(), vector::norm2(&x).to_bits());
    }

    /// A toy persistent executor: runs the borrowed jobs on plain std
    /// scoped threads. Exercises the executor dispatch path (boxed jobs,
    /// no calling-thread participation) without needing `slpm_serve`.
    struct SpawningExecutor;
    impl ScopeExecutor for SpawningExecutor {
        fn run_jobs(&self, jobs: Vec<Box<dyn FnOnce() + Send + '_>>) {
            std::thread::scope(|s| {
                for job in jobs {
                    s.spawn(job);
                }
            });
        }
    }

    #[test]
    fn executor_backend_is_bitwise_identical_to_scoped() {
        let n = SPAWN_MIN + 3 * REDUCE_CHUNK + 29;
        let x = random_vec(n, 11);
        let y = random_vec(n, 12);
        let executor = SpawningExecutor;
        for t in [2usize, 4] {
            let scoped = Pool::new(Some(t));
            let pooled = Pool::with_executor(t, &executor);
            assert_eq!(pooled.threads(), t);
            assert_eq!(
                pooled.dot(&x, &y).to_bits(),
                scoped.dot(&x, &y).to_bits(),
                "dot differs at threads={t}"
            );
            let mut a = y.clone();
            let mut b = y.clone();
            scoped.axpy(0.73, &x, &mut a);
            pooled.axpy(0.73, &x, &mut b);
            assert_eq!(a, b, "axpy differs at threads={t}");
            scoped.center(&mut a);
            pooled.center(&mut b);
            assert_eq!(a, b, "center differs at threads={t}");
        }
        // Matvec through the executor too.
        let lap = grid_laplacian(170, 130);
        let v = random_vec(lap.rows(), 13);
        let mut serial = vec![0.0; lap.rows()];
        lap.matvec_into(&v, &mut serial);
        let mut pooled = vec![0.0; lap.rows()];
        Pool::with_executor(4, &executor).matvec_into(&lap, &v, &mut pooled);
        assert_eq!(pooled, serial);
    }

    #[test]
    fn executor_pool_runs_small_inputs_inline() {
        // Below SPAWN_MIN the executor is never consulted.
        struct PanickingExecutor;
        impl ScopeExecutor for PanickingExecutor {
            fn run_jobs(&self, _jobs: Vec<Box<dyn FnOnce() + Send + '_>>) {
                panic!("executor must not be used for tiny inputs");
            }
        }
        let x = random_vec(64, 14);
        let pool = Pool::with_executor(8, &PanickingExecutor);
        assert_eq!(
            pool.sum(&x).to_bits(),
            vector::sum_kernel_chunked(&x).to_bits()
        );
    }

    #[test]
    fn reduce_chunk_boundaries_depend_on_size_only() {
        // A reduction whose partial records its chunk start: the observed
        // chunk grid must be the same for 1 and 4 threads.
        use std::sync::Mutex;
        let n = SPAWN_MIN * 2 + 5;
        let collect = |threads: usize| {
            let starts = Mutex::new(Vec::new());
            Pool::new(Some(threads)).reduce(n, |a, _b| {
                starts.lock().unwrap().push(a);
                0.0
            });
            let mut v = starts.into_inner().unwrap();
            v.sort_unstable();
            v
        };
        assert_eq!(collect(1), collect(4));
    }
}
