//! Pooled parallel primitives for the sparse kernels.
//!
//! Every hot kernel under the multilevel Fiedler pipeline — CSR matvec,
//! the level-1 vector reductions, weighted-Jacobi smoothing, the PCG inner
//! solves — is embarrassingly row-parallel, exactly as multilevel spectral
//! practice treats them (Barnard & Simon's multilevel spectral bisection,
//! METIS-style coarsening). This module provides the two primitives they
//! all reduce to:
//!
//! * [`Pool::for_each_chunk`] — *chunked `par_for`*: split a mutable slice
//!   into contiguous chunks and run a closure on each, in parallel. Used
//!   for elementwise updates (axpy, scale, Jacobi sweeps) and row-chunked
//!   SpMV, all of which compute each output element independently, so the
//!   result is bitwise identical no matter how the slice is split.
//! * [`Pool::reduce`] — *deterministic tree reduction*: partial results are
//!   computed per **fixed-size chunk** (boundaries depend only on the
//!   problem size, never on the thread count) and combined by a pairwise
//!   tree in chunk order. A parallel dot product therefore returns the
//!   **same bits** whether run on 1, 2, or 64 threads — and the serial
//!   kernels in [`crate::vector`] use the identical chunking, so switching
//!   threading on or off cannot change a single eigenvalue, residual, or
//!   linear-order rank downstream.
//!
//! # Dispatch: chunk plans, not per-chunk jobs
//!
//! A parallel engagement hands each engaged worker its **full slice of
//! chunks in a single job**, described by a cached [`ChunkPlan`] (computed
//! once per `(length, workers)` pair and reused across iterations — PCG
//! and the multilevel walk re-touch the same handful of vector lengths
//! thousands of times). The calling thread always executes one span
//! itself: with a persistent [`ScopeExecutor`] only `workers − 1` jobs
//! cross the submission seam, and on the scoped fallback only
//! `workers − 1` threads are spawned. Per-engagement dispatch cost is
//! therefore one channel round-trip per *extra* worker, not per chunk.
//!
//! # Engagement thresholds: heavy vs light kernels
//!
//! Parallelism only pays when the kernel outweighs the dispatch. Two
//! thresholds encode that:
//!
//! * [`SPAWN_MIN`] — heavy, compute-bound passes (CSR matvec, the edge
//!   rating map): a row costs a sparse dot product, so even ~16k rows
//!   amortise an engagement.
//! * [`LIGHT_SPAWN_MIN`] — level-1, memory-bound passes (dot, axpy, sum,
//!   scale, center, Jacobi elementwise updates): a few flops per element
//!   leave nothing to hide dispatch behind until vectors are hundreds of
//!   thousands of elements long, and even then the win is capped by
//!   memory bandwidth, not core count. Below the threshold these run
//!   inline — which is also what keeps the dispatch-counter trajectory
//!   (and the 2-thread wall time on a single-core host) close to serial.
//!
//! Thresholds affect scheduling only, never results: the serial kernels
//! share the chunk grid and fold order bit for bit.
//!
//! # One pool everywhere
//!
//! The pool itself is just a resolved thread count plus an optional
//! borrowed [`ScopeExecutor`] — the seam through which the eigensolver
//! borrows a persistent worker pool (e.g. `slpm_serve::WorkerPool`)
//! instead of spawning scoped threads per call. The *default* count is
//! resolved **once per process** from the `SLPM_THREADS` environment
//! variable if set, else [`std::thread::available_parallelism`] — so
//! `threads: None` everywhere means "use the machine" and no construction
//! path re-reads the environment.
//!
//! Every parallel engagement also bumps process-wide [`DispatchCounters`]
//! (engagements, jobs handed to a backend, chunk-grid cells covered).
//! The dispatch sequence is a pure function of the problem-size sequence
//! and thread count, so the counters are machine-independent observables
//! — `pipeline_scale` records them and CI gates on them.

use crate::sparse::CsrMatrix;
use crate::vector;
use crossbeam::thread;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Elements per reduction chunk. Chunk boundaries are a function of the
/// problem size **only**, which is what makes parallel reductions bitwise
/// reproducible across thread counts (including one).
pub const REDUCE_CHUNK: usize = 4096;

/// Minimum element count before a **heavy** (compute-bound) primitive —
/// CSR matvec, the chunk maps — engages worker threads; below this the
/// dispatch cost exceeds the kernel cost and everything runs inline.
/// Has no effect on results, only on scheduling.
pub const SPAWN_MIN: usize = 16_384;

/// Minimum element count before a **light** (level-1, memory-bound)
/// primitive — dot, axpy, sum, scale, center, elementwise sweeps —
/// engages worker threads. A few flops per element cannot hide even a
/// cheap pooled dispatch until vectors are this long, and the achievable
/// win is bounded by memory bandwidth; below the threshold light kernels
/// run inline on the calling thread. Scheduling only — never results.
pub const LIGHT_SPAWN_MIN: usize = 524_288;

/// Process-wide dispatch-cost counters (relaxed atomics, bumped only on
/// parallel engagements — serial/inline execution never touches them).
/// The dispatch sequence is a pure function of the problem-size sequence
/// and the thread count, so these totals are machine-independent and can
/// be gated in CI.
static SCOPE_ENTRIES: AtomicU64 = AtomicU64::new(0);
static JOBS_SUBMITTED: AtomicU64 = AtomicU64::new(0);
static CHUNKS_EXECUTED: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the process-wide dispatch counters — the observable
/// behind the bench's `dispatch_gate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DispatchCounters {
    /// Parallel engagements: calls that split work across >1 worker.
    pub scope_entries: u64,
    /// Closures handed to a backend (scoped spawns or executor jobs);
    /// the calling thread's own inline span is not counted.
    pub jobs_submitted: u64,
    /// [`REDUCE_CHUNK`]-grid cells covered by parallel engagements.
    pub chunks_executed: u64,
}

impl DispatchCounters {
    /// The counter deltas accumulated since `earlier` was snapshot.
    pub fn since(&self, earlier: &DispatchCounters) -> DispatchCounters {
        DispatchCounters {
            scope_entries: self.scope_entries - earlier.scope_entries,
            jobs_submitted: self.jobs_submitted - earlier.jobs_submitted,
            chunks_executed: self.chunks_executed - earlier.chunks_executed,
        }
    }
}

/// Snapshot the process-wide dispatch counters.
pub fn dispatch_counters() -> DispatchCounters {
    DispatchCounters {
        scope_entries: SCOPE_ENTRIES.load(Ordering::Relaxed),
        jobs_submitted: JOBS_SUBMITTED.load(Ordering::Relaxed),
        chunks_executed: CHUNKS_EXECUTED.load(Ordering::Relaxed),
    }
}

/// Record one parallel engagement that submitted `jobs` closures covering
/// `chunks` chunk-grid cells.
fn note_dispatch(jobs: u64, chunks: u64) {
    SCOPE_ENTRIES.fetch_add(1, Ordering::Relaxed);
    JOBS_SUBMITTED.fetch_add(jobs, Ordering::Relaxed);
    CHUNKS_EXECUTED.fetch_add(chunks, Ordering::Relaxed);
}

/// Lazily-resolved default worker count: `SLPM_THREADS` env override, else
/// the machine's available parallelism, else 1. Resolved **once per
/// process** (first use) — every later [`Pool::new`]/[`Pool::default`]
/// reuses the cached value rather than re-reading the environment.
pub fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(v) = std::env::var("SLPM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// A cached per-engagement dispatch plan: for one `(vector length,
/// engaged workers)` pair, the contiguous slice of [`REDUCE_CHUNK`]-grid
/// chunks each worker executes as a single job.
///
/// Plans are computed once and memoised process-wide — the multilevel
/// walk and PCG re-touch the same handful of lengths thousands of times,
/// so the split arithmetic (and the allocation behind it) is paid once
/// per length, not per kernel call. The chunk grid itself depends only on
/// the length, so a plan never influences results, only scheduling.
///
/// A plan is bound to the length it was computed for: every primitive
/// re-checks `plan.check(data.len())` before splitting, so a plan cached
/// for length N can never be applied to a slice of length M ≠ N.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkPlan {
    len: usize,
    chunks: usize,
    /// `workers + 1` fenceposts in chunk units: worker `w` executes
    /// chunks `bounds[w]..bounds[w + 1]`.
    bounds: Vec<usize>,
}

impl ChunkPlan {
    /// Compute the balanced chunk split for `len` elements over `workers`
    /// workers (the same iterative split the dispatcher has always used:
    /// worker `w` takes `remaining / (workers - w)` chunks).
    fn compute(len: usize, workers: usize) -> ChunkPlan {
        let chunks = len.div_ceil(REDUCE_CHUNK).max(1);
        let workers = workers.clamp(1, chunks);
        let mut bounds = Vec::with_capacity(workers + 1);
        bounds.push(0);
        let mut first = 0usize;
        for w in 0..workers {
            let count = (chunks - first) / (workers - w);
            first += count;
            bounds.push(first);
        }
        debug_assert_eq!(*bounds.last().expect("nonempty"), chunks);
        ChunkPlan {
            len,
            chunks,
            bounds,
        }
    }

    /// The memoised plan for `len` elements over `workers` workers.
    pub fn for_len(len: usize, workers: usize) -> Arc<ChunkPlan> {
        type PlanCache = Mutex<HashMap<(usize, usize), Arc<ChunkPlan>>>;
        static CACHE: OnceLock<PlanCache> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = cache.lock().expect("chunk-plan cache lock");
        // Bound the memo (distinct lengths are few in practice — the
        // multilevel hierarchy contributes one per level — but a
        // pathological caller must not leak unboundedly).
        if map.len() > 4096 {
            map.clear();
        }
        Arc::clone(
            map.entry((len, workers))
                .or_insert_with(|| Arc::new(ChunkPlan::compute(len, workers))),
        )
    }

    /// The vector length this plan was computed for.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the plan covers zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of workers the plan engages.
    pub fn workers(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total chunk-grid cells the plan covers.
    pub fn chunks(&self) -> usize {
        self.chunks
    }

    /// Worker `w`'s chunk range `[start, end)` in chunk units.
    pub fn chunk_range(&self, w: usize) -> (usize, usize) {
        (self.bounds[w], self.bounds[w + 1])
    }

    /// Worker `w`'s element span `[start, end)` (chunk-aligned, clamped
    /// to the plan's length).
    pub fn span(&self, w: usize) -> (usize, usize) {
        (
            (self.bounds[w] * REDUCE_CHUNK).min(self.len),
            (self.bounds[w + 1] * REDUCE_CHUNK).min(self.len),
        )
    }

    /// Assert the plan is being applied to the length it was computed
    /// for. Every primitive calls this before splitting a slice, so a
    /// plan cached for length N can never silently act on length M ≠ N.
    pub fn check(&self, len: usize) {
        assert_eq!(
            self.len, len,
            "ChunkPlan for length {} applied to length {len}",
            self.len
        );
    }
}

/// An executor that can run a batch of **borrowing** jobs to completion —
/// the seam that lets the pooled kernels borrow a *persistent* thread pool
/// (e.g. `slpm_serve`'s `WorkerPool`) instead of spawning fresh scoped
/// threads on every call, so one pool abstraction serves both the
/// eigensolver and the query engine.
///
/// # Contract
/// `run_jobs` must execute **every** job before returning (order and
/// placement are free — the kernels built on it are bitwise independent of
/// both) and must propagate a job panic to the caller. The crossbeam
/// shim's `thread::run_scoped` implements exactly this contract over any
/// `'static` job sink.
pub trait ScopeExecutor: Sync {
    /// Run every job to completion, then return.
    fn run_jobs(&self, jobs: Vec<Box<dyn FnOnce() + Send + '_>>);

    /// Run `jobs` on the executor while the **calling thread** executes
    /// `caller`; return once everything (jobs and caller span) finished.
    ///
    /// The default implementation simply appends `caller` to `jobs` —
    /// correct, but it leaves the calling thread blocked in
    /// [`ScopeExecutor::run_jobs`]. Persistent pools should override it
    /// to run `caller` inline between submission and the completion wait
    /// (as `slpm_serve::WorkerPool` does), which removes one job handoff
    /// per engagement and keeps the calling thread productive.
    fn run_jobs_with_caller<'env>(
        &self,
        mut jobs: Vec<Box<dyn FnOnce() + Send + 'env>>,
        caller: Box<dyn FnOnce() + Send + 'env>,
    ) {
        jobs.push(caller);
        self.run_jobs(jobs);
    }
}

/// A worker pool handle: a resolved thread count plus the dispatch logic.
///
/// Cheap to construct and copy; holds no OS resources of its own. By
/// default threads are spawned per call (scoped) and joined before the
/// call returns; [`Pool::with_executor`] instead borrows a persistent
/// [`ScopeExecutor`], which amortises the per-call spawn cost for the
/// many-small-kernel regime. The executor never changes results — every
/// kernel is bitwise identical for any thread count and either backend.
#[derive(Clone, Copy)]
pub struct Pool<'e> {
    threads: usize,
    /// `None`: scoped threads per call. `Some`: persistent executor.
    executor: Option<&'e dyn ScopeExecutor>,
}

impl std::fmt::Debug for Pool<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .field("executor", &self.executor.map(|_| "persistent"))
            .finish()
    }
}

impl Default for Pool<'static> {
    /// The machine-default pool ([`default_threads`]).
    fn default() -> Self {
        Pool::new(None)
    }
}

impl Pool<'static> {
    /// Resolve a thread-count knob: `Some(t)` pins the worker count,
    /// `None` uses [`default_threads`] (env override / machine size,
    /// resolved once per process).
    pub fn new(threads: Option<usize>) -> Self {
        Pool {
            threads: threads.unwrap_or_else(default_threads).max(1),
            executor: None,
        }
    }

    /// A single-threaded pool; every primitive runs inline.
    pub fn serial() -> Self {
        Pool {
            threads: 1,
            executor: None,
        }
    }
}

impl<'e> Pool<'e> {
    /// Schedule parallel work onto a persistent [`ScopeExecutor`] with
    /// `threads` workers instead of spawning scoped threads per call.
    /// This is the **default path for the solvers**: the multilevel
    /// driver, PCG and the CLI all thread a pool built here through
    /// their call chains, so nested kernels never silently fall back to
    /// scoped spawns. Chunking (and therefore every result bit) is
    /// identical to the scoped backend at the same thread count.
    pub fn with_executor(threads: usize, executor: &'e dyn ScopeExecutor) -> Pool<'e> {
        Pool {
            threads: threads.max(1),
            executor: Some(executor),
        }
    }

    /// Worker count this pool schedules onto.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of workers to engage for `n` independent elements given an
    /// engagement threshold.
    fn workers_for_min(&self, n: usize, min: usize) -> usize {
        if self.threads <= 1 || n < min {
            1
        } else {
            self.threads.min(n.div_ceil(REDUCE_CHUNK)).max(1)
        }
    }

    /// Chunked `par_for`: split `data` into one contiguous chunk-aligned
    /// span per engaged worker (per the cached [`ChunkPlan`]) and run
    /// `f(offset, span)` on each in parallel. Engages workers at
    /// [`SPAWN_MIN`] — the heavy-kernel threshold; level-1 wrappers use
    /// the [`LIGHT_SPAWN_MIN`] variant internally.
    ///
    /// `f` must compute each element of its span from the element's
    /// *global* index only (`offset + local`), independent of the split —
    /// then the result is identical for every thread count.
    pub fn for_each_chunk<T, F>(&self, data: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        self.for_each_chunk_min(SPAWN_MIN, data, f);
    }

    /// [`Pool::for_each_chunk`] with the light-kernel engagement
    /// threshold — for level-1, memory-bound elementwise passes.
    pub(crate) fn for_each_chunk_light<T, F>(&self, data: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        self.for_each_chunk_min(LIGHT_SPAWN_MIN, data, f);
    }

    fn for_each_chunk_min<T, F>(&self, min: usize, data: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let n = data.len();
        let workers = self.workers_for_min(n, min);
        if workers <= 1 {
            f(0, data);
            return;
        }
        let plan = ChunkPlan::for_len(n, workers);
        plan.check(n);
        note_dispatch(plan.workers() as u64 - 1, plan.chunks() as u64);
        // Split at the plan's chunk-aligned fenceposts; the calling
        // thread executes the last span itself instead of idling.
        let mut spans: Vec<(usize, &mut [T])> = Vec::with_capacity(plan.workers());
        let mut rest = data;
        for w in 0..plan.workers() {
            let (lo, hi) = plan.span(w);
            let (head, tail) = rest.split_at_mut(hi - lo);
            rest = tail;
            spans.push((lo, head));
        }
        let (c_off, c_head) = spans.pop().expect("plan has >= 1 span");
        let g = &f;
        match self.executor {
            Some(executor) => {
                let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = spans
                    .into_iter()
                    .map(|(offset, head)| {
                        Box::new(move || g(offset, head)) as Box<dyn FnOnce() + Send + '_>
                    })
                    .collect();
                executor.run_jobs_with_caller(jobs, Box::new(move || g(c_off, c_head)));
            }
            None => {
                thread::scope(|s| {
                    for (offset, head) in spans {
                        s.spawn(move |_| g(offset, head));
                    }
                    g(c_off, c_head);
                })
                .expect("parallel worker panicked");
            }
        }
    }

    /// Deterministic reduction over `0..n`: `partial(start, end)` is
    /// evaluated for every fixed [`REDUCE_CHUNK`]-sized chunk (in parallel
    /// when worthwhile, via [`Pool::map_chunks`]) and the partials are
    /// combined by a pairwise tree fold in chunk order — bitwise
    /// reproducible for any thread count.
    pub fn reduce<F>(&self, n: usize, partial: F) -> f64
    where
        F: Fn(usize, usize) -> f64 + Sync,
    {
        tree_fold(&mut self.map_chunks(n, partial))
    }

    /// [`Pool::reduce`] with the light-kernel engagement threshold.
    pub(crate) fn reduce_light<F>(&self, n: usize, partial: F) -> f64
    where
        F: Fn(usize, usize) -> f64 + Sync,
    {
        tree_fold(&mut self.map_chunks_min(LIGHT_SPAWN_MIN, n, partial))
    }

    /// Evaluate `f(start, end)` for every fixed [`REDUCE_CHUNK`]-sized
    /// chunk of `0..n` (in parallel when worthwhile) and return the
    /// per-chunk results **in chunk order** — the gather analogue of
    /// [`Pool::reduce`], used for passes that collect variable-sized
    /// output per row range (e.g. the edge-rating pass of heavy-edge
    /// matching). Chunk boundaries depend only on `n`, so the concatenated
    /// result is identical for every thread count.
    pub fn map_chunks<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, usize) -> T + Sync,
    {
        self.map_chunks_min(SPAWN_MIN, n, f)
    }

    fn map_chunks_min<T, F>(&self, min: usize, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, usize) -> T + Sync,
    {
        let chunks = n.div_ceil(REDUCE_CHUNK).max(1);
        let mut out: Vec<Option<T>> = (0..chunks).map(|_| None).collect();
        let workers = self.workers_for_min(n, min);
        if workers <= 1 {
            for (c, slot) in out.iter_mut().enumerate() {
                let start = c * REDUCE_CHUNK;
                *slot = Some(f(start, (start + REDUCE_CHUNK).min(n)));
            }
        } else {
            let plan = ChunkPlan::for_len(n, workers);
            plan.check(n);
            debug_assert_eq!(plan.chunks(), chunks);
            note_dispatch(plan.workers() as u64 - 1, plan.chunks() as u64);
            // One job per worker: its full contiguous range of chunks,
            // sliced out of the result vector at the plan's fenceposts.
            let mut spans: Vec<(usize, &mut [Option<T>])> = Vec::with_capacity(plan.workers());
            let mut rest: &mut [Option<T>] = &mut out;
            for w in 0..plan.workers() {
                let (lo, hi) = plan.chunk_range(w);
                let (head, tail) = rest.split_at_mut(hi - lo);
                rest = tail;
                spans.push((lo, head));
            }
            let g = &f;
            let eval = move |first: usize, slots: &mut [Option<T>]| {
                for (k, slot) in slots.iter_mut().enumerate() {
                    let start = (first + k) * REDUCE_CHUNK;
                    *slot = Some(g(start, (start + REDUCE_CHUNK).min(n)));
                }
            };
            let (c_first, c_slots) = spans.pop().expect("plan has >= 1 span");
            let ev = &eval;
            match self.executor {
                Some(executor) => {
                    let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = spans
                        .into_iter()
                        .map(|(first, slots)| {
                            Box::new(move || ev(first, slots)) as Box<dyn FnOnce() + Send + '_>
                        })
                        .collect();
                    executor.run_jobs_with_caller(jobs, Box::new(move || ev(c_first, c_slots)));
                }
                None => {
                    thread::scope(|s| {
                        for (first, slots) in spans {
                            s.spawn(move |_| ev(first, slots));
                        }
                        ev(c_first, c_slots);
                    })
                    .expect("parallel worker panicked");
                }
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("every chunk evaluated"))
            .collect()
    }

    /// Dot product `xᵀy` — parallel, bitwise equal to [`vector::dot`].
    pub fn dot(&self, x: &[f64], y: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), y.len(), "dot: length mismatch");
        self.reduce_light(x.len(), |a, b| vector::dot_kernel(&x[a..b], &y[a..b]))
    }

    /// Euclidean norm `‖x‖₂` — parallel, bitwise equal to
    /// [`vector::norm2`].
    pub fn norm2(&self, x: &[f64]) -> f64 {
        self.dot(x, x).sqrt()
    }

    /// Entry sum — parallel, bitwise equal to the serial chunked sum
    /// behind [`vector::mean`].
    pub fn sum(&self, x: &[f64]) -> f64 {
        self.reduce_light(x.len(), |a, b| vector::sum_kernel(&x[a..b]))
    }

    /// `y ← y + alpha·x` — parallel, elementwise (bitwise equal to
    /// [`vector::axpy`] for any thread count).
    pub fn axpy(&self, alpha: f64, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
        self.for_each_chunk_light(y, |off, chunk| {
            vector::axpy(alpha, &x[off..off + chunk.len()], chunk);
        });
    }

    /// `x ← alpha·x` — parallel.
    pub fn scale(&self, alpha: f64, x: &mut [f64]) {
        self.for_each_chunk_light(x, |_, chunk| vector::scale(alpha, chunk));
    }

    /// Subtract the mean from every entry — parallel, bitwise equal to
    /// [`vector::center`].
    pub fn center(&self, x: &mut [f64]) {
        if x.is_empty() {
            return;
        }
        let m = self.sum(x) / x.len() as f64;
        self.for_each_chunk_light(x, |_, chunk| {
            for v in chunk.iter_mut() {
                *v -= m;
            }
        });
    }

    /// `y = A x` with row-chunked parallelism — each output row is an
    /// independent sparse dot product, so the result is bitwise equal to
    /// [`CsrMatrix::matvec_into`] for any thread count. Heavy-kernel
    /// threshold: a CSR row costs a sparse dot, so [`SPAWN_MIN`] rows
    /// amortise the engagement.
    pub fn matvec_into(&self, a: &CsrMatrix, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), a.cols());
        debug_assert_eq!(y.len(), a.rows());
        self.for_each_chunk(y, |row0, chunk| a.matvec_rows_into(row0, x, chunk));
    }
}

/// Pairwise tree reduction of `partials` in index order; deterministic for
/// a given partial list. The serial chunked kernels in [`crate::vector`]
/// fold their chunk partials through this same function, which is what
/// pins one summation order across every thread count.
pub(crate) fn tree_fold(partials: &mut [f64]) -> f64 {
    if partials.is_empty() {
        return 0.0;
    }
    let mut len = partials.len();
    while len > 1 {
        let mut write = 0;
        let mut read = 0;
        while read < len {
            partials[write] = if read + 1 < len {
                partials[read] + partials[read + 1]
            } else {
                partials[read]
            };
            write += 1;
            read += 2;
        }
        len = write;
    }
    partials[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_vec(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn grid_laplacian(w: usize, h: usize) -> CsrMatrix {
        let idx = |x: usize, y: usize| x * h + y;
        let mut t = Vec::new();
        let mut deg = vec![0.0; w * h];
        for x in 0..w {
            for y in 0..h {
                for (nx, ny) in [(x + 1, y), (x, y + 1)] {
                    if nx < w && ny < h {
                        t.push((idx(x, y), idx(nx, ny), -1.0));
                        t.push((idx(nx, ny), idx(x, y), -1.0));
                        deg[idx(x, y)] += 1.0;
                        deg[idx(nx, ny)] += 1.0;
                    }
                }
            }
        }
        for (i, d) in deg.into_iter().enumerate() {
            t.push((i, i, d));
        }
        CsrMatrix::from_triplets(w * h, w * h, &t).unwrap()
    }

    #[test]
    fn default_pool_resolves_at_least_one_thread() {
        assert!(default_threads() >= 1);
        assert!(Pool::default().threads() >= 1);
        assert_eq!(Pool::new(Some(0)).threads(), 1);
        assert_eq!(Pool::new(Some(3)).threads(), 3);
        assert_eq!(Pool::serial().threads(), 1);
    }

    #[test]
    fn tree_fold_cases() {
        assert_eq!(tree_fold(&mut []), 0.0);
        assert_eq!(tree_fold(&mut [3.5]), 3.5);
        // ((1+2)+(3+4)) + (5): tree order, not left-to-right.
        assert_eq!(tree_fold(&mut [1.0, 2.0, 3.0, 4.0, 5.0]), 15.0);
    }

    #[test]
    fn chunk_plan_covers_the_grid_exactly() {
        for (len, workers) in [
            (1usize, 1usize),
            (REDUCE_CHUNK, 4),
            (REDUCE_CHUNK + 1, 2),
            (LIGHT_SPAWN_MIN + 37, 3),
            (10 * REDUCE_CHUNK + 5, 4),
        ] {
            let plan = ChunkPlan::for_len(len, workers);
            assert_eq!(plan.len(), len);
            assert_eq!(plan.chunks(), len.div_ceil(REDUCE_CHUNK).max(1));
            assert!(plan.workers() <= workers.max(1));
            let mut next = 0usize;
            let mut elems = 0usize;
            for w in 0..plan.workers() {
                let (clo, chi) = plan.chunk_range(w);
                assert_eq!(clo, next, "gap in chunk coverage");
                assert!(chi > clo, "empty worker span");
                next = chi;
                let (lo, hi) = plan.span(w);
                assert_eq!(lo, (clo * REDUCE_CHUNK).min(len));
                assert_eq!(hi, (chi * REDUCE_CHUNK).min(len));
                elems += hi - lo;
            }
            assert_eq!(next, plan.chunks(), "chunks not fully covered");
            assert_eq!(elems, len, "elements not fully covered");
        }
    }

    #[test]
    fn chunk_plan_is_memoised_per_length_and_workers() {
        let a = ChunkPlan::for_len(LIGHT_SPAWN_MIN + 11, 4);
        let b = ChunkPlan::for_len(LIGHT_SPAWN_MIN + 11, 4);
        assert!(Arc::ptr_eq(&a, &b), "same key must hit the cache");
        let c = ChunkPlan::for_len(LIGHT_SPAWN_MIN + 12, 4);
        assert!(!Arc::ptr_eq(&a, &c), "different length, different plan");
        assert_eq!(c.len(), LIGHT_SPAWN_MIN + 12);
    }

    #[test]
    #[should_panic(expected = "ChunkPlan for length")]
    fn chunk_plan_rejects_mismatched_length() {
        // The regression the cache invites: a plan computed for length N
        // applied to a slice of length M != N must fail loudly, not
        // silently mis-split.
        let plan = ChunkPlan::for_len(SPAWN_MIN, 2);
        plan.check(SPAWN_MIN + 1);
    }

    #[test]
    fn dot_bitwise_identical_across_thread_counts() {
        // Larger than LIGHT_SPAWN_MIN so threads genuinely engage, with
        // an odd tail so chunk boundaries are exercised.
        let n = LIGHT_SPAWN_MIN + 3 * REDUCE_CHUNK + 17;
        let x = random_vec(n, 1);
        let y = random_vec(n, 2);
        let serial = vector::dot(&x, &y);
        for t in [1usize, 2, 4] {
            let par = Pool::new(Some(t)).dot(&x, &y);
            assert_eq!(par.to_bits(), serial.to_bits(), "threads={t}");
        }
    }

    #[test]
    fn sum_and_center_bitwise_identical() {
        let n = LIGHT_SPAWN_MIN + 1234;
        let base = random_vec(n, 3);
        let serial_sum: f64 = vector::sum_kernel_chunked(&base);
        for t in [1usize, 2, 4] {
            let pool = Pool::new(Some(t));
            assert_eq!(pool.sum(&base).to_bits(), serial_sum.to_bits());
            let mut a = base.clone();
            let mut b = base.clone();
            vector::center(&mut a);
            pool.center(&mut b);
            assert_eq!(a, b, "center differs at threads={t}");
        }
    }

    #[test]
    fn axpy_and_scale_match_serial() {
        let n = LIGHT_SPAWN_MIN + 77;
        let x = random_vec(n, 4);
        let base = random_vec(n, 5);
        for t in [1usize, 2, 4] {
            let pool = Pool::new(Some(t));
            let mut a = base.clone();
            let mut b = base.clone();
            vector::axpy(0.37, &x, &mut a);
            pool.axpy(0.37, &x, &mut b);
            assert_eq!(a, b, "axpy differs at threads={t}");
            vector::scale(-1.5, &mut a);
            pool.scale(-1.5, &mut b);
            assert_eq!(a, b, "scale differs at threads={t}");
        }
    }

    #[test]
    fn light_kernels_below_threshold_run_inline_but_match() {
        // Between SPAWN_MIN and LIGHT_SPAWN_MIN the level-1 wrappers run
        // inline (dispatch would cost more than the pass); results are
        // bitwise unchanged and no engagement is recorded.
        let n = SPAWN_MIN + 3 * REDUCE_CHUNK;
        let x = random_vec(n, 21);
        let y = random_vec(n, 22);
        let before = dispatch_counters();
        let par = Pool::new(Some(4)).dot(&x, &y);
        let delta = dispatch_counters().since(&before);
        assert_eq!(delta.scope_entries, 0, "light op engaged below threshold");
        assert_eq!(par.to_bits(), vector::dot(&x, &y).to_bits());
    }

    #[test]
    fn matvec_bitwise_identical_across_thread_counts() {
        let lap = grid_laplacian(180, 120); // 21,600 rows > SPAWN_MIN
        let x = random_vec(lap.rows(), 6);
        let mut serial = vec![0.0; lap.rows()];
        lap.matvec_into(&x, &mut serial);
        for t in [1usize, 2, 4] {
            let mut y = vec![0.0; lap.rows()];
            Pool::new(Some(t)).matvec_into(&lap, &x, &mut y);
            assert_eq!(y, serial, "matvec differs at threads={t}");
        }
    }

    #[test]
    fn small_inputs_run_inline() {
        // Below SPAWN_MIN nothing spawns, but results are still right.
        let x = random_vec(100, 7);
        let y = random_vec(100, 8);
        let pool = Pool::new(Some(8));
        assert_eq!(pool.dot(&x, &y).to_bits(), vector::dot(&x, &y).to_bits());
        assert_eq!(pool.norm2(&x).to_bits(), vector::norm2(&x).to_bits());
    }

    #[test]
    fn dispatch_counters_count_submitted_jobs() {
        // A heavy engagement at 4 threads submits workers - 1 jobs and
        // covers the whole chunk grid exactly once.
        let lap = grid_laplacian(200, 120); // 24,000 rows -> 6 chunks
        let x = random_vec(lap.rows(), 23);
        let mut y = vec![0.0; lap.rows()];
        let before = dispatch_counters();
        Pool::new(Some(4)).matvec_into(&lap, &x, &mut y);
        let d = dispatch_counters().since(&before);
        assert_eq!(d.scope_entries, 1);
        assert_eq!(d.jobs_submitted, 3);
        assert_eq!(d.chunks_executed, lap.rows().div_ceil(REDUCE_CHUNK) as u64);
    }

    /// A toy persistent executor: runs the borrowed jobs on plain std
    /// scoped threads. Exercises the executor dispatch path (boxed jobs,
    /// default caller-merging `run_jobs_with_caller`) without needing
    /// `slpm_serve`.
    struct SpawningExecutor;
    impl ScopeExecutor for SpawningExecutor {
        fn run_jobs(&self, jobs: Vec<Box<dyn FnOnce() + Send + '_>>) {
            std::thread::scope(|s| {
                for job in jobs {
                    s.spawn(job);
                }
            });
        }
    }

    /// An executor that overrides `run_jobs_with_caller` to genuinely run
    /// the caller span on the calling thread — the `WorkerPool` shape.
    struct CallerParticipatingExecutor;
    impl ScopeExecutor for CallerParticipatingExecutor {
        fn run_jobs(&self, jobs: Vec<Box<dyn FnOnce() + Send + '_>>) {
            std::thread::scope(|s| {
                for job in jobs {
                    s.spawn(job);
                }
            });
        }
        fn run_jobs_with_caller<'env>(
            &self,
            jobs: Vec<Box<dyn FnOnce() + Send + 'env>>,
            caller: Box<dyn FnOnce() + Send + 'env>,
        ) {
            std::thread::scope(|s| {
                for job in jobs {
                    s.spawn(job);
                }
                caller();
            });
        }
    }

    #[test]
    fn executor_backend_is_bitwise_identical_to_scoped() {
        let n = LIGHT_SPAWN_MIN + 3 * REDUCE_CHUNK + 29;
        let x = random_vec(n, 11);
        let y = random_vec(n, 12);
        let executor = SpawningExecutor;
        let participating = CallerParticipatingExecutor;
        let backends: [&dyn ScopeExecutor; 2] = [&executor, &participating];
        for backend in backends {
            for t in [2usize, 4] {
                let scoped = Pool::new(Some(t));
                let pooled = Pool::with_executor(t, backend);
                assert_eq!(pooled.threads(), t);
                assert_eq!(
                    pooled.dot(&x, &y).to_bits(),
                    scoped.dot(&x, &y).to_bits(),
                    "dot differs at threads={t}"
                );
                let mut a = y.clone();
                let mut b = y.clone();
                scoped.axpy(0.73, &x, &mut a);
                pooled.axpy(0.73, &x, &mut b);
                assert_eq!(a, b, "axpy differs at threads={t}");
                scoped.center(&mut a);
                pooled.center(&mut b);
                assert_eq!(a, b, "center differs at threads={t}");
            }
        }
        // Matvec through the executor too.
        let lap = grid_laplacian(170, 130);
        let v = random_vec(lap.rows(), 13);
        let mut serial = vec![0.0; lap.rows()];
        lap.matvec_into(&v, &mut serial);
        for backend in [
            &SpawningExecutor as &dyn ScopeExecutor,
            &CallerParticipatingExecutor,
        ] {
            let mut pooled = vec![0.0; lap.rows()];
            Pool::with_executor(4, backend).matvec_into(&lap, &v, &mut pooled);
            assert_eq!(pooled, serial);
        }
    }

    #[test]
    fn executor_pool_runs_small_inputs_inline() {
        // Below the engagement thresholds the executor is never consulted.
        struct PanickingExecutor;
        impl ScopeExecutor for PanickingExecutor {
            fn run_jobs(&self, _jobs: Vec<Box<dyn FnOnce() + Send + '_>>) {
                panic!("executor must not be used for tiny inputs");
            }
        }
        let x = random_vec(64, 14);
        let pool = Pool::with_executor(8, &PanickingExecutor);
        assert_eq!(
            pool.sum(&x).to_bits(),
            vector::sum_kernel_chunked(&x).to_bits()
        );
        // Light ops stay inline all the way up to LIGHT_SPAWN_MIN.
        let y = random_vec(LIGHT_SPAWN_MIN - 1, 15);
        assert_eq!(
            pool.sum(&y).to_bits(),
            vector::sum_kernel_chunked(&y).to_bits()
        );
    }

    #[test]
    fn reduce_chunk_boundaries_depend_on_size_only() {
        // A reduction whose partial records its chunk start: the observed
        // chunk grid must be the same for 1 and 4 threads.
        let n = SPAWN_MIN * 2 + 5;
        let collect = |threads: usize| {
            let starts = Mutex::new(Vec::new());
            Pool::new(Some(threads)).reduce(n, |a, _b| {
                starts.lock().unwrap().push(a);
                0.0
            });
            let mut v = starts.into_inner().unwrap();
            v.sort_unstable();
            v
        };
        assert_eq!(collect(1), collect(4));
    }
}
