//! Row-major dense matrices.
//!
//! Dense matrices appear in three places in the reproduction: the dense
//! reference eigensolver (for graphs small enough to materialise), the Ritz
//! problem inside Lanczos, and unit tests that compare sparse kernels
//! against a straightforward dense ground truth.

use crate::error::LinalgError;
use crate::operator::LinearOperator;

/// A dense `rows × cols` matrix stored row-major in one contiguous `Vec`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Create a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create the `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build from a row-major data vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                context: "DenseMatrix::from_vec",
                expected: rows * cols,
                found: data.len(),
            });
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Build from nested rows (convenient in tests).
    ///
    /// Returns an error if the rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, LinalgError> {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(LinalgError::DimensionMismatch {
                    context: "DenseMatrix::from_rows",
                    expected: c,
                    found: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(DenseMatrix {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Add `v` to element `(i, j)`.
    #[inline]
    pub fn add_to(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] += v;
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Raw row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// `y = A x` returning a fresh vector.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                context: "DenseMatrix::matvec",
                expected: self.cols,
                found: x.len(),
            });
        }
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            y[i] = crate::vector::dot(self.row(i), x);
        }
        Ok(y)
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &DenseMatrix) -> Result<DenseMatrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                context: "DenseMatrix::matmul",
                expected: self.cols,
                found: other.rows,
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.add_to(i, j, aik * other.get(k, j));
                }
            }
        }
        Ok(out)
    }

    /// Largest absolute asymmetry `max |a_ij − a_ji|` (0 for non-square
    /// matrices is not meaningful; returns an error in that case).
    pub fn max_asymmetry(&self) -> Result<f64, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let mut worst = 0.0f64;
        for i in 0..self.rows {
            for j in i + 1..self.cols {
                worst = worst.max((self.get(i, j) - self.get(j, i)).abs());
            }
        }
        Ok(worst)
    }

    /// Check symmetry up to `tol`, returning a [`LinalgError::NotSymmetric`]
    /// describing the worst violation otherwise.
    pub fn require_symmetric(&self, tol: f64) -> Result<(), LinalgError> {
        let worst = self.max_asymmetry()?;
        if worst > tol {
            Err(LinalgError::NotSymmetric {
                max_asymmetry: worst,
            })
        } else {
            Ok(())
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        crate::vector::norm2(&self.data)
    }
}

impl LinearOperator for DenseMatrix {
    fn dim(&self) -> usize {
        debug_assert_eq!(self.rows, self.cols, "operator use requires square");
        self.rows
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(y.len(), self.rows);
        for i in 0..self.rows {
            y[i] = crate::vector::dot(self.row(i), x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap()
    }

    #[test]
    fn zeros_and_identity() {
        let z = DenseMatrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = DenseMatrix::identity(3);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
        assert!(err.is_err());
    }

    #[test]
    fn get_set_row() {
        let mut m = sample();
        m.set(0, 1, 9.0);
        assert_eq!(m.get(0, 1), 9.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m.get(1, 0), 7.0);
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let m = sample();
        let y = m.matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn matvec_rejects_bad_length() {
        assert!(sample().matvec(&[1.0]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(0, 1), 3.0);
    }

    #[test]
    fn matmul_against_identity() {
        let m = sample();
        let i = DenseMatrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
        assert_eq!(i.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_dimension_check() {
        let m = sample();
        let bad = DenseMatrix::zeros(3, 2);
        assert!(m.matmul(&bad).is_err());
    }

    #[test]
    fn symmetry_checks() {
        let sym = DenseMatrix::from_rows(&[vec![2.0, -1.0], vec![-1.0, 2.0]]).unwrap();
        sym.require_symmetric(0.0).unwrap();
        let asym = sample();
        assert!(matches!(
            asym.require_symmetric(1e-12),
            Err(LinalgError::NotSymmetric { .. })
        ));
        assert!(DenseMatrix::zeros(2, 3).max_asymmetry().is_err());
    }

    #[test]
    fn operator_apply_equals_matvec() {
        let m = DenseMatrix::from_rows(&[vec![2.0, -1.0], vec![-1.0, 2.0]]).unwrap();
        let x = [1.0, 2.0];
        let mut y = [0.0, 0.0];
        m.apply(&x, &mut y);
        assert_eq!(y.to_vec(), m.matvec(&x).unwrap());
    }

    #[test]
    fn frobenius_norm_value() {
        let m = sample();
        let expect = (1.0f64 + 4.0 + 9.0 + 16.0).sqrt();
        assert!((m.frobenius_norm() - expect).abs() < 1e-14);
    }
}
