//! Cyclic Jacobi eigensolver for dense symmetric matrices.
//!
//! Slower than Householder+QL but completely independent of it, which makes
//! it the cross-check of choice in tests: two different algorithms agreeing
//! on a spectrum is strong evidence both are right.

use crate::dense::DenseMatrix;
use crate::error::LinalgError;
use crate::tql::SymmetricEigen;

/// Maximum number of full sweeps before giving up.
const MAX_SWEEPS: usize = 64;

/// Eigen-decompose a symmetric matrix with the cyclic Jacobi method.
///
/// Returns eigenvalues ascending with matching eigenvector columns, same
/// contract as [`crate::tql::symmetric_eigen`].
pub fn jacobi_eigen(a: &DenseMatrix) -> Result<SymmetricEigen, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let tol = 1e-10 * a.frobenius_norm().max(1.0);
    a.require_symmetric(tol)?;

    let mut m = a.clone();
    let mut v = DenseMatrix::identity(n);

    let off_norm = |m: &DenseMatrix| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                s += m.get(i, j) * m.get(i, j);
            }
        }
        (2.0 * s).sqrt()
    };

    let stop = f64::EPSILON * m.frobenius_norm().max(f64::MIN_POSITIVE);
    let mut sweeps = 0;
    while off_norm(&m) > stop {
        sweeps += 1;
        if sweeps > MAX_SWEEPS {
            return Err(LinalgError::NoConvergence {
                solver: "jacobi",
                iterations: sweeps,
                residual: off_norm(&m),
                tolerance: stop,
            });
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m.get(p, q);
                if apq.abs() <= stop / (n as f64) {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                // Rotation angle (Golub & Van Loan §8.5.2).
                let theta = (aqq - app) / (2.0 * apq);
                let t = {
                    let sign = if theta >= 0.0 { 1.0 } else { -1.0 };
                    sign / (theta.abs() + (theta * theta + 1.0).sqrt())
                };
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // Apply the rotation M ← JᵀMJ on rows/cols p,q.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    // Extract and sort.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    order.sort_by(|&x, &y| diag[x].partial_cmp(&diag[y]).expect("finite eigenvalues"));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut sorted_v = DenseMatrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..n {
            sorted_v.set(r, new_col, v.get(r, old_col));
        }
    }
    Ok(SymmetricEigen {
        eigenvalues,
        eigenvectors: sorted_v,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tql::symmetric_eigen;

    #[test]
    fn matches_ql_on_small_matrix() {
        let a = DenseMatrix::from_rows(&[
            vec![4.0, 1.0, -2.0],
            vec![1.0, 2.0, 0.0],
            vec![-2.0, 0.0, 3.0],
        ])
        .unwrap();
        let j = jacobi_eigen(&a).unwrap();
        let q = symmetric_eigen(&a).unwrap();
        for k in 0..3 {
            assert!((j.eigenvalues[k] - q.eigenvalues[k]).abs() < 1e-9);
        }
    }

    #[test]
    fn eigenpairs_satisfy_definition() {
        let a = DenseMatrix::from_rows(&[
            vec![2.0, -1.0, 0.0, 0.0],
            vec![-1.0, 2.0, -1.0, 0.0],
            vec![0.0, -1.0, 2.0, -1.0],
            vec![0.0, 0.0, -1.0, 2.0],
        ])
        .unwrap();
        let eig = jacobi_eigen(&a).unwrap();
        for k in 0..4 {
            let v = eig.eigenvector(k);
            let av = a.matvec(&v).unwrap();
            for i in 0..4 {
                assert!((av[i] - eig.eigenvalues[k] * v[i]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn matches_ql_on_random_matrices() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for n in [2usize, 5, 10, 20] {
            let mut a = DenseMatrix::zeros(n, n);
            for i in 0..n {
                for j in 0..=i {
                    let val = rng.gen_range(-3.0..3.0);
                    a.set(i, j, val);
                    a.set(j, i, val);
                }
            }
            let j = jacobi_eigen(&a).unwrap();
            let q = symmetric_eigen(&a).unwrap();
            for k in 0..n {
                assert!(
                    (j.eigenvalues[k] - q.eigenvalues[k]).abs() < 1e-7,
                    "n={n} k={k}: jacobi {} vs ql {}",
                    j.eigenvalues[k],
                    q.eigenvalues[k]
                );
            }
        }
    }

    #[test]
    fn identity_has_unit_spectrum() {
        let eig = jacobi_eigen(&DenseMatrix::identity(5)).unwrap();
        for l in eig.eigenvalues {
            assert!((l - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn rejects_asymmetric() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]).unwrap();
        assert!(jacobi_eigen(&a).is_err());
    }
}
