//! Sturm-sequence bisection for symmetric tridiagonal eigenvalues.
//!
//! A third, independent eigenvalue algorithm (after QL and Jacobi): the
//! number of sign agreements in the Sturm sequence of `T − λI` counts the
//! eigenvalues below `λ`, so any single eigenvalue can be located by pure
//! bisection — numerically bulletproof, embarrassingly verifiable, and
//! usable to cross-check the λ₂ the faster solvers produce. Golub & Van
//! Loan §8.4.
//!
//! Operates on the same EISPACK-convention `(diag, off)` pairs as
//! [`crate::tql`] (`off[0] == 0`, `off[i]` couples rows `i−1, i`).

use crate::error::LinalgError;

/// Number of eigenvalues of the tridiagonal `T` that are **strictly less**
/// than `x`, via the Sturm sequence sign count.
pub fn count_eigenvalues_below(diag: &[f64], off: &[f64], x: f64) -> usize {
    let n = diag.len();
    let mut count = 0usize;
    // q_i is the ratio of characteristic polynomials; a non-positive value
    // signals one more eigenvalue below x.
    let mut q = 1.0f64;
    for i in 0..n {
        let off2 = if i == 0 { 0.0 } else { off[i] * off[i] };
        q = if q != 0.0 {
            diag[i] - x - off2 / q
        } else {
            // Treat an exact zero as a tiny positive number (standard
            // perturbation trick).
            diag[i] - x - off2 / f64::MIN_POSITIVE
        };
        if q < 0.0 {
            count += 1;
        }
    }
    count
}

/// Locate the `k`-th smallest eigenvalue (0-based) of a symmetric
/// tridiagonal matrix by Sturm bisection, to absolute tolerance `tol`.
pub fn kth_eigenvalue(diag: &[f64], off: &[f64], k: usize, tol: f64) -> Result<f64, LinalgError> {
    let n = diag.len();
    if off.len() != n {
        return Err(LinalgError::DimensionMismatch {
            context: "bisection off-diagonal",
            expected: n,
            found: off.len(),
        });
    }
    if k >= n {
        return Err(LinalgError::ProblemTooSmall {
            dimension: n,
            minimum: k + 1,
        });
    }

    // Gershgorin interval containing the whole spectrum.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..n {
        let r = off[i].abs() + if i + 1 < n { off[i + 1].abs() } else { 0.0 };
        lo = lo.min(diag[i] - r);
        hi = hi.max(diag[i] + r);
    }
    if lo > hi {
        return Err(LinalgError::NonFiniteInput {
            context: "bisection: empty Gershgorin interval",
        });
    }

    // Bisection on the eigenvalue-counting function.
    let mut a = lo;
    let mut b = hi;
    // 200 iterations halve the interval below any f64 tolerance.
    for _ in 0..200 {
        if b - a <= tol {
            break;
        }
        let mid = 0.5 * (a + b);
        if count_eigenvalues_below(diag, off, mid) > k {
            b = mid;
        } else {
            a = mid;
        }
    }
    Ok(0.5 * (a + b))
}

/// All `n` eigenvalues by repeated bisection, ascending — O(n² log(1/tol)),
/// slower than QL but with per-eigenvalue error bounds; used as a
/// cross-check oracle in tests.
pub fn all_eigenvalues(diag: &[f64], off: &[f64], tol: f64) -> Result<Vec<f64>, LinalgError> {
    (0..diag.len())
        .map(|k| kth_eigenvalue(diag, off, k, tol))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tql::tridiagonal_eigen;

    /// Path-graph Laplacian as a tridiagonal.
    fn path(n: usize) -> (Vec<f64>, Vec<f64>) {
        let diag: Vec<f64> = (0..n)
            .map(|i| if i == 0 || i == n - 1 { 1.0 } else { 2.0 })
            .collect();
        let mut off = vec![-1.0; n];
        off[0] = 0.0;
        (diag, off)
    }

    #[test]
    fn counts_are_monotone_and_complete() {
        let (d, e) = path(8);
        assert_eq!(count_eigenvalues_below(&d, &e, -1e-9), 0);
        assert_eq!(count_eigenvalues_below(&d, &e, 4.1), 8);
        let mut prev = 0;
        for x in [-0.5, 0.1, 0.5, 1.0, 2.0, 3.0, 3.9, 4.5] {
            let c = count_eigenvalues_below(&d, &e, x);
            assert!(c >= prev, "count not monotone at {x}");
            prev = c;
        }
    }

    #[test]
    fn matches_ql_on_path_laplacian() {
        let (d, e) = path(10);
        let ql = tridiagonal_eigen(d.clone(), e.clone()).unwrap();
        let bis = all_eigenvalues(&d, &e, 1e-12).unwrap();
        for k in 0..10 {
            assert!(
                (ql.eigenvalues[k] - bis[k]).abs() < 1e-9,
                "k={k}: ql {} vs bisection {}",
                ql.eigenvalues[k],
                bis[k]
            );
        }
    }

    #[test]
    fn lambda2_of_path_is_correct() {
        let n = 16;
        let (d, e) = path(n);
        let l2 = kth_eigenvalue(&d, &e, 1, 1e-13).unwrap();
        let expect = 4.0 * (std::f64::consts::PI / (2.0 * n as f64)).sin().powi(2);
        assert!((l2 - expect).abs() < 1e-10, "{l2} vs {expect}");
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_diagonal() {
        let d = vec![3.0, 1.0, 2.0];
        let e = vec![0.0, 0.0, 0.0];
        let all = all_eigenvalues(&d, &e, 1e-13).unwrap();
        assert!((all[0] - 1.0).abs() < 1e-10);
        assert!((all[1] - 2.0).abs() < 1e-10);
        assert!((all[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(kth_eigenvalue(&[1.0], &[0.0], 1, 1e-10).is_err());
        assert!(kth_eigenvalue(&[1.0, 2.0], &[0.0], 0, 1e-10).is_err());
    }

    #[test]
    fn random_tridiagonals_match_ql() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for n in [2usize, 5, 12] {
            let diag: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let mut off: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            off[0] = 0.0;
            let ql = tridiagonal_eigen(diag.clone(), off.clone()).unwrap();
            let bis = all_eigenvalues(&diag, &off, 1e-12).unwrap();
            for k in 0..n {
                assert!(
                    (ql.eigenvalues[k] - bis[k]).abs() < 1e-8,
                    "n={n} k={k}: {} vs {}",
                    ql.eigenvalues[k],
                    bis[k]
                );
            }
        }
    }
}
