//! Power iteration and deflated inverse iteration.
//!
//! The simplest possible eigensolvers, kept for three reasons: they give an
//! independent correctness oracle for Lanczos; they are the textbook
//! baseline the `ablation_eigensolver` bench compares against; and inverse
//! iteration is the standard way to *refine* an eigenvector once its
//! eigenvalue is known to a few digits.

use crate::cg::{self, CgOptions};
use crate::error::LinalgError;
use crate::operator::LinearOperator;
use crate::vector;
use rand::SeedableRng;

/// Options shared by the simple iterations.
#[derive(Debug, Clone)]
pub struct PowerOptions {
    /// Convergence tolerance on the eigen-residual `‖Av − λv‖`.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
    /// RNG seed for the start vector.
    pub seed: u64,
    /// Directions to deflate (confine the iteration to their complement).
    pub deflation: Vec<Vec<f64>>,
}

impl Default for PowerOptions {
    fn default() -> Self {
        PowerOptions {
            tolerance: 1e-9,
            max_iterations: 10_000,
            seed: 0x90BE_EF01,
            deflation: Vec::new(),
        }
    }
}

/// Result of a simple iteration.
#[derive(Debug, Clone)]
pub struct PowerResult {
    /// Converged eigenvalue (Rayleigh quotient at exit).
    pub eigenvalue: f64,
    /// Unit eigenvector.
    pub eigenvector: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
    /// Final residual `‖Av − λv‖`.
    pub residual: f64,
}

/// Power iteration: converges to the eigenvalue of largest magnitude (of
/// the deflated operator).
pub fn power_iteration<A: LinearOperator + ?Sized>(
    a: &A,
    opts: &PowerOptions,
) -> Result<PowerResult, LinalgError> {
    let n = a.dim();
    if n == 0 {
        return Err(LinalgError::ProblemTooSmall {
            dimension: 0,
            minimum: 1,
        });
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed);
    let mut v = vec![0.0; n];
    vector::fill_random(&mut rng, &mut v);
    for d in &opts.deflation {
        vector::project_out(d, &mut v);
    }
    if vector::normalize(&mut v) == 0.0 {
        return Err(LinalgError::NonFiniteInput {
            context: "power iteration start vector collapsed",
        });
    }

    let mut av = vec![0.0; n];
    for iter in 1..=opts.max_iterations {
        a.apply(&v, &mut av);
        for d in &opts.deflation {
            vector::project_out(d, &mut av);
        }
        let lambda = vector::dot(&v, &av);
        // Residual before the renormalisation step.
        let mut r = av.clone();
        vector::axpy(-lambda, &v, &mut r);
        let residual = vector::norm2(&r);
        if residual <= opts.tolerance * lambda.abs().max(1.0) {
            vector::copy(&av, &mut v);
            if vector::normalize(&mut v) == 0.0 {
                return Err(LinalgError::NonFiniteInput {
                    context: "power iteration collapsed",
                });
            }
            vector::canonicalize_sign(&mut v);
            return Ok(PowerResult {
                eigenvalue: lambda,
                eigenvector: v,
                iterations: iter,
                residual,
            });
        }
        vector::copy(&av, &mut v);
        if vector::normalize(&mut v) == 0.0 {
            return Err(LinalgError::NonFiniteInput {
                context: "power iteration collapsed",
            });
        }
    }
    Err(LinalgError::NoConvergence {
        solver: "power iteration",
        iterations: opts.max_iterations,
        residual: f64::NAN,
        tolerance: opts.tolerance,
    })
}

/// Deflated inverse iteration on a singular Laplacian: each step solves
/// `L w = v` restricted to the zero-mean subspace (CG), converging to the
/// eigenvector of the **smallest nonzero** eigenvalue — the Fiedler vector.
///
/// Convergence rate is `λ₂/λ₃` per step, so this is the slow-but-simple
/// oracle; the production path is shift-invert Lanczos.
pub fn fiedler_by_inverse_iteration<A: LinearOperator + ?Sized>(
    laplacian: &A,
    opts: &PowerOptions,
) -> Result<PowerResult, LinalgError> {
    let n = laplacian.dim();
    if n < 2 {
        return Err(LinalgError::ProblemTooSmall {
            dimension: n,
            minimum: 2,
        });
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed);
    let mut v = vec![0.0; n];
    vector::fill_random(&mut rng, &mut v);
    vector::center(&mut v);
    if vector::normalize(&mut v) == 0.0 {
        return Err(LinalgError::NonFiniteInput {
            context: "inverse iteration start vector collapsed",
        });
    }

    let cg_opts = CgOptions {
        tolerance: (opts.tolerance * 1e-2).max(1e-14),
        deflate_mean: true,
        ..Default::default()
    };
    let mut av = vec![0.0; n];
    for iter in 1..=opts.max_iterations {
        let solved = cg::solve(laplacian, &v, &cg_opts)?;
        v = solved.solution;
        vector::center(&mut v);
        if vector::normalize(&mut v) == 0.0 {
            return Err(LinalgError::NonFiniteInput {
                context: "inverse iteration collapsed",
            });
        }
        // Rayleigh quotient and residual against the *original* operator.
        laplacian.apply(&v, &mut av);
        let lambda = vector::dot(&v, &av);
        let mut r = av.clone();
        vector::axpy(-lambda, &v, &mut r);
        let residual = vector::norm2(&r);
        if residual <= opts.tolerance * lambda.abs().max(1.0) {
            vector::canonicalize_sign(&mut v);
            return Ok(PowerResult {
                eigenvalue: lambda,
                eigenvector: v,
                iterations: iter,
                residual,
            });
        }
    }
    Err(LinalgError::NoConvergence {
        solver: "inverse iteration",
        iterations: opts.max_iterations,
        residual: f64::NAN,
        tolerance: opts.tolerance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::ones_direction;
    use crate::sparse::CsrMatrix;

    fn path_laplacian(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            let deg = if i == 0 || i == n - 1 { 1.0 } else { 2.0 };
            t.push((i, i, deg));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, &t).unwrap()
    }

    #[test]
    fn power_finds_dominant_of_diagonal() {
        let d = CsrMatrix::from_diagonal(&[1.0, -7.0, 3.0]);
        let r = power_iteration(&d, &PowerOptions::default()).unwrap();
        assert!((r.eigenvalue + 7.0).abs() < 1e-7);
        assert!(r.eigenvector[1].abs() > 0.999);
    }

    #[test]
    fn power_with_deflation_finds_second() {
        let d = CsrMatrix::from_diagonal(&[5.0, 3.0, 1.0]);
        // Deflate e0 → dominant becomes 3.
        let mut e0 = vec![0.0; 3];
        e0[0] = 1.0;
        let opts = PowerOptions {
            deflation: vec![e0],
            ..Default::default()
        };
        let r = power_iteration(&d, &opts).unwrap();
        assert!((r.eigenvalue - 3.0).abs() < 1e-7);
    }

    #[test]
    fn inverse_iteration_finds_fiedler() {
        let n = 12;
        let lap = path_laplacian(n);
        let r = fiedler_by_inverse_iteration(&lap, &PowerOptions::default()).unwrap();
        let expect = 4.0 * (std::f64::consts::PI / (2.0 * n as f64)).sin().powi(2);
        assert!(
            (r.eigenvalue - expect).abs() < 1e-7,
            "{} vs {expect}",
            r.eigenvalue
        );
        assert!(r.residual < 1e-7);
        // Orthogonal to the kernel.
        let ones = ones_direction(n);
        assert!(vector::dot(&ones, &r.eigenvector).abs() < 1e-7);
    }

    #[test]
    fn inverse_iteration_matches_lanczos_fiedler() {
        let lap = path_laplacian(20);
        let inv = fiedler_by_inverse_iteration(&lap, &PowerOptions::default()).unwrap();
        let pair = crate::fiedler::fiedler_pair(&lap, &Default::default()).unwrap();
        assert!((inv.eigenvalue - pair.lambda2).abs() < 1e-7);
        // Same vector up to sign (λ₂ of a path is simple); both are
        // sign-canonicalised, so they agree directly.
        for i in 0..20 {
            assert!(
                (inv.eigenvector[i] - pair.vector[i]).abs() < 1e-5,
                "component {i}"
            );
        }
    }

    #[test]
    fn rejects_empty_and_tiny() {
        let d = CsrMatrix::from_diagonal(&[]);
        assert!(power_iteration(&d, &PowerOptions::default()).is_err());
        let one = CsrMatrix::from_diagonal(&[1.0]);
        assert!(fiedler_by_inverse_iteration(&one, &PowerOptions::default()).is_err());
    }

    #[test]
    fn iteration_cap_is_enforced() {
        // Two nearly-equal dominant eigenvalues make power iteration slow;
        // with a cap of 1 it must fail rather than spin.
        let d = CsrMatrix::from_diagonal(&[1.0, 0.999999, 0.5]);
        let opts = PowerOptions {
            max_iterations: 1,
            tolerance: 1e-14,
            ..Default::default()
        };
        assert!(matches!(
            power_iteration(&d, &opts),
            Err(LinalgError::NoConvergence { .. })
        ));
    }
}
