//! Implicit-shift QL iteration for symmetric tridiagonal matrices.
//!
//! Second half of the dense symmetric eigensolver (EISPACK `tql2`): given
//! the tridiagonal produced by [`crate::householder::tridiagonalize`] (or a
//! Lanczos recurrence), compute all eigenvalues and, optionally, the
//! eigenvectors accumulated onto an initial basis.

use crate::dense::DenseMatrix;
use crate::error::LinalgError;
use crate::householder::Tridiagonal;

/// Full eigendecomposition of a symmetric matrix: `A v_k = λ_k v_k` with
/// eigenvalues ascending.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in ascending order.
    pub eigenvalues: Vec<f64>,
    /// Matrix whose *column* `k` is the eigenvector for `eigenvalues[k]`.
    pub eigenvectors: DenseMatrix,
}

impl SymmetricEigen {
    /// Extract eigenvector `k` as an owned vector.
    pub fn eigenvector(&self, k: usize) -> Vec<f64> {
        let n = self.eigenvectors.rows();
        (0..n).map(|i| self.eigenvectors.get(i, k)).collect()
    }
}

/// Maximum QL sweeps per eigenvalue before declaring failure.
const MAX_SWEEPS: usize = 50;

fn hypot(a: f64, b: f64) -> f64 {
    a.hypot(b)
}

/// Eigen-decompose a symmetric tridiagonal matrix with eigenvector
/// accumulation, consuming `diag`/`off` (EISPACK convention: `off[0] == 0`,
/// `off[i]` couples `i-1, i`). `z` must hold the basis the eigenvectors are
/// expressed in (identity for "eigenvectors of T itself", the Householder
/// `Q` for "eigenvectors of the original dense matrix", the Lanczos basis
/// for Ritz vectors).
///
/// On success, eigenvalues (and the columns of `z`) are sorted ascending.
pub fn tql2_with_basis(
    mut diag: Vec<f64>,
    mut off: Vec<f64>,
    mut z: DenseMatrix,
) -> Result<SymmetricEigen, LinalgError> {
    let n = diag.len();
    if off.len() != n {
        return Err(LinalgError::DimensionMismatch {
            context: "tql2 off-diagonal",
            expected: n,
            found: off.len(),
        });
    }
    if z.cols() != n {
        return Err(LinalgError::DimensionMismatch {
            context: "tql2 basis columns",
            expected: n,
            found: z.cols(),
        });
    }
    if n == 0 {
        return Ok(SymmetricEigen {
            eigenvalues: vec![],
            eigenvectors: z,
        });
    }

    // Shift the off-diagonal left: e[i] couples i and i+1 (NR convention).
    for i in 1..n {
        off[i - 1] = off[i];
    }
    off[n - 1] = 0.0;

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small off-diagonal to split at.
            let mut m = l;
            while m + 1 < n {
                let dd = diag[m].abs() + diag[m + 1].abs();
                if off[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > MAX_SWEEPS {
                return Err(LinalgError::NoConvergence {
                    solver: "tql2",
                    iterations: iter,
                    residual: off[l].abs(),
                    tolerance: f64::EPSILON,
                });
            }
            // Form shift.
            let mut g = (diag[l + 1] - diag[l]) / (2.0 * off[l]);
            let mut r = hypot(g, 1.0);
            let sign_r = if g >= 0.0 { r.abs() } else { -r.abs() };
            g = diag[m] - diag[l] + off[l] / (g + sign_r);
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            let mut broke_early = false;
            for i in (l..m).rev() {
                let mut f = s * off[i];
                let b = c * off[i];
                r = hypot(f, g);
                off[i + 1] = r;
                if r == 0.0 {
                    diag[i + 1] -= p;
                    off[m] = 0.0;
                    broke_early = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = diag[i + 1] - p;
                r = (diag[i] - g) * s + 2.0 * c * b;
                p = s * r;
                diag[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector basis.
                for k in 0..z.rows() {
                    f = z.get(k, i + 1);
                    let v = z.get(k, i);
                    z.set(k, i + 1, s * v + c * f);
                    z.set(k, i, c * v - s * f);
                }
            }
            if broke_early {
                continue;
            }
            diag[l] -= p;
            off[l] = g;
            off[m] = 0.0;
        }
    }

    // Sort ascending, permuting basis columns alongside.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| diag[a].partial_cmp(&diag[b]).expect("finite eigenvalues"));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut sorted_z = DenseMatrix::zeros(z.rows(), n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..z.rows() {
            sorted_z.set(r, new_col, z.get(r, old_col));
        }
    }
    Ok(SymmetricEigen {
        eigenvalues,
        eigenvectors: sorted_z,
    })
}

/// Eigen-decompose a tridiagonal (`diag`, `off` in EISPACK convention) with
/// eigenvectors of `T` itself.
pub fn tridiagonal_eigen(diag: Vec<f64>, off: Vec<f64>) -> Result<SymmetricEigen, LinalgError> {
    let n = diag.len();
    tql2_with_basis(diag, off, DenseMatrix::identity(n))
}

/// Full dense symmetric eigendecomposition: Householder + QL.
pub fn symmetric_eigen(a: &DenseMatrix) -> Result<SymmetricEigen, LinalgError> {
    let Tridiagonal { diag, off, q } = crate::householder::tridiagonalize(a)?;
    tql2_with_basis(diag, off, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;

    fn check_eigen(a: &DenseMatrix, eig: &SymmetricEigen, tol: f64) {
        let n = a.rows();
        for k in 0..n {
            let v = eig.eigenvector(k);
            let av = a.matvec(&v).unwrap();
            for i in 0..n {
                assert!(
                    (av[i] - eig.eigenvalues[k] * v[i]).abs() < tol,
                    "residual too large for eigenpair {k}"
                );
            }
            assert!((vector::norm2(&v) - 1.0).abs() < tol);
        }
        // Ascending order.
        for k in 1..n {
            assert!(eig.eigenvalues[k] >= eig.eigenvalues[k - 1] - tol);
        }
    }

    #[test]
    fn two_by_two_known_values() {
        let a = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let eig = symmetric_eigen(&a).unwrap();
        assert!((eig.eigenvalues[0] - 1.0).abs() < 1e-12);
        assert!((eig.eigenvalues[1] - 3.0).abs() < 1e-12);
        check_eigen(&a, &eig, 1e-12);
    }

    #[test]
    fn path_graph_laplacian_spectrum() {
        // Path P_n Laplacian eigenvalues are 4 sin²(kπ/2n), k = 0..n-1.
        let n = 7;
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            let deg = if i == 0 || i == n - 1 { 1.0 } else { 2.0 };
            a.set(i, i, deg);
            if i + 1 < n {
                a.set(i, i + 1, -1.0);
                a.set(i + 1, i, -1.0);
            }
        }
        let eig = symmetric_eigen(&a).unwrap();
        for k in 0..n {
            let expect = 4.0
                * (std::f64::consts::PI * k as f64 / (2 * n) as f64)
                    .sin()
                    .powi(2);
            assert!(
                (eig.eigenvalues[k] - expect).abs() < 1e-10,
                "eigenvalue {k}: {} vs {}",
                eig.eigenvalues[k],
                expect
            );
        }
        check_eigen(&a, &eig, 1e-10);
    }

    #[test]
    fn diagonal_matrix_sorted() {
        let a = DenseMatrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ])
        .unwrap();
        let eig = symmetric_eigen(&a).unwrap();
        assert_eq!(eig.eigenvalues, vec![1.0, 2.0, 3.0]);
        check_eigen(&a, &eig, 1e-12);
    }

    #[test]
    fn random_symmetric_eigen_residuals() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for n in [2usize, 4, 9, 16, 25] {
            let mut a = DenseMatrix::zeros(n, n);
            for i in 0..n {
                for j in 0..=i {
                    let v = rng.gen_range(-1.0..1.0);
                    a.set(i, j, v);
                    a.set(j, i, v);
                }
            }
            let eig = symmetric_eigen(&a).unwrap();
            check_eigen(&a, &eig, 1e-8);
            // Trace is preserved.
            let trace: f64 = (0..n).map(|i| a.get(i, i)).sum();
            let sum: f64 = eig.eigenvalues.iter().sum();
            assert!((trace - sum).abs() < 1e-8);
        }
    }

    #[test]
    fn tridiagonal_eigen_direct() {
        // T = [[1, 2], [2, 1]] has eigenvalues -1, 3.
        let eig = tridiagonal_eigen(vec![1.0, 1.0], vec![0.0, 2.0]).unwrap();
        assert!((eig.eigenvalues[0] + 1.0).abs() < 1e-12);
        assert!((eig.eigenvalues[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        let eig = tridiagonal_eigen(vec![], vec![]).unwrap();
        assert!(eig.eigenvalues.is_empty());
        let eig = tridiagonal_eigen(vec![4.0], vec![0.0]).unwrap();
        assert_eq!(eig.eigenvalues, vec![4.0]);
    }

    #[test]
    fn mismatched_off_len_rejected() {
        assert!(tridiagonal_eigen(vec![1.0, 2.0], vec![0.0]).is_err());
    }
}
