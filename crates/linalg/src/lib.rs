//! Dense and sparse symmetric linear algebra for the Spectral LPM reproduction.
//!
//! The ICDE 2003 paper reduces locality-preserving mapping to one numerical
//! problem: *find the second-smallest eigenvalue λ₂ and its eigenvector (the
//! Fiedler vector) of a graph Laplacian*. Mature sparse eigensolver crates
//! are not available in this environment, so this crate implements the whole
//! numerical substrate from scratch:
//!
//! * [`vector`] — primitive kernels on `&[f64]` slices (dot, axpy, norms,
//!   projections) shared by every solver.
//! * [`dense`] — a row-major dense matrix with symmetric helpers.
//! * [`sparse`] — a compressed-sparse-row (CSR) symmetric matrix, the format
//!   in which graph Laplacians are materialised.
//! * [`operator`] — the [`operator::LinearOperator`] abstraction that lets
//!   Lanczos and CG run on dense matrices, CSR matrices, or composed
//!   operators (shifted, projected, inverted) without copies.
//! * [`householder`] + [`tql`] — the classic dense symmetric eigensolver
//!   pipeline (tridiagonalise, then implicit-shift QL), used directly for
//!   small problems and to solve the Lanczos Ritz problem.
//! * [`jacobi`] — a cyclic Jacobi eigensolver used as an independent
//!   cross-check in tests.
//! * [`cg`] — conjugate gradients for SPD (optionally deflated) systems.
//! * [`lanczos`] — Lanczos iteration with full reorthogonalisation.
//! * [`multilevel`] — heavy-edge coarsening plus a coarsen–project–refine
//!   driver, the path that scales the Fiedler computation to 10⁵–10⁶
//!   vertices.
//! * [`parallel`] — a scoped worker pool with chunked `par_for` and
//!   deterministic tree-reduction primitives; the hot kernels (CSR matvec,
//!   dot/axpy, Jacobi smoothing, PCG) run on it with results bitwise
//!   identical to the serial path for every thread count.
//! * [`fiedler`] — the high-level entry point: compute the Fiedler pair of a
//!   Laplacian by shift-invert Lanczos (default), shifted direct Lanczos,
//!   the dense path, or the multilevel scheme.
//!
//! All algorithms are deterministic given the caller-supplied RNG seed.
//!
//! ```
//! use slpm_linalg::sparse::CsrMatrix;
//! use slpm_linalg::fiedler::{fiedler_pair, FiedlerOptions};
//!
//! // Path graph 0—1—2 Laplacian; its Fiedler value is 1.
//! let lap = CsrMatrix::from_triplets(3, 3, &[
//!     (0, 0, 1.0), (0, 1, -1.0),
//!     (1, 0, -1.0), (1, 1, 2.0), (1, 2, -1.0),
//!     (2, 1, -1.0), (2, 2, 1.0),
//! ]).unwrap();
//! let pair = fiedler_pair(&lap, &FiedlerOptions::default()).unwrap();
//! assert!((pair.lambda2 - 1.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bisection;
pub mod cg;
pub mod dense;
pub mod error;
pub mod fiedler;
pub mod householder;
pub mod jacobi;
pub mod lanczos;
pub mod multilevel;
pub mod operator;
pub mod parallel;
pub mod pcg;
pub mod power;
pub mod sparse;
pub mod tql;
pub mod vector;

pub use cg::{CgOptions, CgOutcome};
pub use dense::DenseMatrix;
pub use error::LinalgError;
pub use fiedler::{FiedlerMethod, FiedlerOptions, FiedlerPair};
pub use lanczos::{LanczosOptions, LanczosResult};
pub use multilevel::{Coarsening, Hierarchy, MultilevelOptions, Prolongation};
pub use operator::LinearOperator;
pub use parallel::{dispatch_counters, DispatchCounters, Pool, ScopeExecutor};
pub use sparse::CsrMatrix;
