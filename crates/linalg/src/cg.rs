//! Conjugate gradients for symmetric positive (semi-)definite systems.
//!
//! The shift-invert Fiedler path needs the action of the Laplacian
//! pseudo-inverse `L⁺`. On the orthogonal complement of the all-ones vector,
//! `L` of a connected graph is positive definite, so `L⁺ b` is exactly the
//! CG solution of `L x = b` when both `b` and every iterate are kept
//! centred. The [`CgOptions::deflate_mean`] flag performs that centring.

use crate::error::LinalgError;
use crate::operator::LinearOperator;
use crate::vector;

/// Options controlling a CG solve.
#[derive(Debug, Clone)]
pub struct CgOptions {
    /// Relative residual target: stop when `‖r‖ ≤ tol · ‖b‖`.
    pub tolerance: f64,
    /// Hard iteration cap; `None` defaults to `10 · n + 100`.
    pub max_iterations: Option<usize>,
    /// Project the right-hand side and every iterate onto the zero-mean
    /// subspace. Required when solving with a singular Laplacian whose
    /// kernel is the constant vector.
    pub deflate_mean: bool,
    /// Worker threads for the matvec/reduction kernels: `Some(t)` pins the
    /// count, `None` uses [`crate::parallel::default_threads`]. Honoured by
    /// the CSR-based solver ([`crate::pcg::solve_jacobi`]); the generic
    /// operator solver here stays serial (its operator may not be
    /// thread-safe to chunk). Thread count never changes results — the
    /// parallel kernels are bitwise identical to the serial ones.
    pub threads: Option<usize>,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            tolerance: 1e-12,
            max_iterations: None,
            deflate_mean: false,
            threads: None,
        }
    }
}

/// Diagnostics of a successful CG solve.
#[derive(Debug, Clone)]
pub struct CgOutcome {
    /// The solution vector.
    pub solution: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual `‖b − Ax‖ / ‖b‖`.
    pub relative_residual: f64,
}

/// Solve `A x = b` for SPD `A` (or PSD with mean-deflation) by conjugate
/// gradients.
pub fn solve<A: LinearOperator + ?Sized>(
    a: &A,
    b: &[f64],
    opts: &CgOptions,
) -> Result<CgOutcome, LinalgError> {
    let n = a.dim();
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            context: "cg::solve rhs",
            expected: n,
            found: b.len(),
        });
    }
    if !vector::all_finite(b) {
        return Err(LinalgError::NonFiniteInput {
            context: "cg::solve rhs",
        });
    }

    let max_iters = opts.max_iterations.unwrap_or(10 * n + 100);

    let mut rhs = b.to_vec();
    if opts.deflate_mean {
        vector::center(&mut rhs);
    }
    let b_norm = vector::norm2(&rhs);
    if b_norm == 0.0 {
        return Ok(CgOutcome {
            solution: vec![0.0; n],
            iterations: 0,
            relative_residual: 0.0,
        });
    }

    let mut x = vec![0.0; n];
    let mut r = rhs.clone();
    let mut p = r.clone();
    let mut ap = vec![0.0; n];
    let mut rs_old = vector::dot(&r, &r);

    for iter in 0..max_iters {
        a.apply(&p, &mut ap);
        if opts.deflate_mean {
            vector::center(&mut ap);
        }
        let curvature = vector::dot(&p, &ap);
        if curvature <= 0.0 {
            // A true SPD operator cannot produce this; either the matrix is
            // indefinite or we have fully converged within the deflated
            // subspace and are seeing round-off.
            let rel = vector::norm2(&r) / b_norm;
            if rel <= opts.tolerance.max(1e-10) {
                return Ok(CgOutcome {
                    solution: x,
                    iterations: iter,
                    relative_residual: rel,
                });
            }
            return Err(LinalgError::NotPositiveDefinite { curvature });
        }
        let alpha = rs_old / curvature;
        vector::axpy(alpha, &p, &mut x);
        vector::axpy(-alpha, &ap, &mut r);
        if opts.deflate_mean {
            vector::center(&mut r);
        }
        let rs_new = vector::dot(&r, &r);
        let rel = rs_new.sqrt() / b_norm;
        if rel <= opts.tolerance {
            if opts.deflate_mean {
                vector::center(&mut x);
            }
            return Ok(CgOutcome {
                solution: x,
                iterations: iter + 1,
                relative_residual: rel,
            });
        }
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }

    Err(LinalgError::NoConvergence {
        solver: "cg",
        iterations: max_iters,
        residual: rs_old.sqrt() / b_norm,
        tolerance: opts.tolerance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;
    use crate::sparse::CsrMatrix;

    #[test]
    fn solves_small_spd_system() {
        let a = DenseMatrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let b = [1.0, 2.0];
        let out = solve(&a, &b, &CgOptions::default()).unwrap();
        // Exact solution: x = (1/11, 7/11).
        assert!((out.solution[0] - 1.0 / 11.0).abs() < 1e-10);
        assert!((out.solution[1] - 7.0 / 11.0).abs() < 1e-10);
        assert!(out.relative_residual <= 1e-12);
    }

    #[test]
    fn identity_solves_in_one_iteration() {
        let a = DenseMatrix::identity(5);
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        let out = solve(&a, &b, &CgOptions::default()).unwrap();
        assert_eq!(out.iterations, 1);
        for i in 0..5 {
            assert!((out.solution[i] - b[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = DenseMatrix::identity(3);
        let out = solve(&a, &[0.0; 3], &CgOptions::default()).unwrap();
        assert_eq!(out.solution, vec![0.0; 3]);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn singular_laplacian_with_deflation() {
        // Path graph Laplacian (singular); with mean deflation CG computes
        // the pseudo-inverse action.
        let lap = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 1.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (1, 1, 2.0),
                (1, 2, -1.0),
                (2, 1, -1.0),
                (2, 2, 1.0),
            ],
        )
        .unwrap();
        let b = [1.0, 0.0, -1.0]; // already zero mean
        let opts = CgOptions {
            deflate_mean: true,
            ..CgOptions::default()
        };
        let out = solve(&lap, &b, &opts).unwrap();
        // Verify L x = b and mean(x) = 0.
        let lx = lap.matvec(&out.solution).unwrap();
        for i in 0..3 {
            assert!((lx[i] - b[i]).abs() < 1e-9);
        }
        assert!(vector::mean(&out.solution).abs() < 1e-12);
    }

    #[test]
    fn indefinite_matrix_detected() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, -1.0]]).unwrap();
        let err = solve(&a, &[0.0, 1.0], &CgOptions::default()).unwrap_err();
        assert!(matches!(err, LinalgError::NotPositiveDefinite { .. }));
    }

    #[test]
    fn dimension_mismatch_detected() {
        let a = DenseMatrix::identity(3);
        assert!(solve(&a, &[1.0], &CgOptions::default()).is_err());
    }

    #[test]
    fn non_finite_rhs_detected() {
        let a = DenseMatrix::identity(2);
        assert!(solve(&a, &[f64::NAN, 0.0], &CgOptions::default()).is_err());
    }

    #[test]
    fn iteration_cap_respected() {
        // A poorly conditioned system with an absurdly tight budget.
        let a = DenseMatrix::from_rows(&[
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1e-6, 0.0],
            vec![0.0, 0.0, 1e6],
        ])
        .unwrap();
        let opts = CgOptions {
            max_iterations: Some(1),
            tolerance: 1e-15,
            ..CgOptions::default()
        };
        let err = solve(&a, &[1.0, 1.0, 1.0], &opts).unwrap_err();
        assert!(matches!(err, LinalgError::NoConvergence { .. }));
    }

    #[test]
    fn random_spd_systems_solve() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for n in [4usize, 8, 16] {
            // A = MᵀM + I is SPD.
            let mut m = DenseMatrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    m.set(i, j, rng.gen_range(-1.0..1.0));
                }
            }
            let mut a = m.transpose().matmul(&m).unwrap();
            for i in 0..n {
                a.add_to(i, i, 1.0);
            }
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let out = solve(&a, &b, &CgOptions::default()).unwrap();
            let ax = a.matvec(&out.solution).unwrap();
            for i in 0..n {
                assert!((ax[i] - b[i]).abs() < 1e-8);
            }
        }
    }
}
