//! Compressed sparse row (CSR) matrices.
//!
//! Graph Laplacians of k-dimensional grids have ≤ 2k+1 nonzeros per row, so
//! CSR is the natural storage: one `matvec` is a single pass over two flat
//! arrays. Construction goes through a coordinate (triplet) accumulator that
//! sorts, merges duplicates, and drops explicit zeros, which is exactly what
//! building `L = D − A` from an edge list produces.

use crate::error::LinalgError;
use crate::operator::LinearOperator;

/// A sparse matrix in compressed-sparse-row format.
///
/// Invariants (enforced by all constructors):
/// * `row_ptr.len() == rows + 1`, `row_ptr[0] == 0`,
///   `row_ptr[rows] == col_idx.len() == values.len()`;
/// * within each row, column indices are strictly increasing;
/// * all column indices are `< cols`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build from coordinate triplets `(row, col, value)`.
    ///
    /// Duplicate coordinates are summed; entries that sum to exactly zero
    /// are kept (callers may rely on structural nonzeros), but triplets with
    /// value `0.0` are dropped up front.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self, LinalgError> {
        for &(r, c, v) in triplets {
            if r >= rows {
                return Err(LinalgError::DimensionMismatch {
                    context: "CsrMatrix::from_triplets row index",
                    expected: rows,
                    found: r,
                });
            }
            if c >= cols {
                return Err(LinalgError::DimensionMismatch {
                    context: "CsrMatrix::from_triplets col index",
                    expected: cols,
                    found: c,
                });
            }
            if !v.is_finite() {
                return Err(LinalgError::NonFiniteInput {
                    context: "CsrMatrix::from_triplets",
                });
            }
        }
        let mut sorted: Vec<(usize, usize, f64)> = triplets
            .iter()
            .copied()
            .filter(|&(_, _, v)| v != 0.0)
            .collect();
        sorted.sort_unstable_by_key(|a| (a.0, a.1));

        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx: Vec<usize> = Vec::with_capacity(sorted.len());
        let mut values: Vec<f64> = Vec::with_capacity(sorted.len());
        let mut last: Option<(usize, usize)> = None;
        for &(r, c, v) in &sorted {
            if last == Some((r, c)) {
                // Duplicate coordinate: accumulate into the previous entry.
                *values.last_mut().expect("duplicate implies prior entry") += v;
                continue;
            }
            col_idx.push(c);
            values.push(v);
            row_ptr[r + 1] += 1;
            last = Some((r, c));
        }
        // Turn per-row counts into cumulative offsets.
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Build a diagonal matrix from its diagonal entries.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let triplets: Vec<_> = diag.iter().enumerate().map(|(i, &v)| (i, i, v)).collect();
        // Constructing from in-range triplets cannot fail.
        Self::from_triplets(n, n, &triplets).expect("diagonal triplets are in range")
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterate over `(col, value)` pairs of row `i`.
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Value at `(i, j)` (0 if not stored). Binary search within the row.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        match self.col_idx[lo..hi].binary_search(&j) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// `y = A x` into a caller-provided buffer.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(y.len(), self.rows);
        self.matvec_rows_into(0, x, y);
    }

    /// The rows `row0 .. row0 + y.len()` of `A x`, written into `y`. This
    /// is the row-chunk kernel behind both the serial [`matvec_into`] and
    /// the pool's row-parallel matvec ([`crate::parallel::Pool::
    /// matvec_into`]); each output row is computed identically regardless
    /// of how the row range is split, so serial and parallel products are
    /// bitwise equal.
    ///
    /// [`matvec_into`]: CsrMatrix::matvec_into
    pub fn matvec_rows_into(&self, row0: usize, x: &[f64], y: &mut [f64]) {
        debug_assert!(row0 + y.len() <= self.rows);
        for (j, out) in y.iter_mut().enumerate() {
            let i = row0 + j;
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *out = acc;
        }
    }

    /// `y = A x` returning a fresh vector, with dimension checking.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                context: "CsrMatrix::matvec",
                expected: self.cols,
                found: x.len(),
            });
        }
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        Ok(y)
    }

    /// Densify (tests / tiny problems only).
    pub fn to_dense(&self) -> crate::dense::DenseMatrix {
        let mut m = crate::dense::DenseMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row_iter(i) {
                m.set(i, j, v);
            }
        }
        m
    }

    /// Largest `|a_ij − a_ji|` over stored entries; errors for non-square.
    pub fn max_asymmetry(&self) -> Result<f64, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let mut worst = 0.0f64;
        for i in 0..self.rows {
            for (j, v) in self.row_iter(i) {
                worst = worst.max((v - self.get(j, i)).abs());
            }
        }
        Ok(worst)
    }

    /// Verify symmetry within `tol`.
    pub fn require_symmetric(&self, tol: f64) -> Result<(), LinalgError> {
        let worst = self.max_asymmetry()?;
        if worst > tol {
            Err(LinalgError::NotSymmetric {
                max_asymmetry: worst,
            })
        } else {
            Ok(())
        }
    }

    /// Gershgorin upper bound on the spectrum of a symmetric matrix:
    /// `max_i (a_ii + Σ_{j≠i} |a_ij|)`. For a combinatorial Laplacian this
    /// equals twice the maximum degree, a cheap and safe shift for turning
    /// "smallest eigenvalue" problems into "largest eigenvalue" problems.
    pub fn gershgorin_upper_bound(&self) -> f64 {
        let mut bound = 0.0f64;
        for i in 0..self.rows {
            let mut radius = 0.0;
            let mut diag = 0.0;
            for (j, v) in self.row_iter(i) {
                if j == i {
                    diag = v;
                } else {
                    radius += v.abs();
                }
            }
            bound = bound.max(diag + radius);
        }
        bound
    }

    /// Row sums (for a Laplacian these must all be zero).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|i| self.row_iter(i).map(|(_, v)| v).sum())
            .collect()
    }
}

impl LinearOperator for CsrMatrix {
    fn dim(&self) -> usize {
        debug_assert_eq!(self.rows, self.cols);
        self.rows
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.matvec_into(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [2 -1 0; -1 2 -1; 0 -1 2]
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 2.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (1, 1, 2.0),
                (1, 2, -1.0),
                (2, 1, -1.0),
                (2, 2, 2.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_sorts_and_counts() {
        let m = sample();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.nnz(), 7);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(0, 2), 0.0);
    }

    #[test]
    fn duplicate_triplets_are_summed() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.5), (1, 1, 1.0)]).unwrap();
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn zero_triplets_are_dropped() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 0.0), (1, 0, 3.0)]).unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn out_of_range_triplets_rejected() {
        assert!(CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, &[(0, 2, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, &[(0, 0, f64::NAN)]).is_err());
    }

    #[test]
    fn empty_rows_are_fine() {
        let m = CsrMatrix::from_triplets(4, 4, &[(0, 0, 1.0), (3, 3, 1.0)]).unwrap();
        assert_eq!(m.row_iter(1).count(), 0);
        assert_eq!(m.row_iter(2).count(), 0);
        let y = m.matvec(&[1.0, 1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let d = m.to_dense();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(m.matvec(&x).unwrap(), d.matvec(&x).unwrap());
    }

    #[test]
    fn matvec_rejects_bad_length() {
        assert!(sample().matvec(&[1.0]).is_err());
    }

    #[test]
    fn diagonal_constructor() {
        let d = CsrMatrix::from_diagonal(&[1.0, 2.0, 3.0]);
        assert_eq!(d.get(1, 1), 2.0);
        assert_eq!(d.get(0, 1), 0.0);
        assert_eq!(d.nnz(), 3);
    }

    #[test]
    fn symmetry_and_gershgorin() {
        let m = sample();
        m.require_symmetric(0.0).unwrap();
        // Gershgorin bound of the tridiagonal [−1 2 −1] matrix is 2+2=4.
        assert_eq!(m.gershgorin_upper_bound(), 4.0);

        let asym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]).unwrap();
        assert!(asym.require_symmetric(1e-12).is_err());
    }

    #[test]
    fn row_sums_zero_for_laplacian() {
        let lap = CsrMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 1.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 1.0)],
        )
        .unwrap();
        for s in lap.row_sums() {
            assert!(s.abs() < 1e-15);
        }
    }

    #[test]
    fn operator_dim_and_apply() {
        let m = sample();
        assert_eq!(LinearOperator::dim(&m), 3);
        let mut y = vec![0.0; 3];
        m.apply(&[1.0, 0.0, 0.0], &mut y);
        assert_eq!(y, vec![2.0, -1.0, 0.0]);
    }
}
