//! Computing the Fiedler pair (λ₂, v₂) of a graph Laplacian.
//!
//! This is the numerical heart of Spectral LPM (step 3 of the paper's
//! pseudo-code): the second-smallest eigenvalue of `L = D − A` — the
//! *algebraic connectivity* (Fiedler 1973) — and its eigenvector, whose
//! component order is the spectral linear order.
//!
//! Three interchangeable strategies are provided:
//!
//! * [`FiedlerMethod::ShiftInvert`] (default) — Lanczos on the operator
//!   `x ↦ P L⁺ P x`, where the pseudo-inverse action is an inner CG solve
//!   and `P` deflates the constant kernel. The spectrum of that operator is
//!   `{1/λ₂ > 1/λ₃ > …}`, so the *largest* eigenvalue — the thing Lanczos
//!   finds fastest — maps straight to λ₂, with separation `λ₃/λ₂` that is
//!   excellent on grid graphs.
//! * [`FiedlerMethod::ShiftedDirect`] — Lanczos on `cI − L` with `c` a
//!   Gershgorin bound. No inner solves, but convergence degrades when λ₂ is
//!   clustered; used as an ablation baseline and a fallback.
//! * [`FiedlerMethod::Dense`] — Householder + QL on the materialised
//!   Laplacian, O(n³); the reference for tests and small graphs.

use crate::cg::CgOptions;
use crate::error::LinalgError;
use crate::lanczos::{self, LanczosOptions};
use crate::multilevel::{self, MultilevelOptions};
use crate::operator::{ones_direction, DeflatedOperator, LinearOperator, ShiftedOperator};
use crate::parallel::Pool;
use crate::pcg;
use crate::sparse::CsrMatrix;
use crate::tql;
use crate::vector;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy for the Fiedler computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FiedlerMethod {
    /// Lanczos on the deflated pseudo-inverse (inner CG solves). Fast
    /// convergence in iterations; each iteration costs one Laplacian solve.
    #[default]
    ShiftInvert,
    /// Lanczos on `cI − L` with a Gershgorin shift. Cheap iterations, more
    /// of them.
    ShiftedDirect,
    /// Dense Householder + QL (exact, O(n³)); only sensible for n ≲ 2000.
    Dense,
    /// Coarsen–project–refine multilevel scheme (see [`crate::multilevel`]):
    /// heavy-edge coarsening to a small graph, dense coarse solve, then
    /// block inverse-iteration refinement per level. The only path that is
    /// practical at 10⁵–10⁶ vertices.
    Multilevel,
}

/// Options for [`fiedler_pair`].
#[derive(Debug, Clone)]
pub struct FiedlerOptions {
    /// Strategy to use.
    pub method: FiedlerMethod,
    /// Relative residual tolerance on the eigenpair.
    pub tolerance: f64,
    /// RNG seed for Lanczos start vectors.
    pub seed: u64,
    /// Iteration/subspace cap forwarded to Lanczos (`None` = default).
    pub max_subspace: Option<usize>,
    /// Worker threads for the parallel kernels (inner PCG solves, CSR
    /// matvec, multilevel smoothing/refinement): `Some(t)` pins the count,
    /// `None` defers to [`MultilevelOptions::threads`] and ultimately to
    /// [`crate::parallel::default_threads`] (the `SLPM_THREADS` env
    /// override, else the machine's available parallelism). Thread count
    /// never changes results: every parallel reduction uses the
    /// fixed-chunk deterministic order of [`crate::parallel`].
    pub threads: Option<usize>,
    /// Tuning knobs for [`FiedlerMethod::Multilevel`] (ignored by the other
    /// methods).
    pub multilevel: MultilevelOptions,
}

impl Default for FiedlerOptions {
    fn default() -> Self {
        FiedlerOptions {
            method: FiedlerMethod::ShiftInvert,
            tolerance: 1e-9,
            seed: 0xF1ED_1EB2,
            max_subspace: None,
            threads: None,
            multilevel: MultilevelOptions::default(),
        }
    }
}

impl FiedlerOptions {
    /// The multilevel knobs with the top-level [`FiedlerOptions::threads`]
    /// override applied (an explicit top-level count wins; otherwise the
    /// multilevel knobs' own setting stands).
    fn resolved_multilevel(&self) -> MultilevelOptions {
        let mut m = self.multilevel.clone();
        if self.threads.is_some() {
            m.threads = self.threads;
        }
        m
    }
}

/// A computed Fiedler pair plus diagnostics.
#[derive(Debug, Clone)]
pub struct FiedlerPair {
    /// The algebraic connectivity λ₂ ≥ 0 (0 iff the graph is disconnected).
    pub lambda2: f64,
    /// Unit-norm Fiedler vector, mean-centred and sign-canonicalised
    /// ([`vector::canonicalize_sign`]).
    pub vector: Vec<f64>,
    /// Residual `‖L v − λ₂ v‖` measured against the *original* Laplacian.
    pub residual: f64,
    /// Which method produced the answer.
    pub method: FiedlerMethod,
}

/// The pseudo-inverse action `y = P L⁺ P x` implemented by conjugate
/// gradients, exposed as a [`LinearOperator`] so Lanczos can consume it.
pub struct LaplacianPseudoInverse<'a> {
    laplacian: &'a CsrMatrix,
    cg_opts: CgOptions,
    pool: Pool<'a>,
}

impl<'a> LaplacianPseudoInverse<'a> {
    /// Wrap a Laplacian. `tolerance` is the inner solve tolerance, which
    /// must be tighter than the outer Lanczos tolerance for residuals to
    /// settle. The requested tolerance is floored at the round-off level a
    /// conjugate-gradient solve can actually attain on this matrix — scaled
    /// by the diagonal spread, a cheap condition-number proxy — so large
    /// weighted Laplacians converge instead of spinning to the iteration
    /// cap on an unreachable fixed target.
    pub fn new(laplacian: &'a CsrMatrix, tolerance: f64) -> Self {
        Self::with_threads(laplacian, tolerance, None)
    }

    /// [`LaplacianPseudoInverse::new`] with an explicit thread knob for
    /// the inner PCG solves (`None` = machine default).
    pub fn with_threads(laplacian: &'a CsrMatrix, tolerance: f64, threads: Option<usize>) -> Self {
        // xtask:allow(adhoc-pool): compatibility constructor — resolves a
        // thread count into a scoped pool; pooled callers use with_pool.
        Self::with_pool(laplacian, tolerance, Pool::new(threads))
    }

    /// [`LaplacianPseudoInverse::new`] on a caller-supplied [`Pool`]: every
    /// inner PCG solve schedules its kernels onto that pool instead of
    /// opening a fresh scoped pool per `apply` call.
    pub fn with_pool(laplacian: &'a CsrMatrix, tolerance: f64, pool: Pool<'a>) -> Self {
        let n = laplacian.rows();
        let mut max_d = 0.0f64;
        let mut min_d = f64::INFINITY;
        for i in 0..n {
            let d = laplacian.get(i, i);
            max_d = max_d.max(d);
            min_d = min_d.min(d.abs().max(f64::MIN_POSITIVE));
        }
        let spread = if max_d > 0.0 { max_d / min_d } else { 1.0 };
        let floor = f64::EPSILON * 16.0 * spread.sqrt();
        LaplacianPseudoInverse {
            laplacian,
            cg_opts: CgOptions {
                tolerance: tolerance.max(floor),
                max_iterations: None,
                deflate_mean: true,
                threads: None,
            },
            pool,
        }
    }
}

impl LinearOperator for LaplacianPseudoInverse<'_> {
    fn dim(&self) -> usize {
        self.laplacian.rows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        // Jacobi-PCG with mean deflation computes L⁺ applied to the centred
        // input; the diagonal preconditioner keeps the iteration count flat
        // on Section 4's weighted graphs whose degrees vary by orders of
        // magnitude.
        let out = pcg::solve_jacobi_on(self.laplacian, x, &self.cg_opts, self.pool)
            .expect("inner PCG solve failed: Laplacian not PSD or graph disconnected");
        y.copy_from_slice(&out.solution);
    }
}

/// Shared precondition check: symmetric with zero row sums — i.e. actually
/// a combinatorial Laplacian. Every public entry point in this module goes
/// through this, so an adjacency matrix (or a shifted Laplacian) passed by
/// mistake fails loudly instead of yielding a meaningless "eigenpair".
fn require_laplacian(laplacian: &CsrMatrix) -> Result<(), LinalgError> {
    // Both the symmetry and the zero-row-sum tolerances are scaled to the
    // matrix magnitude: weighted affinity Laplacians with large
    // degrees/weights accumulate round-off proportional to their entries,
    // and a fixed absolute bound would reject valid library-built inputs
    // at scale.
    let scale = laplacian.gershgorin_upper_bound().max(1.0);
    laplacian.require_symmetric(1e-9 * scale)?;
    let worst_row_sum = laplacian
        .row_sums()
        .into_iter()
        .fold(0.0f64, |m, s| m.max(s.abs()));
    if worst_row_sum > 1e-9 * scale {
        return Err(LinalgError::NonFiniteInput {
            context: "matrix is not a Laplacian (nonzero row sums)",
        });
    }
    Ok(())
}

/// Compute the Fiedler pair of a combinatorial Laplacian.
///
/// Preconditions (checked): `laplacian` is square, symmetric, has zero row
/// sums, and represents a **connected** graph — disconnected graphs have
/// λ₂ = 0 and no meaningful spectral order; connectivity must be verified by
/// the caller (the graph layer does) and is re-checked here cheaply via the
/// computed λ₂.
pub fn fiedler_pair(
    laplacian: &CsrMatrix,
    opts: &FiedlerOptions,
) -> Result<FiedlerPair, LinalgError> {
    // xtask:allow(adhoc-pool): compatibility entry point — resolves the
    // options' thread knobs into a scoped pool; pooled callers use
    // fiedler_pair_on instead.
    let pool = Pool::new(resolve_threads(opts));
    fiedler_pair_on(laplacian, opts, &pool)
}

/// The thread count the compatibility entry points historically honoured:
/// the top-level knob, falling back to the multilevel knob when the
/// multilevel method would have consulted it.
fn resolve_threads(opts: &FiedlerOptions) -> Option<usize> {
    match opts.method {
        FiedlerMethod::Multilevel => opts.resolved_multilevel().threads,
        _ => opts.threads,
    }
}

/// [`fiedler_pair`] on a caller-supplied [`Pool`] — the path the CLI and
/// recursive bisection use so every kernel down the call chain (inner PCG
/// solves, multilevel coarsening/smoothing/refinement, CSR matvec)
/// schedules onto one persistent executor instead of paying a scoped
/// spawn+join per kernel call. The thread knobs inside `opts` are ignored;
/// the pool decides.
pub fn fiedler_pair_on(
    laplacian: &CsrMatrix,
    opts: &FiedlerOptions,
    pool: &Pool<'_>,
) -> Result<FiedlerPair, LinalgError> {
    let n = laplacian.rows();
    if n < 2 {
        return Err(LinalgError::ProblemTooSmall {
            dimension: n,
            minimum: 2,
        });
    }
    require_laplacian(laplacian)?;

    let (lambda2, mut v) = match opts.method {
        FiedlerMethod::Dense => dense_fiedler(laplacian)?,
        FiedlerMethod::ShiftedDirect => shifted_direct_fiedler(laplacian, opts)?,
        FiedlerMethod::ShiftInvert => shift_invert_fiedler(laplacian, opts, pool)?,
        FiedlerMethod::Multilevel => multilevel::fiedler_pair_on(
            laplacian,
            opts.tolerance,
            opts.seed,
            &opts.resolved_multilevel(),
            pool,
        )?,
    };

    // Normalise the representative: zero mean, unit norm, canonical sign.
    vector::center(&mut v);
    if vector::normalize(&mut v) == 0.0 {
        return Err(LinalgError::NonFiniteInput {
            context: "fiedler_pair: eigenvector collapsed (disconnected graph?)",
        });
    }
    vector::canonicalize_sign(&mut v);

    // True residual against L.
    let lv = laplacian.matvec(&v)?;
    let mut r = lv;
    vector::axpy(-lambda2, &v, &mut r);
    let residual = vector::norm2(&r);

    Ok(FiedlerPair {
        lambda2,
        vector: v,
        residual,
        method: opts.method,
    })
}

/// The `k` smallest **nonzero** eigenpairs of a connected Laplacian,
/// ascending: `(λ₂, v₂), (λ₃, v₃), …` — used by the multi-vector spectral
/// order (tie-breaking on degenerate grids) and by diagnostics.
///
/// Honours `opts.method`: dense QL, shifted-direct Lanczos on `cI − L`, or
/// (default) shift-invert Lanczos requesting `k` Ritz pairs of the
/// deflated pseudo-inverse (whose top-k eigenvalues are `1/λ₂ ≥ … ≥
/// 1/λ_{k+1}`), with Rayleigh-quotient refinement of each eigenvalue.
pub fn smallest_nonzero_eigenpairs(
    laplacian: &CsrMatrix,
    k: usize,
    opts: &FiedlerOptions,
) -> Result<Vec<(f64, Vec<f64>)>, LinalgError> {
    // xtask:allow(adhoc-pool): compatibility entry point — resolves the
    // options' thread knobs into a scoped pool; pooled callers use
    // smallest_nonzero_eigenpairs_on instead.
    let pool = Pool::new(resolve_threads(opts));
    smallest_nonzero_eigenpairs_on(laplacian, k, opts, &pool)
}

/// [`smallest_nonzero_eigenpairs`] on a caller-supplied [`Pool`]. The
/// thread knobs inside `opts` are ignored; the pool decides.
pub fn smallest_nonzero_eigenpairs_on(
    laplacian: &CsrMatrix,
    k: usize,
    opts: &FiedlerOptions,
    pool: &Pool<'_>,
) -> Result<Vec<(f64, Vec<f64>)>, LinalgError> {
    let n = laplacian.rows();
    if n < k + 1 {
        return Err(LinalgError::ProblemTooSmall {
            dimension: n,
            minimum: k + 1,
        });
    }
    require_laplacian(laplacian)?;
    if k == 0 {
        return Ok(vec![]);
    }
    if opts.method == FiedlerMethod::Dense {
        return multilevel::dense_smallest(laplacian, k);
    }
    if opts.method == FiedlerMethod::Multilevel {
        // The multilevel driver already returns canonical-form pairs,
        // ascending, with Rayleigh-refined eigenvalues.
        return multilevel::smallest_nonzero_eigenpairs_on(
            laplacian,
            k,
            opts.tolerance,
            opts.seed,
            &opts.resolved_multilevel(),
            pool,
        );
    }
    let res = match opts.method {
        FiedlerMethod::Dense | FiedlerMethod::Multilevel => unreachable!("handled above"),
        // Top-k of cI − L (ones deflated) are c − λ₂ ≥ … ≥ c − λ_{k+1}.
        FiedlerMethod::ShiftedDirect => {
            let c = laplacian.gershgorin_upper_bound() + 1.0;
            let shifted = ShiftedOperator::new(laplacian, c, -1.0);
            let lopts = lanczos::LanczosOptions {
                num_eigenpairs: k,
                tolerance: opts.tolerance,
                seed: opts.seed,
                max_subspace: Some(opts.max_subspace.unwrap_or(n.min(300))),
                deflation: vec![ones_direction(n)],
            };
            lanczos::largest_eigenpairs(&shifted, &lopts)?
        }
        // Top-k of the deflated pseudo-inverse are 1/λ₂ ≥ … ≥ 1/λ_{k+1}.
        FiedlerMethod::ShiftInvert => {
            let inner_tol = (opts.tolerance * 1e-3).max(1e-14);
            let pinv = LaplacianPseudoInverse::with_pool(laplacian, inner_tol, *pool);
            let ones = vec![ones_direction(n)];
            let deflated = DeflatedOperator::new(&pinv, &ones);
            let lopts = lanczos::LanczosOptions {
                num_eigenpairs: k,
                tolerance: opts.tolerance,
                seed: opts.seed,
                max_subspace: Some(opts.max_subspace.unwrap_or((n - 1).min(40 + 8 * k))),
                deflation: vec![ones_direction(n)],
            };
            lanczos::largest_eigenpairs(&deflated, &lopts)?
        }
    };
    // Ritz pairs come in the transformed operator's descending order, i.e.
    // ascending in λ — refine eigenvalues against L, normalise
    // representatives, and sort to be safe.
    let mut out = Vec::with_capacity(k);
    for mut v in res.eigenvectors {
        vector::center(&mut v);
        if vector::normalize(&mut v) == 0.0 {
            return Err(LinalgError::NonFiniteInput {
                context: "smallest_nonzero_eigenpairs: collapsed Ritz vector",
            });
        }
        vector::canonicalize_sign(&mut v);
        let lambda = laplacian.rayleigh_quotient(&v);
        out.push((lambda, v));
    }
    out.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite eigenvalues"));
    Ok(out)
}

/// Relative gap below which λ₂ and λ₃ are treated as one degenerate
/// cluster by [`fiedler_pair_balanced`].
const DEGENERACY_REL_TOL: f64 = 1e-6;

/// [`fiedler_pair`] with a canonical representative when λ₂ is degenerate.
///
/// On symmetric inputs (square grids, hypercubes) λ₂ has multiplicity > 1
/// and *any* unit vector in its eigenspace is an optimal solution of the
/// spectral relaxation. A Krylov solver then returns an arbitrary,
/// start-vector-dependent element of that space — in the worst case a pure
/// axis mode, which collapses the spectral order onto a row-major sweep and
/// destroys the fairness property of paper Figure 5b. This entry point
/// detects the cluster (λ ≤ λ₂·(1 + 1e-6)), and replaces the solver's
/// representative by the projection of one fixed, seed-deterministic
/// direction onto the whole eigenspace. That choice is independent of the
/// basis the solver happened to produce, reproducible across methods, and
/// generically mixes every degenerate mode.
///
/// The probe window is capped at 8 eigenpairs: clusters of multiplicity
/// above 8 (complete-graph-like spectra, hypercubes beyond 8 dimensions)
/// get the projection onto the first 8 cluster vectors the solver found,
/// which is still deterministic per method but no longer
/// method-independent.
///
/// Non-degenerate inputs get the same canonical-form pair [`fiedler_pair`]
/// computes (centred, unit-norm, sign-canonicalised Ritz vector), taken
/// straight from the spectrum probe without a second solve.
pub fn fiedler_pair_balanced(
    laplacian: &CsrMatrix,
    opts: &FiedlerOptions,
) -> Result<FiedlerPair, LinalgError> {
    // xtask:allow(adhoc-pool): compatibility entry point — resolves the
    // options' thread knobs into a scoped pool; pooled callers use
    // fiedler_pair_balanced_on instead.
    let pool = Pool::new(resolve_threads(opts));
    fiedler_pair_balanced_on(laplacian, opts, &pool)
}

/// [`fiedler_pair_balanced`] on a caller-supplied [`Pool`]. The thread
/// knobs inside `opts` are ignored; the pool decides.
pub fn fiedler_pair_balanced_on(
    laplacian: &CsrMatrix,
    opts: &FiedlerOptions,
    pool: &Pool<'_>,
) -> Result<FiedlerPair, LinalgError> {
    let n = laplacian.rows();
    if n < 3 {
        return fiedler_pair_on(laplacian, opts, pool);
    }

    // Probe the bottom of the spectrum, widening until the cluster around
    // λ₂ is fully inside the window (or the window hits its cap). Starting
    // at k = 3 resolves the most common degenerate input — a square 2-D
    // grid, multiplicity exactly 2 — in a single solve.
    let max_k = (n - 1).min(8);
    let mut k = 3.min(max_k);
    let mut pairs = smallest_nonzero_eigenpairs_on(laplacian, k, opts, pool)?;
    let cluster_len = |pairs: &[(f64, Vec<f64>)]| {
        let lambda2 = pairs[0].0;
        pairs
            .iter()
            .take_while(|(l, _)| *l <= lambda2 * (1.0 + DEGENERACY_REL_TOL) + 1e-12)
            .count()
    };
    let mut m = cluster_len(&pairs);
    while m == pairs.len() && k < max_k {
        k = (k * 2).min(max_k);
        pairs = smallest_nonzero_eigenpairs_on(laplacian, k, opts, pool)?;
        m = cluster_len(&pairs);
    }
    if m <= 1 {
        // λ₂ is simple: pairs[0] already *is* the (centred, normalised,
        // sign-canonicalised) Fiedler pair — re-running the solver via
        // `fiedler_pair` would just repeat the work.
        let (_, v) = pairs.swap_remove(0);
        let lambda2 = laplacian.rayleigh_quotient(&v);
        let mut r = laplacian.matvec(&v)?;
        vector::axpy(-lambda2, &v, &mut r);
        let residual = vector::norm2(&r);
        return Ok(FiedlerPair {
            lambda2,
            vector: v,
            residual,
            method: opts.method,
        });
    }

    // Orthonormalise the cluster's Ritz vectors (they are already close).
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m);
    for (_, v) in pairs.into_iter().take(m) {
        let mut w = v;
        for b in &basis {
            vector::project_out(b, &mut w);
        }
        if vector::normalize(&mut w) > 1e-8 {
            basis.push(w);
        }
    }

    // Canonical representative: project a fixed generic direction onto the
    // eigenspace.
    let mut probe = vec![0.0; n];
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0xBA1A_9CED_0000_0000);
    vector::fill_random(&mut rng, &mut probe);
    let mut v = vec![0.0; n];
    for b in &basis {
        let c = vector::dot(b, &probe);
        vector::axpy(c, b, &mut v);
    }
    vector::center(&mut v);
    if vector::normalize(&mut v) == 0.0 {
        // The probe was (numerically) orthogonal to the eigenspace; keep
        // the solver's representative rather than fail.
        v = basis.swap_remove(0);
    }
    vector::canonicalize_sign(&mut v);

    let lambda2 = laplacian.rayleigh_quotient(&v);
    let mut r = laplacian.matvec(&v)?;
    vector::axpy(-lambda2, &v, &mut r);
    let residual = vector::norm2(&r);

    Ok(FiedlerPair {
        lambda2,
        vector: v,
        residual,
        method: opts.method,
    })
}

fn dense_fiedler(laplacian: &CsrMatrix) -> Result<(f64, Vec<f64>), LinalgError> {
    let eig = tql::symmetric_eigen(&laplacian.to_dense())?;
    Ok((eig.eigenvalues[1], eig.eigenvector(1)))
}

fn shifted_direct_fiedler(
    laplacian: &CsrMatrix,
    opts: &FiedlerOptions,
) -> Result<(f64, Vec<f64>), LinalgError> {
    let n = laplacian.rows();
    let c = laplacian.gershgorin_upper_bound() + 1.0;
    let shifted = ShiftedOperator::new(laplacian, c, -1.0);
    let lopts = LanczosOptions {
        num_eigenpairs: 1,
        tolerance: opts.tolerance,
        seed: opts.seed,
        max_subspace: Some(opts.max_subspace.unwrap_or(n.min(300))),
        deflation: vec![ones_direction(n)],
    };
    let (mu, v) = lanczos::largest_eigenpair(&shifted, &lopts)?;
    Ok((c - mu, v))
}

fn shift_invert_fiedler(
    laplacian: &CsrMatrix,
    opts: &FiedlerOptions,
    pool: &Pool<'_>,
) -> Result<(f64, Vec<f64>), LinalgError> {
    let n = laplacian.rows();
    let inner_tol = (opts.tolerance * 1e-3).max(1e-14);
    let pinv = LaplacianPseudoInverse::with_pool(laplacian, inner_tol, *pool);
    let ones = vec![ones_direction(n)];
    let deflated = DeflatedOperator::new(&pinv, &ones);
    let lopts = LanczosOptions {
        num_eigenpairs: 1,
        tolerance: opts.tolerance,
        seed: opts.seed,
        max_subspace: Some(opts.max_subspace.unwrap_or(n.min(80))),
        deflation: vec![ones_direction(n)],
    };
    let (theta, v) = lanczos::largest_eigenpair(&deflated, &lopts)?;
    if theta <= 0.0 {
        return Err(LinalgError::NotPositiveDefinite { curvature: theta });
    }
    // Refine λ₂ with a Rayleigh quotient against the true Laplacian (the
    // Lanczos value 1/θ inherits inner-solve error).
    let lambda2 = laplacian.rayleigh_quotient(&v);
    Ok((lambda2, v))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_laplacian(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            let deg = if i == 0 || i == n - 1 { 1.0 } else { 2.0 };
            t.push((i, i, deg));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, &t).unwrap()
    }

    fn cycle_laplacian(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            let j = (i + 1) % n;
            t.push((i, j, -1.0));
            t.push((j, i, -1.0));
        }
        CsrMatrix::from_triplets(n, n, &t).unwrap()
    }

    fn expected_path_lambda2(n: usize) -> f64 {
        4.0 * (std::f64::consts::PI / (2.0 * n as f64)).sin().powi(2)
    }

    #[test]
    fn all_methods_agree_on_path() {
        let n = 16;
        let lap = path_laplacian(n);
        let expect = expected_path_lambda2(n);
        for method in [
            FiedlerMethod::Dense,
            FiedlerMethod::ShiftedDirect,
            FiedlerMethod::ShiftInvert,
        ] {
            let opts = FiedlerOptions {
                method,
                ..Default::default()
            };
            let pair = fiedler_pair(&lap, &opts).unwrap();
            assert!(
                (pair.lambda2 - expect).abs() < 1e-7,
                "{method:?}: lambda2 {} vs {}",
                pair.lambda2,
                expect
            );
            assert!(
                pair.residual < 1e-6,
                "{method:?}: residual {}",
                pair.residual
            );
        }
    }

    #[test]
    fn balanced_matches_plain_on_simple_spectrum() {
        // λ₂ of a path is simple, so the balanced entry point must return
        // the same pair as fiedler_pair (fast path, no second solve).
        let lap = path_laplacian(16);
        for method in [
            FiedlerMethod::Dense,
            FiedlerMethod::ShiftedDirect,
            FiedlerMethod::ShiftInvert,
        ] {
            let opts = FiedlerOptions {
                method,
                ..Default::default()
            };
            let plain = fiedler_pair(&lap, &opts).unwrap();
            let balanced = fiedler_pair_balanced(&lap, &opts).unwrap();
            assert!(
                (plain.lambda2 - balanced.lambda2).abs() < 1e-8,
                "{method:?}: {} vs {}",
                plain.lambda2,
                balanced.lambda2
            );
            assert_eq!(balanced.method, method);
            let diff: f64 = plain
                .vector
                .iter()
                .zip(&balanced.vector)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(diff < 1e-6, "{method:?}: vectors differ by {diff:.2e}");
        }
    }

    #[test]
    fn balanced_rejects_non_laplacian() {
        // Adjacency-like symmetric matrix (nonzero row sums) must be
        // rejected by the balanced entry point too, not just fiedler_pair.
        let adj =
            CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)])
                .unwrap();
        assert!(fiedler_pair(&adj, &FiedlerOptions::default()).is_err());
        assert!(fiedler_pair_balanced(&adj, &FiedlerOptions::default()).is_err());
    }

    #[test]
    fn multi_pair_honours_shifted_direct_method() {
        // The k-pair probe must agree with the dense reference under every
        // method, including ShiftedDirect (previously silently remapped to
        // shift-invert).
        let lap = path_laplacian(12);
        let dense = smallest_nonzero_eigenpairs(
            &lap,
            3,
            &FiedlerOptions {
                method: FiedlerMethod::Dense,
                ..Default::default()
            },
        )
        .unwrap();
        let sd = smallest_nonzero_eigenpairs(
            &lap,
            3,
            &FiedlerOptions {
                method: FiedlerMethod::ShiftedDirect,
                ..Default::default()
            },
        )
        .unwrap();
        for ((ld, _), (ls, _)) in dense.iter().zip(&sd) {
            assert!((ld - ls).abs() < 1e-6, "{ld} vs {ls}");
        }
    }

    #[test]
    fn fiedler_vector_of_path_is_monotone() {
        // The path's Fiedler vector is cos(π(i+0.5)/n): strictly monotone,
        // so the spectral order recovers the path order (or its reverse).
        let lap = path_laplacian(10);
        let pair = fiedler_pair(&lap, &FiedlerOptions::default()).unwrap();
        let v = &pair.vector;
        let increasing = v.windows(2).all(|w| w[1] > w[0]);
        let decreasing = v.windows(2).all(|w| w[1] < w[0]);
        assert!(increasing || decreasing, "vector {:?} not monotone", v);
    }

    #[test]
    fn cycle_lambda2_known_value() {
        // Cycle C_n: λ₂ = 2 − 2cos(2π/n), multiplicity 2.
        let n = 12;
        let lap = cycle_laplacian(n);
        let expect = 2.0 - 2.0 * (2.0 * std::f64::consts::PI / n as f64).cos();
        for method in [FiedlerMethod::Dense, FiedlerMethod::ShiftInvert] {
            let pair = fiedler_pair(
                &lap,
                &FiedlerOptions {
                    method,
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(
                (pair.lambda2 - expect).abs() < 1e-7,
                "{method:?}: {} vs {expect}",
                pair.lambda2
            );
            assert!(pair.residual < 1e-6);
        }
    }

    #[test]
    fn vector_is_centered_unit_sign_canonical() {
        let lap = path_laplacian(9);
        let pair = fiedler_pair(&lap, &FiedlerOptions::default()).unwrap();
        assert!(vector::mean(&pair.vector).abs() < 1e-10);
        assert!((vector::norm2(&pair.vector) - 1.0).abs() < 1e-10);
        let mut copy = pair.vector.clone();
        vector::canonicalize_sign(&mut copy);
        assert_eq!(copy, pair.vector);
    }

    #[test]
    fn complete_graph_lambda2_is_n() {
        // K_n has λ₂ = n.
        let n = 6;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, (n - 1) as f64));
            for j in 0..n {
                if i != j {
                    t.push((i, j, -1.0));
                }
            }
        }
        let lap = CsrMatrix::from_triplets(n, n, &t).unwrap();
        let pair = fiedler_pair(&lap, &FiedlerOptions::default()).unwrap();
        assert!((pair.lambda2 - n as f64).abs() < 1e-7);
    }

    #[test]
    fn rejects_tiny_problems() {
        let lap = CsrMatrix::from_diagonal(&[0.0]);
        assert!(matches!(
            fiedler_pair(&lap, &FiedlerOptions::default()),
            Err(LinalgError::ProblemTooSmall { .. })
        ));
    }

    #[test]
    fn rejects_non_laplacian() {
        let m = CsrMatrix::from_diagonal(&[1.0, 2.0, 3.0]);
        assert!(fiedler_pair(&m, &FiedlerOptions::default()).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let lap = path_laplacian(20);
        let a = fiedler_pair(&lap, &FiedlerOptions::default()).unwrap();
        let b = fiedler_pair(&lap, &FiedlerOptions::default()).unwrap();
        assert_eq!(a.vector, b.vector);
        assert_eq!(a.lambda2, b.lambda2);
    }

    #[test]
    fn smallest_nonzero_pairs_match_dense() {
        let n = 14;
        let lap = path_laplacian(n);
        let iterative = smallest_nonzero_eigenpairs(&lap, 3, &FiedlerOptions::default()).unwrap();
        let dense = smallest_nonzero_eigenpairs(
            &lap,
            3,
            &FiedlerOptions {
                method: FiedlerMethod::Dense,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(iterative.len(), 3);
        for i in 0..3 {
            let expect = 4.0
                * (std::f64::consts::PI * (i + 1) as f64 / (2.0 * n as f64))
                    .sin()
                    .powi(2);
            assert!(
                (iterative[i].0 - expect).abs() < 1e-7,
                "iterative pair {i}: {} vs {expect}",
                iterative[i].0
            );
            assert!((dense[i].0 - expect).abs() < 1e-8);
            // Both representatives are genuine eigenvectors.
            for (lambda, v) in [&iterative[i], &dense[i]] {
                let lv = lap.matvec(v).unwrap();
                let mut r = lv;
                vector::axpy(-lambda, v, &mut r);
                assert!(vector::norm2(&r) < 1e-6, "pair {i} residual");
            }
        }
        // Ascending order.
        assert!(iterative[0].0 <= iterative[1].0);
        assert!(iterative[1].0 <= iterative[2].0);
    }

    #[test]
    fn smallest_nonzero_pairs_edge_cases() {
        let lap = path_laplacian(4);
        assert!(
            smallest_nonzero_eigenpairs(&lap, 0, &FiedlerOptions::default())
                .unwrap()
                .is_empty()
        );
        assert!(smallest_nonzero_eigenpairs(&lap, 4, &FiedlerOptions::default()).is_err());
    }

    #[test]
    fn weighted_laplacian_supported() {
        // Two nodes joined by weight-5 edge: L = [[5,-5],[-5,5]], λ₂ = 10.
        let lap = CsrMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 5.0), (0, 1, -5.0), (1, 0, -5.0), (1, 1, 5.0)],
        )
        .unwrap();
        let pair = fiedler_pair(
            &lap,
            &FiedlerOptions {
                method: FiedlerMethod::Dense,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((pair.lambda2 - 10.0).abs() < 1e-9);
    }
}
