//! Lanczos iteration with full reorthogonalisation.
//!
//! Given a symmetric operator `A`, Lanczos builds an orthonormal Krylov
//! basis `Q` and a tridiagonal `T = QᵀAQ` whose extremal eigenvalues
//! converge rapidly to the extremal eigenvalues of `A`. We keep the entire
//! basis and reorthogonalise every new vector against it ("full
//! reorthogonalisation"), trading memory for the numerical robustness
//! textbooks recommend for small-to-medium problems — exactly our regime
//! (grids of 10² – 10⁵ vertices).
//!
//! The Fiedler driver composes this with either a shift (`cI − L`) or a
//! shift-invert operator (`P L⁺ P` via CG) and a deflation basis for the
//! known constant-vector kernel.

use crate::dense::DenseMatrix;
use crate::error::LinalgError;
use crate::operator::LinearOperator;
use crate::tql;
use crate::vector;
use rand::SeedableRng;

/// Options controlling a Lanczos run.
#[derive(Debug, Clone)]
pub struct LanczosOptions {
    /// Number of extremal (largest) eigenpairs requested.
    pub num_eigenpairs: usize,
    /// Maximum Krylov dimension; `None` defaults to `min(n, max(4k+20, 50))`.
    pub max_subspace: Option<usize>,
    /// Residual tolerance on each requested Ritz pair, relative to the
    /// largest Ritz value magnitude.
    pub tolerance: f64,
    /// Seed for the random start vector (deterministic runs).
    pub seed: u64,
    /// Optional orthonormal deflation basis: the iteration is confined to
    /// the orthogonal complement of these directions.
    pub deflation: Vec<Vec<f64>>,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions {
            num_eigenpairs: 1,
            max_subspace: None,
            tolerance: 1e-10,
            seed: 0x5eed_1a2b,
            deflation: Vec::new(),
        }
    }
}

/// Converged Ritz pairs, sorted by eigenvalue **descending** (Lanczos is run
/// for the top of the spectrum; callers flip signs/shifts as needed).
#[derive(Debug, Clone)]
pub struct LanczosResult {
    /// Ritz values, descending.
    pub eigenvalues: Vec<f64>,
    /// Ritz vectors matching `eigenvalues` (each of length `n`, unit norm).
    pub eigenvectors: Vec<Vec<f64>>,
    /// Krylov dimension actually used.
    pub subspace_dim: usize,
    /// Residual norms `‖A v − λ v‖` for each returned pair.
    pub residuals: Vec<f64>,
}

/// Run Lanczos on `a`, returning the `num_eigenpairs` largest eigenpairs.
pub fn largest_eigenpairs<A: LinearOperator + ?Sized>(
    a: &A,
    opts: &LanczosOptions,
) -> Result<LanczosResult, LinalgError> {
    let n = a.dim();
    let k = opts.num_eigenpairs;
    if k == 0 || n == 0 {
        return Ok(LanczosResult {
            eigenvalues: vec![],
            eigenvectors: vec![],
            subspace_dim: 0,
            residuals: vec![],
        });
    }
    let effective_dim = n.saturating_sub(opts.deflation.len());
    if k > effective_dim {
        return Err(LinalgError::ProblemTooSmall {
            dimension: effective_dim,
            minimum: k,
        });
    }
    let m_cap = opts
        .max_subspace
        .unwrap_or_else(|| effective_dim.min((4 * k + 20).max(50)))
        .min(effective_dim);

    let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed);

    // Start vector: random, deflated, normalised.
    let mut q = vec![0.0; n];
    vector::fill_random(&mut rng, &mut q);
    for d in &opts.deflation {
        vector::project_out(d, &mut q);
    }
    if vector::normalize(&mut q) == 0.0 {
        return Err(LinalgError::NonFiniteInput {
            context: "lanczos start vector collapsed under deflation",
        });
    }

    let mut basis: Vec<Vec<f64>> = vec![q];
    let mut alphas: Vec<f64> = Vec::new();
    let mut betas: Vec<f64> = Vec::new(); // betas[j] couples q_j and q_{j+1}

    let mut w = vec![0.0; n];
    loop {
        let j = basis.len() - 1;
        a.apply(&basis[j], &mut w);
        // Deflate before orthogonalisation so the operator restricted to
        // the complement stays symmetric in exact arithmetic.
        for d in &opts.deflation {
            vector::project_out(d, &mut w);
        }
        let alpha = vector::dot(&basis[j], &w);
        alphas.push(alpha);
        // w ← w − α q_j − β q_{j−1}, then full reorthogonalisation.
        vector::axpy(-alpha, &basis[j], &mut w);
        if j > 0 {
            let beta_prev = betas[j - 1];
            let qprev = &basis[j - 1];
            vector::axpy(-beta_prev, qprev, &mut w);
        }
        vector::reorthogonalize(&basis, &mut w);
        for d in &opts.deflation {
            vector::project_out(d, &mut w);
        }

        let beta = vector::norm2(&w);
        let happy_breakdown = beta < 1e-12;

        // Convergence check on the current Ritz problem, done periodically,
        // on breakdown, and when the subspace cap is reached.
        let m = basis.len();
        let at_cap = m >= m_cap;
        let should_check = happy_breakdown || at_cap || (m >= 2 * k && m.is_multiple_of(5));
        if should_check {
            let (vals, vecs, resids) = ritz_pairs(a, &basis, &alphas, &betas, k.min(m))?;
            let scale = vals.first().map(|v| v.abs()).unwrap_or(1.0).max(1.0);
            let converged = vals.len() >= k && resids.iter().all(|&r| r <= opts.tolerance * scale);
            if converged {
                return Ok(LanczosResult {
                    eigenvalues: vals,
                    eigenvectors: vecs,
                    subspace_dim: m,
                    residuals: resids,
                });
            }
            if at_cap || m >= effective_dim {
                // Subspace exhausted. A full-space basis is as exact as
                // results will ever get; report it rather than failing.
                if m >= effective_dim && vals.len() >= k {
                    return Ok(LanczosResult {
                        eigenvalues: vals,
                        eigenvectors: vecs,
                        subspace_dim: m,
                        residuals: resids,
                    });
                }
                let worst = resids.iter().cloned().fold(0.0f64, f64::max);
                return Err(LinalgError::NoConvergence {
                    solver: "lanczos",
                    iterations: m,
                    residual: worst,
                    tolerance: opts.tolerance,
                });
            }
        }

        if happy_breakdown {
            // The Krylov space hit an invariant subspace before producing k
            // converged pairs (e.g. the operator has a degenerate eigenvalue
            // whose second copy a single start vector can never reach).
            // Restart with a fresh random direction orthogonal to everything
            // found so far; beta = 0 keeps T block-diagonal and exact.
            let mut next = vec![0.0; n];
            vector::fill_random(&mut rng, &mut next);
            for d in &opts.deflation {
                vector::project_out(d, &mut next);
            }
            vector::reorthogonalize(&basis, &mut next);
            if vector::normalize(&mut next) < 1e-12 {
                // No direction left: the space truly is exhausted.
                let (vals, vecs, resids) = ritz_pairs(a, &basis, &alphas, &betas, k.min(m))?;
                return Ok(LanczosResult {
                    eigenvalues: vals,
                    eigenvectors: vecs,
                    subspace_dim: m,
                    residuals: resids,
                });
            }
            betas.push(0.0);
            basis.push(next);
        } else {
            betas.push(beta);
            let mut next = w.clone();
            vector::scale(1.0 / beta, &mut next);
            basis.push(next);
        }
    }
}

/// `(Ritz values, Ritz vectors, per-pair residuals)` from [`ritz_pairs`].
type RitzPairs = (Vec<f64>, Vec<Vec<f64>>, Vec<f64>);

/// Solve the tridiagonal Ritz problem and map the top-`k` Ritz vectors back
/// to the original space, computing true residuals.
fn ritz_pairs<A: LinearOperator + ?Sized>(
    a: &A,
    basis: &[Vec<f64>],
    alphas: &[f64],
    betas: &[f64],
    k: usize,
) -> Result<RitzPairs, LinalgError> {
    let m = basis.len();
    let n = basis[0].len();
    // EISPACK convention: off[0] = 0, off[i] couples i-1,i.
    let mut off = vec![0.0; m];
    off[1..m].copy_from_slice(&betas[..m - 1]);
    let eig = tql::tridiagonal_eigen(alphas.to_vec(), off)?;

    // Top-k by eigenvalue (descending).
    let mut vals = Vec::with_capacity(k);
    let mut vecs = Vec::with_capacity(k);
    let mut resids = Vec::with_capacity(k);
    for idx in (m - k..m).rev() {
        let lambda = eig.eigenvalues[idx];
        let y = eig.eigenvector(idx);
        // v = Q y
        let mut v = vec![0.0; n];
        for (j, qj) in basis.iter().enumerate() {
            vector::axpy(y[j], qj, &mut v);
        }
        vector::normalize(&mut v);
        // True residual ‖Av − λv‖.
        let mut av = vec![0.0; n];
        a.apply(&v, &mut av);
        vector::axpy(-lambda, &v, &mut av);
        resids.push(vector::norm2(&av));
        vals.push(lambda);
        vecs.push(v);
    }
    Ok((vals, vecs, resids))
}

/// Convenience: largest eigenpair of a symmetric operator.
pub fn largest_eigenpair<A: LinearOperator + ?Sized>(
    a: &A,
    opts: &LanczosOptions,
) -> Result<(f64, Vec<f64>), LinalgError> {
    let mut o = opts.clone();
    o.num_eigenpairs = 1;
    let res = largest_eigenpairs(a, &o)?;
    let lambda = res.eigenvalues[0];
    let v = res.eigenvectors.into_iter().next().expect("k=1 pair");
    Ok((lambda, v))
}

/// Compute a dense reference decomposition of a [`LinearOperator`] by
/// probing with unit vectors (tests / tiny operators only).
pub fn materialize<A: LinearOperator + ?Sized>(a: &A) -> DenseMatrix {
    let n = a.dim();
    let mut m = DenseMatrix::zeros(n, n);
    let mut e = vec![0.0; n];
    let mut col = vec![0.0; n];
    for j in 0..n {
        e[j] = 1.0;
        a.apply(&e, &mut col);
        for i in 0..n {
            m.set(i, j, col[i]);
        }
        e[j] = 0.0;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{ones_direction, ShiftedOperator};
    use crate::sparse::CsrMatrix;
    use crate::tql::symmetric_eigen;

    fn path_laplacian(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            let deg = if i == 0 || i == n - 1 { 1.0 } else { 2.0 };
            t.push((i, i, deg));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, &t).unwrap()
    }

    #[test]
    fn finds_largest_eigenvalue_of_diagonal() {
        let d = CsrMatrix::from_diagonal(&[1.0, 5.0, 2.0, 4.0, 3.0]);
        let (lambda, v) = largest_eigenpair(&d, &LanczosOptions::default()).unwrap();
        assert!((lambda - 5.0).abs() < 1e-9);
        assert!(v[1].abs() > 0.99);
    }

    #[test]
    fn matches_dense_solver_on_laplacian() {
        let lap = path_laplacian(20);
        let dense = lap.to_dense();
        let reference = symmetric_eigen(&dense).unwrap();
        let res = largest_eigenpairs(
            &lap,
            &LanczosOptions {
                num_eigenpairs: 3,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..3 {
            let expect = reference.eigenvalues[19 - i];
            assert!(
                (res.eigenvalues[i] - expect).abs() < 1e-8,
                "pair {i}: {} vs {}",
                res.eigenvalues[i],
                expect
            );
        }
    }

    #[test]
    fn deflation_excludes_known_direction() {
        // Deflating the ones vector from (cI − L) makes the top eigenpair
        // correspond to λ₂ of L.
        let n = 12;
        let lap = path_laplacian(n);
        let c = lap.gershgorin_upper_bound() + 1.0;
        let shifted = ShiftedOperator::new(&lap, c, -1.0);
        let opts = LanczosOptions {
            num_eigenpairs: 1,
            deflation: vec![ones_direction(n)],
            ..Default::default()
        };
        let (mu, v) = largest_eigenpair(&shifted, &opts).unwrap();
        let lambda2 = c - mu;
        let expect = 4.0 * (std::f64::consts::PI / (2.0 * n as f64)).sin().powi(2);
        assert!(
            (lambda2 - expect).abs() < 1e-8,
            "lambda2 {} vs {}",
            lambda2,
            expect
        );
        // The Ritz vector is orthogonal to ones.
        let ones_coeff: f64 = v.iter().sum::<f64>() / (n as f64).sqrt();
        assert!(ones_coeff.abs() < 1e-8);
    }

    #[test]
    fn requesting_too_many_pairs_errors() {
        let d = CsrMatrix::from_diagonal(&[1.0, 2.0]);
        let opts = LanczosOptions {
            num_eigenpairs: 3,
            ..Default::default()
        };
        assert!(matches!(
            largest_eigenpairs(&d, &opts),
            Err(LinalgError::ProblemTooSmall { .. })
        ));
    }

    #[test]
    fn zero_requests_return_empty() {
        let d = CsrMatrix::from_diagonal(&[1.0, 2.0]);
        let opts = LanczosOptions {
            num_eigenpairs: 0,
            ..Default::default()
        };
        let r = largest_eigenpairs(&d, &opts).unwrap();
        assert!(r.eigenvalues.is_empty());
    }

    #[test]
    fn residuals_are_small() {
        let lap = path_laplacian(30);
        let res = largest_eigenpairs(
            &lap,
            &LanczosOptions {
                num_eigenpairs: 2,
                ..Default::default()
            },
        )
        .unwrap();
        for r in &res.residuals {
            assert!(*r < 1e-8, "residual {r}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let lap = path_laplacian(15);
        let a = largest_eigenpairs(&lap, &LanczosOptions::default()).unwrap();
        let b = largest_eigenpairs(&lap, &LanczosOptions::default()).unwrap();
        assert_eq!(a.eigenvalues, b.eigenvalues);
        assert_eq!(a.eigenvectors, b.eigenvectors);
    }

    #[test]
    fn materialize_reconstructs_matrix() {
        let lap = path_laplacian(5);
        let m = materialize(&lap);
        assert_eq!(m, lap.to_dense());
    }

    #[test]
    fn degenerate_top_eigenvalue_still_found() {
        // Diagonal with a repeated largest eigenvalue. A single-start-vector
        // Krylov method sees the two λ=5 coordinates as one direction, so it
        // is only guaranteed to report λ=5 once; every returned pair must
        // still be a genuine eigenpair. (The Fiedler driver only ever needs
        // k = 1, where degeneracy is harmless: any vector in the eigenspace
        // is a valid optimal relaxation solution.)
        let d = CsrMatrix::from_diagonal(&[5.0, 5.0, 1.0, 0.5, 0.1, 3.0]);
        let res = largest_eigenpairs(
            &d,
            &LanczosOptions {
                num_eigenpairs: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((res.eigenvalues[0] - 5.0).abs() < 1e-7);
        // Second value is one of the true eigenvalues (5 after a breakdown
        // restart, or 3 if the Krylov space converged first).
        assert!(
            (res.eigenvalues[1] - 5.0).abs() < 1e-7 || (res.eigenvalues[1] - 3.0).abs() < 1e-7,
            "unexpected second eigenvalue {}",
            res.eigenvalues[1]
        );
        for r in &res.residuals {
            assert!(*r < 1e-6);
        }
    }
}
