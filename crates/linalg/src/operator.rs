//! The [`LinearOperator`] abstraction and operator combinators.
//!
//! Lanczos and CG only ever need `y = A x`. Expressing that as a trait lets
//! the Fiedler driver compose operators without materialising matrices:
//! a shifted Laplacian `cI − L`, a deflation projector `P = I − 𝟙𝟙ᵀ/n`, or
//! the shift-invert action `x ↦ P L⁺ P x` implemented by an inner CG solve.

use crate::vector;

/// Anything that can act as a square linear map on `f64` vectors.
pub trait LinearOperator {
    /// Dimension `n` of the (square) operator.
    fn dim(&self) -> usize;

    /// Compute `y = A x`. Implementations may assume `x.len() == y.len() ==
    /// self.dim()` (guaranteed by all callers in this crate).
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// Convenience wrapper allocating the output.
    fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.dim()];
        self.apply(x, &mut y);
        y
    }

    /// Rayleigh quotient `xᵀAx / xᵀx` for a nonzero `x`.
    fn rayleigh_quotient(&self, x: &[f64]) -> f64 {
        let ax = self.apply_vec(x);
        vector::dot(x, &ax) / vector::dot(x, x)
    }
}

/// `alpha * I + beta * A` — used to turn "smallest eigenvalues of L" into
/// "largest eigenvalues of cI − L" so plain Lanczos converges to them.
pub struct ShiftedOperator<'a, A: LinearOperator + ?Sized> {
    inner: &'a A,
    /// Coefficient of the identity.
    pub alpha: f64,
    /// Coefficient of the wrapped operator.
    pub beta: f64,
}

impl<'a, A: LinearOperator + ?Sized> ShiftedOperator<'a, A> {
    /// Wrap `inner` as `alpha·I + beta·inner`.
    pub fn new(inner: &'a A, alpha: f64, beta: f64) -> Self {
        ShiftedOperator { inner, alpha, beta }
    }
}

impl<A: LinearOperator + ?Sized> LinearOperator for ShiftedOperator<'_, A> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.inner.apply(x, y);
        for i in 0..x.len() {
            y[i] = self.alpha * x[i] + self.beta * y[i];
        }
    }
}

/// `P A P` where `P = I − QQᵀ` projects out an orthonormal set of directions
/// (for Laplacians: the constant vector, i.e. the known kernel).
///
/// Applying the projector on both sides keeps the operator symmetric, which
/// Lanczos requires.
pub struct DeflatedOperator<'a, A: LinearOperator + ?Sized> {
    inner: &'a A,
    /// Orthonormal directions to project out.
    basis: &'a [Vec<f64>],
}

impl<'a, A: LinearOperator + ?Sized> DeflatedOperator<'a, A> {
    /// Wrap `inner` with the deflation basis `basis` (each entry must be a
    /// unit vector of matching dimension; orthonormality is the caller's
    /// responsibility).
    pub fn new(inner: &'a A, basis: &'a [Vec<f64>]) -> Self {
        debug_assert!(basis.iter().all(|q| q.len() == inner.dim()));
        DeflatedOperator { inner, basis }
    }

    fn project(&self, x: &mut [f64]) {
        for q in self.basis {
            vector::project_out(q, x);
        }
    }
}

impl<A: LinearOperator + ?Sized> LinearOperator for DeflatedOperator<'_, A> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let mut xp = x.to_vec();
        self.project(&mut xp);
        self.inner.apply(&xp, y);
        self.project(y);
    }
}

/// The unit-normalised all-ones vector of dimension `n`, i.e. the kernel of
/// the Laplacian of a connected graph.
pub fn ones_direction(n: usize) -> Vec<f64> {
    vec![1.0 / (n as f64).sqrt(); n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;

    fn lap_path3() -> DenseMatrix {
        // Path graph 0-1-2 Laplacian.
        DenseMatrix::from_rows(&[
            vec![1.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 1.0],
        ])
        .unwrap()
    }

    #[test]
    fn shifted_operator_is_alpha_i_plus_beta_a() {
        let a = lap_path3();
        let s = ShiftedOperator::new(&a, 5.0, -1.0);
        let x = [1.0, 2.0, 3.0];
        let y = s.apply_vec(&x);
        let ax = a.matvec(&x).unwrap();
        for i in 0..3 {
            assert!((y[i] - (5.0 * x[i] - ax[i])).abs() < 1e-14);
        }
        assert_eq!(s.dim(), 3);
    }

    #[test]
    fn deflated_operator_kills_kernel() {
        let a = lap_path3();
        let basis = vec![ones_direction(3)];
        let d = DeflatedOperator::new(&a, &basis);
        // Applying to the ones vector gives (numerically) zero.
        let y = d.apply_vec(&[1.0, 1.0, 1.0]);
        assert!(vector::norm_inf(&y) < 1e-12);
        // Applying to a centered vector agrees with A (P x = x, P A x = A x
        // because A's range is already orthogonal to ones).
        let x = [1.0, 0.0, -1.0];
        let ya = a.matvec(&x).unwrap();
        let yd = d.apply_vec(&x);
        for i in 0..3 {
            assert!((ya[i] - yd[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn rayleigh_quotient_of_eigenvector() {
        let a = lap_path3();
        // (1, 0, -1) is the λ=1 eigenvector of the path Laplacian.
        let rq = a.rayleigh_quotient(&[1.0, 0.0, -1.0]);
        assert!((rq - 1.0).abs() < 1e-14);
    }

    #[test]
    fn ones_direction_is_unit() {
        let q = ones_direction(9);
        assert!((vector::norm2(&q) - 1.0).abs() < 1e-14);
    }
}
