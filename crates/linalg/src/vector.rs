//! Primitive dense-vector kernels.
//!
//! Every iterative solver in this crate is built from the handful of
//! level-1 operations below. They operate on plain `&[f64]` / `&mut [f64]`
//! slices so callers never pay for a wrapper type, and they all assert
//! conforming lengths in debug builds (solvers guarantee conformance by
//! construction, so release builds skip the checks).

use crate::parallel::{tree_fold, REDUCE_CHUNK};

/// Single-chunk dot kernel: 4-lane accumulation, deterministic order.
/// The public [`dot`] (and the parallel pool's dot) apply this per
/// [`REDUCE_CHUNK`]-sized chunk and tree-fold the partials, so serial and
/// parallel reductions share one summation order exactly.
#[inline]
pub(crate) fn dot_kernel(x: &[f64], y: &[f64]) -> f64 {
    // Accumulate in lanes of 4 to give LLVM an easy vectorisation shape
    // while keeping summation order deterministic.
    let mut acc = [0.0f64; 4];
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += x[i] * y[i];
        acc[1] += x[i + 1] * y[i + 1];
        acc[2] += x[i + 2] * y[i + 2];
        acc[3] += x[i + 3] * y[i + 3];
    }
    let mut tail = 0.0;
    for i in chunks * 4..x.len() {
        tail += x[i] * y[i];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Single-chunk entry-sum kernel (same role as [`dot_kernel`]).
/// Deliberately a plain sequential fold: for sub-chunk inputs it is
/// bit-identical to the pre-chunking `iter().sum()` this crate always
/// used, so the parallel refactor does not perturb small-problem results.
#[inline]
pub(crate) fn sum_kernel(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// Chunked deterministic sum: per-[`REDUCE_CHUNK`] partials, tree-folded.
/// Bitwise equal to the parallel pool's `sum` for every thread count.
pub(crate) fn sum_kernel_chunked(x: &[f64]) -> f64 {
    if x.len() <= REDUCE_CHUNK {
        return sum_kernel(x);
    }
    let mut partials: Vec<f64> = x.chunks(REDUCE_CHUNK).map(sum_kernel).collect();
    tree_fold(&mut partials)
}

/// Dot product `xᵀy`.
///
/// Computed per fixed-size chunk with a tree fold of the partials — the
/// identical order the parallel pool uses, so threading never changes the
/// result bits.
///
/// # Panics
/// Debug builds panic if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len(), "dot: length mismatch");
    if x.len() <= REDUCE_CHUNK {
        return dot_kernel(x, y);
    }
    let mut partials: Vec<f64> = x
        .chunks(REDUCE_CHUNK)
        .zip(y.chunks(REDUCE_CHUNK))
        .map(|(a, b)| dot_kernel(a, b))
        .collect();
    tree_fold(&mut partials)
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Infinity norm `max |x_i|` (0 for an empty slice).
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
}

/// `y ← y + alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// `x ← alpha * x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Copy `src` into `dst`.
#[inline]
pub fn copy(src: &[f64], dst: &mut [f64]) {
    debug_assert_eq!(src.len(), dst.len(), "copy: length mismatch");
    dst.copy_from_slice(src);
}

/// Normalise `x` to unit Euclidean norm in place.
///
/// Returns the original norm. If the norm is zero the vector is left
/// untouched and `0.0` is returned (callers treat that as breakdown).
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Arithmetic mean of the entries (0 for an empty slice). Uses the same
/// chunked deterministic summation as the parallel pool.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    sum_kernel_chunked(x) / x.len() as f64
}

/// Subtract the mean from every entry, making the vector orthogonal to the
/// all-ones vector. This is the deflation step used throughout the Fiedler
/// computation (the constant vector spans the Laplacian null space on a
/// connected graph).
pub fn center(x: &mut [f64]) {
    let m = mean(x);
    for xi in x.iter_mut() {
        *xi -= m;
    }
}

/// Remove from `x` its component along the *unit* vector `q`:
/// `x ← x − (qᵀx) q`. Returns the removed coefficient `qᵀx`.
pub fn project_out(q: &[f64], x: &mut [f64]) -> f64 {
    let c = dot(q, x);
    axpy(-c, q, x);
    c
}

/// Classical Gram–Schmidt re-orthogonalisation of `x` against a basis of
/// unit vectors, performed twice ("twice is enough", Kahan–Parlett) for
/// numerical robustness. The basis is given as a slice of rows.
pub fn reorthogonalize(basis: &[Vec<f64>], x: &mut [f64]) {
    for _ in 0..2 {
        for q in basis {
            project_out(q, x);
        }
    }
}

/// True if every entry is finite.
pub fn all_finite(x: &[f64]) -> bool {
    x.iter().all(|v| v.is_finite())
}

/// Fill `x` with uniform random values in `(-1, 1)` from the supplied RNG.
/// Deterministic for a seeded RNG; used to start Lanczos / power iterations.
pub fn fill_random<R: rand::Rng>(rng: &mut R, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi = rng.gen_range(-1.0..1.0);
    }
}

/// Canonical sign convention used across the crate: flip the vector so its
/// first *significant* entry (the first whose magnitude is within a small
/// relative tolerance of the maximum) is positive. Eigenvectors are only
/// defined up to sign; fixing the sign makes orders reproducible.
///
/// The tolerance matters: picking the strictly-largest entry is unstable
/// when two entries tie in magnitude up to rounding (e.g. the first and
/// last components of a path graph's Fiedler vector are `±cos(π/2n)`), and
/// different solvers would then canonicalise the same eigenvector to
/// opposite signs.
pub fn canonicalize_sign(x: &mut [f64]) {
    let max_abs = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    if max_abs == 0.0 {
        return;
    }
    let threshold = max_abs * (1.0 - 1e-9);
    if let Some(first) = x.iter().find(|v| v.abs() >= threshold) {
        if *first < 0.0 {
            scale(-1.0, x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let x: Vec<f64> = (0..13).map(|i| i as f64 * 0.5).collect();
        let y: Vec<f64> = (0..13).map(|i| (i as f64).sin()).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - naive).abs() < 1e-12);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn norm2_of_unit_axes() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn norm_inf_finds_largest_magnitude() {
        assert_eq!(norm_inf(&[1.0, -7.0, 3.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = [1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, [-3.0, 6.0]);
    }

    #[test]
    fn normalize_returns_old_norm() {
        let mut x = [0.0, 3.0, 4.0];
        let n = normalize(&mut x);
        assert!((n - 5.0).abs() < 1e-15);
        assert!((norm2(&x) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut x = [0.0, 0.0];
        assert_eq!(normalize(&mut x), 0.0);
        assert_eq!(x, [0.0, 0.0]);
    }

    #[test]
    fn center_makes_mean_zero() {
        let mut x = [1.0, 2.0, 3.0, 6.0];
        center(&mut x);
        assert!(mean(&x).abs() < 1e-15);
    }

    #[test]
    fn project_out_makes_orthogonal() {
        let q = {
            let mut q = vec![1.0, 1.0, 1.0, 1.0];
            normalize(&mut q);
            q
        };
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        project_out(&q, &mut x);
        assert!(dot(&q, &x).abs() < 1e-12);
    }

    #[test]
    fn reorthogonalize_against_two_vectors() {
        let mut q1 = vec![1.0, 0.0, 0.0, 0.0];
        normalize(&mut q1);
        let mut q2 = vec![0.0, 1.0, 1.0, 0.0];
        normalize(&mut q2);
        let basis = vec![q1.clone(), q2.clone()];
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        reorthogonalize(&basis, &mut x);
        assert!(dot(&q1, &x).abs() < 1e-12);
        assert!(dot(&q2, &x).abs() < 1e-12);
    }

    #[test]
    fn canonicalize_sign_flips_when_needed() {
        let mut x = vec![0.1, -0.9, 0.2];
        canonicalize_sign(&mut x);
        assert!(x[1] > 0.0);
        // Flipping twice is idempotent.
        let before = x.clone();
        canonicalize_sign(&mut x);
        assert_eq!(before, x);
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        assert!(all_finite(&[1.0, 2.0]));
        assert!(!all_finite(&[1.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }

    #[test]
    fn fill_random_is_deterministic_for_seed() {
        use rand::SeedableRng;
        let mut a = vec![0.0; 8];
        let mut b = vec![0.0; 8];
        fill_random(&mut rand::rngs::StdRng::seed_from_u64(7), &mut a);
        fill_random(&mut rand::rngs::StdRng::seed_from_u64(7), &mut b);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (-1.0..1.0).contains(v)));
    }
}
