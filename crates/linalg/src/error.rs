//! Error type shared by every solver in the crate.

use std::fmt;

/// Errors surfaced by the linear-algebra layer.
///
/// Solvers in this crate are written against exact mathematical
/// preconditions (symmetry, positive semi-definiteness, conforming
/// dimensions). Violations are reported as values rather than panics so the
/// higher layers (graph construction, the Spectral LPM mapper) can attach
/// context before reporting to the user.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands have incompatible dimensions.
    DimensionMismatch {
        /// What the caller was doing, e.g. `"matvec"`.
        context: &'static str,
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension actually supplied.
        found: usize,
    },
    /// A matrix that must be square is not.
    NotSquare {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// A matrix that must be symmetric is not (largest asymmetry reported).
    NotSymmetric {
        /// `max_ij |a_ij - a_ji|` observed.
        max_asymmetry: f64,
    },
    /// An iterative solver failed to converge within its iteration budget.
    NoConvergence {
        /// Which solver gave up.
        solver: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual norm (or equivalent) at the point of giving up.
        residual: f64,
        /// Tolerance that was requested.
        tolerance: f64,
    },
    /// The operator was found to be singular / not positive definite where
    /// positive definiteness was required (e.g. CG hit a zero or negative
    /// curvature direction).
    NotPositiveDefinite {
        /// Curvature value `pᵀAp` that triggered the failure.
        curvature: f64,
    },
    /// The problem is too small for the requested computation, e.g. asking
    /// for the Fiedler vector of a 1-vertex graph.
    ProblemTooSmall {
        /// Dimension supplied.
        dimension: usize,
        /// Minimum dimension the operation supports.
        minimum: usize,
    },
    /// Input contained NaN or infinity.
    NonFiniteInput {
        /// What the caller was doing.
        context: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, found {found}"
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::NotSymmetric { max_asymmetry } => write!(
                f,
                "matrix must be symmetric (max |a_ij - a_ji| = {max_asymmetry:.3e})"
            ),
            LinalgError::NoConvergence {
                solver,
                iterations,
                residual,
                tolerance,
            } => write!(
                f,
                "{solver} did not converge after {iterations} iterations \
                 (residual {residual:.3e}, tolerance {tolerance:.3e})"
            ),
            LinalgError::NotPositiveDefinite { curvature } => write!(
                f,
                "operator is not positive definite (curvature {curvature:.3e})"
            ),
            LinalgError::ProblemTooSmall { dimension, minimum } => write!(
                f,
                "problem dimension {dimension} is below the minimum {minimum}"
            ),
            LinalgError::NonFiniteInput { context } => {
                write!(f, "non-finite value encountered in {context}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = LinalgError::DimensionMismatch {
            context: "matvec",
            expected: 4,
            found: 5,
        };
        assert_eq!(
            e.to_string(),
            "dimension mismatch in matvec: expected 4, found 5"
        );
    }

    #[test]
    fn display_no_convergence_mentions_solver() {
        let e = LinalgError::NoConvergence {
            solver: "lanczos",
            iterations: 10,
            residual: 1e-3,
            tolerance: 1e-10,
        };
        let s = e.to_string();
        assert!(s.contains("lanczos"));
        assert!(s.contains("10"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&LinalgError::NotSquare { rows: 2, cols: 3 });
    }

    #[test]
    fn display_not_symmetric_and_not_pd() {
        let s = LinalgError::NotSymmetric { max_asymmetry: 0.5 }.to_string();
        assert!(s.contains("symmetric"));
        let s = LinalgError::NotPositiveDefinite { curvature: -1.0 }.to_string();
        assert!(s.contains("positive definite"));
    }

    #[test]
    fn display_too_small_and_non_finite() {
        let s = LinalgError::ProblemTooSmall {
            dimension: 1,
            minimum: 2,
        }
        .to_string();
        assert!(s.contains("below the minimum"));
        let s = LinalgError::NonFiniteInput { context: "dot" }.to_string();
        assert!(s.contains("dot"));
    }
}
