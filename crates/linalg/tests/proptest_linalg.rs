//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use slpm_linalg::cg::{self, CgOptions};
use slpm_linalg::dense::DenseMatrix;
use slpm_linalg::jacobi::jacobi_eigen;
use slpm_linalg::lanczos::{self, LanczosOptions};
use slpm_linalg::sparse::CsrMatrix;
use slpm_linalg::tql::symmetric_eigen;
use slpm_linalg::vector;

/// Strategy: a random symmetric matrix of side 2..=8 with entries in ±2.
fn symmetric_matrix() -> impl Strategy<Value = DenseMatrix> {
    (2usize..=8).prop_flat_map(|n| {
        proptest::collection::vec(-2.0f64..2.0, n * (n + 1) / 2).prop_map(move |tri| {
            let mut m = DenseMatrix::zeros(n, n);
            let mut it = tri.into_iter();
            for i in 0..n {
                for j in 0..=i {
                    let v = it.next().unwrap();
                    m.set(i, j, v);
                    m.set(j, i, v);
                }
            }
            m
        })
    })
}

/// Strategy: a connected path-with-chords Laplacian of side 3..=24.
fn laplacian() -> impl Strategy<Value = CsrMatrix> {
    (3usize..=24, proptest::collection::vec(0usize..1000, 0..8)).prop_map(|(n, chords)| {
        let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        for c in chords {
            let a = c % n;
            let b = (c / 7) % n;
            if a != b {
                edges.push((a.min(b), a.max(b)));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let mut t = Vec::new();
        let mut deg = vec![0.0f64; n];
        for &(a, b) in &edges {
            t.push((a, b, -1.0));
            t.push((b, a, -1.0));
            deg[a] += 1.0;
            deg[b] += 1.0;
        }
        for (i, d) in deg.into_iter().enumerate() {
            t.push((i, i, d));
        }
        CsrMatrix::from_triplets(n, n, &t).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn eigen_decomposition_reconstructs(a in symmetric_matrix()) {
        let n = a.rows();
        let eig = symmetric_eigen(&a).unwrap();
        // A ≈ V diag(λ) Vᵀ checked via matvec on the all-ones probe.
        let x = vec![1.0; n];
        let ax = a.matvec(&x).unwrap();
        let mut recon = vec![0.0; n];
        for k in 0..n {
            let v = eig.eigenvector(k);
            let coeff = eig.eigenvalues[k] * vector::dot(&v, &x);
            vector::axpy(coeff, &v, &mut recon);
        }
        for i in 0..n {
            prop_assert!((ax[i] - recon[i]).abs() < 1e-6,
                "reconstruction mismatch at {}: {} vs {}", i, ax[i], recon[i]);
        }
    }

    #[test]
    fn jacobi_and_ql_agree(a in symmetric_matrix()) {
        let j = jacobi_eigen(&a).unwrap();
        let q = symmetric_eigen(&a).unwrap();
        for k in 0..a.rows() {
            prop_assert!((j.eigenvalues[k] - q.eigenvalues[k]).abs() < 1e-6);
        }
    }

    #[test]
    fn eigenvalues_sorted_and_trace_preserved(a in symmetric_matrix()) {
        let eig = symmetric_eigen(&a).unwrap();
        for w in eig.eigenvalues.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12);
        }
        let trace: f64 = (0..a.rows()).map(|i| a.get(i, i)).sum();
        let sum: f64 = eig.eigenvalues.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-7);
    }

    #[test]
    fn laplacian_is_psd_with_zero_row_sums(lap in laplacian()) {
        for s in lap.row_sums() {
            prop_assert!(s.abs() < 1e-12);
        }
        let eig = symmetric_eigen(&lap.to_dense()).unwrap();
        prop_assert!(eig.eigenvalues[0] > -1e-9, "smallest eigenvalue {}", eig.eigenvalues[0]);
        prop_assert!(eig.eigenvalues[0].abs() < 1e-8, "kernel missing");
    }

    #[test]
    fn lanczos_top_matches_dense(lap in laplacian()) {
        let dense = symmetric_eigen(&lap.to_dense()).unwrap();
        let expect = *dense.eigenvalues.last().unwrap();
        let (got, v) = lanczos::largest_eigenpair(&lap, &LanczosOptions::default()).unwrap();
        prop_assert!((got - expect).abs() < 1e-6, "{} vs {}", got, expect);
        // Returned vector is a genuine eigenvector.
        let lv = lap.matvec(&v).unwrap();
        let mut r = lv;
        vector::axpy(-got, &v, &mut r);
        prop_assert!(vector::norm2(&r) < 1e-6);
    }

    #[test]
    fn cg_solves_deflated_laplacian(lap in laplacian()) {
        let n = lap.rows();
        // Build a zero-mean rhs deterministically from the size.
        let mut b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        vector::center(&mut b);
        let opts = CgOptions { deflate_mean: true, tolerance: 1e-11, ..Default::default() };
        let out = cg::solve(&lap, &b, &opts).unwrap();
        let lx = lap.matvec(&out.solution).unwrap();
        for i in 0..n {
            prop_assert!((lx[i] - b[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn fiedler_pair_is_second_smallest(lap in laplacian()) {
        let pair = slpm_linalg::fiedler::fiedler_pair(&lap, &Default::default()).unwrap();
        let dense = symmetric_eigen(&lap.to_dense()).unwrap();
        prop_assert!((pair.lambda2 - dense.eigenvalues[1]).abs() < 1e-6,
            "lambda2 {} vs dense {}", pair.lambda2, dense.eigenvalues[1]);
        prop_assert!(pair.residual < 1e-6);
    }

    #[test]
    fn csr_matvec_matches_dense(lap in laplacian()) {
        let n = lap.rows();
        let x: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let sparse_y = lap.matvec(&x).unwrap();
        let dense_y = lap.to_dense().matvec(&x).unwrap();
        for i in 0..n {
            prop_assert!((sparse_y[i] - dense_y[i]).abs() < 1e-12);
        }
    }
}
