//! Ablation bench: affinity-edge sweep (Section 4 extensibility).
use criterion::{criterion_group, criterion_main, Criterion};
use slpm_querysim::experiments::ablation::affinity_sweep;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_affinity");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("sweep_8x8", |b| {
        b.iter(|| affinity_sweep(std::hint::black_box(8), &[0.0, 1.0, 4.0]));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
