//! Criterion bench for Figure 6a: range-query worst case. The paper-scale
//! 8^4 sweep is heavy, so the bench exercises the quick configuration and a
//! 4^4 mid-size; the fig6a binary regenerates the full figure.
use criterion::{criterion_group, criterion_main, Criterion};
use slpm_querysim::experiments::fig6::{run_worst_case, Fig6Config};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6a_range_worst");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("quick_4^3", |b| {
        let cfg = Fig6Config::quick();
        b.iter(|| run_worst_case(std::hint::black_box(&cfg)));
    });
    g.bench_function("mid_4^4", |b| {
        let cfg = Fig6Config {
            side: 4,
            ndim: 4,
            percents: vec![2.0, 8.0, 32.0],
            shape_tolerance: 1.25,
        };
        b.iter(|| run_worst_case(std::hint::black_box(&cfg)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
