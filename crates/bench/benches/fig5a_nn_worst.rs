//! Criterion bench for Figure 5a: the full 5-D nearest-neighbour worst-case
//! sweep (mapping construction + exhaustive pair metrics).
use criterion::{criterion_group, criterion_main, Criterion};
use slpm_querysim::experiments::fig5::{run_worst_case, Fig5Config};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5a_nn_worst");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("quick_2^5", |b| {
        let cfg = Fig5Config::quick();
        b.iter(|| run_worst_case(std::hint::black_box(&cfg)));
    });
    g.bench_function("paper_4^5", |b| {
        let cfg = Fig5Config::default();
        b.iter(|| run_worst_case(std::hint::black_box(&cfg)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
