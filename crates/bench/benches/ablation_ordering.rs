//! Ablation bench: ordering strategies built on the same spectral machinery
//! (direct Fiedler vs recursive spectral bisection vs multi-vector).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slpm_graph::grid::{Connectivity, GridSpec};
use spectral_lpm::recursive::{multi_vector_order, rsb_order, RsbOptions};
use spectral_lpm::{SpectralConfig, SpectralMapper};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_ordering");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for side in [8usize, 16] {
        let spec = GridSpec::cube(side, 2);
        let graph = spec.graph(Connectivity::Orthogonal);
        g.bench_with_input(BenchmarkId::new("direct", side), &graph, |b, graph| {
            let mapper = SpectralMapper::new(SpectralConfig::default());
            b.iter(|| mapper.map_graph(std::hint::black_box(graph)).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("rsb", side), &graph, |b, graph| {
            b.iter(|| rsb_order(std::hint::black_box(graph), &RsbOptions::default()).unwrap());
        });
        g.bench_with_input(
            BenchmarkId::new("multi_vector", side),
            &graph,
            |b, graph| {
                b.iter(|| {
                    multi_vector_order(
                        std::hint::black_box(graph),
                        3,
                        1e-8,
                        &SpectralConfig::default(),
                    )
                    .unwrap()
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
