//! Criterion bench for Figure 5b: 2-D axis-fairness sweep.
use criterion::{criterion_group, criterion_main, Criterion};
use slpm_querysim::experiments::fig5::{run_fairness, Fig5Config};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5b_fairness");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("paper_16x16", |b| {
        let cfg = Fig5Config::default();
        b.iter(|| run_fairness(std::hint::black_box(&cfg)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
