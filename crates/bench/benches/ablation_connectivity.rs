//! Ablation bench: mapping cost and locality under different graph models
//! (Section 4 variations).
use criterion::{criterion_group, criterion_main, Criterion};
use slpm_querysim::experiments::ablation::connectivity_comparison;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_connectivity");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("compare_8x8", |b| {
        b.iter(|| connectivity_comparison(std::hint::black_box(8)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
