//! Criterion bench for the Figure 1 experiment: worst adjacent-pair 1-D
//! distance per mapping, on 4x4 and 8x8 grids.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_boundary");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for side in [4usize, 8] {
        g.bench_with_input(BenchmarkId::new("run", side), &side, |b, &side| {
            b.iter(|| slpm_querysim::experiments::fig1::run(std::hint::black_box(side)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
