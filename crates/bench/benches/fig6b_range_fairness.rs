//! Criterion bench for Figure 6b: partial-range-query fairness sweep.
use criterion::{criterion_group, criterion_main, Criterion};
use slpm_querysim::experiments::fig6::{run_fairness, Fig6Config};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6b_range_fairness");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("quick_4^3", |b| {
        let cfg = Fig6Config::quick();
        b.iter(|| run_fairness(std::hint::black_box(&cfg)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
