//! Ablation bench: cost of the three Fiedler strategies as the grid grows.
//! Shift-invert does few, expensive (CG) iterations; shifted-direct does
//! many cheap ones; dense is cubic.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slpm_graph::grid::{Connectivity, GridSpec};
use slpm_linalg::fiedler::{fiedler_pair, FiedlerMethod, FiedlerOptions};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_eigensolver");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for side in [8usize, 16, 24] {
        let spec = GridSpec::cube(side, 2);
        let lap = spec.graph(Connectivity::Orthogonal).laplacian();
        for (name, method) in [
            ("shift_invert", FiedlerMethod::ShiftInvert),
            ("shifted_direct", FiedlerMethod::ShiftedDirect),
            ("dense", FiedlerMethod::Dense),
        ] {
            // Dense at 24^2=576 is already slow-ish but fine for n=10.
            g.bench_with_input(BenchmarkId::new(name, side * side), &lap, |b, lap| {
                let opts = FiedlerOptions {
                    method,
                    ..Default::default()
                };
                b.iter(|| fiedler_pair(std::hint::black_box(lap), &opts).unwrap());
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
