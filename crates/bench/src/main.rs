//! Index of the figure-regeneration binaries.
fn main() {
    println!(
        "Spectral LPM reproduction — figure regenerators:\n\
         \n\
         cargo run --release -p slpm-bench --bin fig1   # boundary effect table\n\
         cargo run --release -p slpm-bench --bin fig3   # 3x3 worked example\n\
         cargo run --release -p slpm-bench --bin fig4   # 4- vs 8-connectivity\n\
         cargo run --release -p slpm-bench --bin fig5a  # NN worst case (5-D)\n\
         cargo run --release -p slpm-bench --bin fig5b  # NN fairness (2-D)\n\
         cargo run --release -p slpm-bench --bin fig6a  # range worst case (4-D)\n\
         cargo run --release -p slpm-bench --bin fig6b  # range fairness (4-D)\n\
         cargo run --release -p slpm-bench --bin ablations\n\
         \n\
         Criterion benches: cargo bench -p slpm-bench"
    );
}
