//! Serving-engine throughput: serial vs pooled, unsharded vs sharded,
//! single-batch vs concurrent admission, expanding-ball vs best-first.
//!
//! Replays one reproducible mixed range/kNN workload (seeded, from
//! `slpm_serve::workload`) through the {1, S} shards × {1, T} threads ×
//! {1, B} in-flight-batches matrix and records queries/sec,
//! pages-per-query quantiles, per-class latency quantiles, hit ratios,
//! shard balance and the batch digest for each. Before the matrix it runs
//! both kNN planners over the same workload and records their R-tree
//! costs; the run **fails** (nonzero exit) if
//!
//! * any configuration's digest diverges (the serving parity contract —
//!   the digest is invariant under batch splitting, so every entry must
//!   agree), or
//! * best-first does not visit strictly fewer R-tree nodes than the
//!   expanding ball on the kNN share of the workload (the planner gate
//!   CI's `serve-smoke` job enforces).
//!
//! With `--page-file PATH` (an artifact of `slpm pack`, matching this
//! run's grid/mapping and the default page geometry) every engine in the
//! matrix serves from the on-disk page file instead of memory-resident
//! payloads — the parity contract then also proves the out-of-core tier
//! answers bitwise identically across the whole matrix. `--readahead N`
//! sets the run-prefetch window (default 0 = off).
//!
//! Usage:
//!   serve_throughput [--grid N] [--shards S] [--threads T] [--queries Q]
//!                    [--repeats R] [--inflight B] [--mapping M]
//!                    [--partition P] [--page-file PATH] [--readahead N]
//!                    [--json] [--out PATH]
//!
//! `--json` writes the machine-readable results (schema
//! `slpm.serve_matrix.v5`) to PATH (default BENCH_serve.json); the CI
//! `serve-smoke` job uploads that file as a build artifact. The JSON
//! stamps `host_parallelism` — on a single-core container the pooled
//! entries measure scheduling overhead, not speedup; read them together
//! with that field.

use slpm_graph::grid::GridSpec;
use slpm_querysim::mappings::curve_order_by_name;
use slpm_serve::engine::{BatchReport, EngineConfig, KnnPlanner, Query, ServeEngine};
use slpm_serve::shard::Partition;
use slpm_serve::workload::{grid_points, mixed_workload_labeled, WorkloadConfig, CLASS_LABELS};
use std::path::PathBuf;
use std::time::Instant;

struct Entry {
    shards: usize,
    threads: usize,
    inflight: usize,
    mode: &'static str,
    seconds_total: f64,
    qps: f64,
    pages_p50: usize,
    pages_p99: usize,
    /// Per-class (label, p50, p99) latency in microseconds, last repeat.
    class_latency: Vec<(&'static str, f64, f64)>,
    shard_balance: f64,
    /// First repeat: every buffer pool starts empty.
    hit_ratio_cold: f64,
    storage_reads_cold: usize,
    /// Last repeat: pools warmed by the preceding repeats (steady state).
    hit_ratio_warm: f64,
    storage_reads_warm: usize,
    digest: u64,
}

/// One planner's R-tree accounting over the whole workload.
struct PlannerCost {
    planner: KnnPlanner,
    knn_nodes: usize,
    knn_leaves: usize,
    total_nodes: usize,
    digest: u64,
}

/// Nearest-rank quantile of per-query latencies (µs) for one class.
fn class_latency_us(report: &BatchReport, labels: &[&'static str], class: &str, q: f64) -> f64 {
    let mut lats: Vec<f64> = report
        .outcomes
        .iter()
        .zip(labels)
        .filter(|(_, l)| **l == class)
        .map(|(o, _)| o.seconds * 1e6)
        .collect();
    if lats.is_empty() {
        return 0.0;
    }
    lats.sort_by(f64::total_cmp);
    let rank = (q.clamp(0.0, 1.0) * lats.len() as f64).ceil() as usize;
    lats[rank.saturating_sub(1).min(lats.len() - 1)]
}

#[allow(clippy::too_many_arguments)]
fn to_json(
    side: usize,
    mapping: &str,
    queries: usize,
    repeats: usize,
    inflight: usize,
    partition: Partition,
    cfg: &EngineConfig,
    page_file: Option<&str>,
    planners: &[PlannerCost],
    planner_gate: bool,
    entries: &[Entry],
    parity: bool,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"slpm.serve_matrix.v5\",\n");
    out.push_str(
        "  \"description\": \"Sharded/batched query serving: planners, pooling, concurrent admission\",\n",
    );
    out.push_str(&format!("  \"grid\": [{side}, {side}],\n"));
    out.push_str(&format!("  \"mapping\": \"{mapping}\",\n"));
    out.push_str(&format!("  \"queries\": {queries},\n"));
    out.push_str(&format!("  \"repeats\": {repeats},\n"));
    out.push_str(&format!("  \"inflight\": {inflight},\n"));
    out.push_str(&format!("  \"partition\": \"{partition}\",\n"));
    out.push_str(&format!(
        "  \"records_per_page\": {},\n  \"buffer_pages\": {},\n",
        cfg.records_per_page, cfg.buffer_pages
    ));
    out.push_str(&format!(
        "  \"page_file\": {},\n  \"readahead\": {},\n",
        page_file.map_or("null".to_string(), |p| format!("\"{p}\"")),
        cfg.readahead
    ));
    // Single-core hosts cannot show pooled speedups; stamp the machine so
    // the recorded trajectory is read in context (as BENCH_pipeline.json
    // does).
    out.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    out.push_str("  \"planners\": [\n");
    for (i, p) in planners.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"planner\": \"{}\", \"knn_nodes\": {}, \"knn_leaves\": {}, \
             \"total_nodes\": {}, \"digest\": \"{:016x}\"}}{}\n",
            p.planner,
            p.knn_nodes,
            p.knn_leaves,
            p.total_nodes,
            p.digest,
            if i + 1 == planners.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"planner_gate\": {planner_gate},\n"));
    out.push_str(&format!("  \"parity\": {parity},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let classes: Vec<String> = e
            .class_latency
            .iter()
            .map(|(label, p50, p99)| {
                format!("{{\"class\": \"{label}\", \"p50_us\": {p50:.1}, \"p99_us\": {p99:.1}}}")
            })
            .collect();
        out.push_str(&format!(
            "    {{\"shards\": {}, \"threads\": {}, \"inflight\": {}, \"mode\": \"{}\", \
             \"seconds_total\": {:.6}, \"qps\": {:.1}, \"pages_p50\": {}, \
             \"pages_p99\": {}, \"shard_balance\": {:.3}, \
             \"hit_ratio_cold\": {:.4}, \"storage_reads_cold\": {}, \
             \"hit_ratio_warm\": {:.4}, \"storage_reads_warm\": {}, \
             \"latency\": [{}], \"digest\": \"{:016x}\"}}{}\n",
            e.shards,
            e.threads,
            e.inflight,
            e.mode,
            e.seconds_total,
            e.qps,
            e.pages_p50,
            e.pages_p99,
            e.shard_balance,
            e.hit_ratio_cold,
            e.storage_reads_cold,
            e.hit_ratio_warm,
            e.storage_reads_warm,
            classes.join(", "),
            e.digest,
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut side = 256usize;
    let mut shards = 4usize;
    let mut threads = 4usize;
    let mut queries = 1000usize;
    let mut repeats = 3usize;
    let mut inflight = 4usize;
    let mut mapping = String::from("hilbert");
    let mut partition = Partition::Contiguous;
    let mut page_file: Option<String> = None;
    let mut readahead = 0usize;
    let mut json = false;
    let mut out_path = String::from("BENCH_serve.json");
    let mut i = 0;
    let bad = |flag: &str| -> ! {
        eprintln!("{flag} requires a positive integer");
        std::process::exit(2);
    };
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--grid" => {
                i += 1;
                side = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 4)
                    .unwrap_or_else(|| bad("--grid (side >= 4)"));
            }
            "--shards" => {
                i += 1;
                shards = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| bad("--shards"));
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| bad("--threads"));
            }
            "--queries" => {
                i += 1;
                queries = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| bad("--queries"));
            }
            "--repeats" => {
                i += 1;
                repeats = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| bad("--repeats"));
            }
            "--inflight" => {
                i += 1;
                inflight = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| bad("--inflight"));
            }
            "--mapping" => {
                i += 1;
                mapping = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--mapping requires a name");
                    std::process::exit(2);
                });
            }
            "--partition" => {
                i += 1;
                partition = args
                    .get(i)
                    .and_then(|v| Partition::parse(v))
                    .unwrap_or_else(|| {
                        eprintln!("--partition must be contiguous or round-robin");
                        std::process::exit(2);
                    });
            }
            "--out" => {
                i += 1;
                out_path = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            "--page-file" => {
                i += 1;
                page_file = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--page-file requires a path (e.g. from `slpm pack`)");
                    std::process::exit(2);
                }));
            }
            "--readahead" => {
                i += 1;
                readahead = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--readahead requires a non-negative integer");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!(
                    "unknown flag '{other}' (try --grid N, --shards S, --threads T, \
                     --queries Q, --repeats R, --inflight B, --mapping M, --partition P, \
                     --page-file PATH, --readahead N, --json, --out PATH)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let spec = GridSpec::cube(side, 2);
    let order = match curve_order_by_name(&spec, &mapping) {
        Ok(order) => order,
        Err(msg) => {
            eprintln!("FAILED: {msg}");
            std::process::exit(1);
        }
    };
    let points = grid_points(&spec);
    let labeled = mixed_workload_labeled(
        &spec,
        &WorkloadConfig {
            queries,
            ..Default::default()
        },
    );
    let workload: Vec<Query> = labeled.iter().map(|(q, _)| q.clone()).collect();
    let labels: Vec<&'static str> = labeled.iter().map(|(_, l)| *l).collect();
    let base = EngineConfig {
        partition,
        readahead,
        ..Default::default()
    };
    // Every engine in the run — planner pass and matrix — shares one
    // backing choice: memory-resident payloads, or the page file.
    let mk_engine = |cfg: EngineConfig| -> ServeEngine {
        match &page_file {
            None => ServeEngine::new(&points, &order, cfg),
            Some(path) => ServeEngine::with_page_file(&points, &order, cfg, PathBuf::from(path))
                .unwrap_or_else(|e| {
                    eprintln!(
                        "FAILED: cannot open page file {path} (geometry/order must \
                         match this run's --grid/--mapping): {e}"
                    );
                    std::process::exit(1);
                }),
        }
    };

    // Phase 1 — the planner gate: both kNN planners over the identical
    // workload on the serial single-shard engine; identical digests,
    // strictly fewer node visits for best-first.
    let mut planners: Vec<PlannerCost> = Vec::new();
    for planner in [KnnPlanner::BestFirst, KnnPlanner::ExpandingBall] {
        let engine = mk_engine(EngineConfig {
            knn_planner: planner,
            ..base
        });
        let report = engine.run(&workload).expect("no replay panic");
        let (mut knn_nodes, mut knn_leaves, mut total_nodes) = (0usize, 0usize, 0usize);
        for (outcome, query) in report.outcomes.iter().zip(&workload) {
            total_nodes += outcome.tree.nodes_visited;
            if matches!(query, Query::Knn { .. }) {
                knn_nodes += outcome.tree.nodes_visited;
                knn_leaves += outcome.tree.leaves_visited;
            }
        }
        planners.push(PlannerCost {
            planner,
            knn_nodes,
            knn_leaves,
            total_nodes,
            digest: report.digest,
        });
    }
    let planner_gate = planners[0].digest == planners[1].digest
        && planners[0].knn_nodes + planners[0].knn_leaves
            < planners[1].knn_nodes + planners[1].knn_leaves;
    println!(
        "planner gate: best-first knn nodes+leaves {} vs expanding-ball {} (digests {})",
        planners[0].knn_nodes + planners[0].knn_leaves,
        planners[1].knn_nodes + planners[1].knn_leaves,
        if planners[0].digest == planners[1].digest {
            "agree"
        } else {
            "DIVERGE"
        },
    );
    if !planner_gate {
        eprintln!("FAILED: best-first planner did not strictly beat the expanding ball");
    }

    // Phase 2 — the serving matrix: {1, S} shards × {1, T} threads ×
    // {1, B} in-flight batches, best-first planner.
    println!(
        "{:>7} {:>8} {:>9} {:>10} {:>10} {:>10} {:>9} {:>9} {:>8} {:>10} {:>10} {:>18}",
        "shards",
        "threads",
        "inflight",
        "mode",
        "seconds",
        "q/s",
        "pages p50",
        "pages p99",
        "balance",
        "hit cold",
        "hit warm",
        "digest"
    );
    let mut entries: Vec<Entry> = Vec::new();
    let mut combos: Vec<(usize, usize)> =
        vec![(1, 1), (shards, 1), (1, threads), (shards, threads)];
    combos.sort_unstable();
    combos.dedup();
    let mut flights = vec![1usize, inflight];
    flights.dedup();
    for (s, t) in combos {
        let cfg = EngineConfig {
            shards: s,
            threads: t,
            ..base
        };
        // One engine per in-flight count (buffer pools persist across
        // repeats: the first replay is cold, the last is steady-state),
        // with the admission modes' repeats **interleaved** so both see
        // the same thermal/frequency drift — the single-vs-multi-batch
        // comparison is paired, not sequential.
        let engines: Vec<ServeEngine> = flights.iter().map(|_| mk_engine(cfg)).collect();
        let mut seconds = vec![0.0f64; flights.len()];
        let mut colds: Vec<Option<BatchReport>> = vec![None; flights.len()];
        let mut lasts: Vec<Option<BatchReport>> = vec![None; flights.len()];
        for r in 0..repeats {
            for (slot, (&b, engine)) in flights.iter().zip(&engines).enumerate() {
                let start = Instant::now();
                let report = engine.run_inflight(&workload, b).expect("no replay panic");
                seconds[slot] += start.elapsed().as_secs_f64();
                if r == 0 {
                    colds[slot] = Some(report.clone());
                }
                lasts[slot] = Some(report);
            }
        }
        for (slot, &b) in flights.iter().enumerate() {
            let seconds_total = seconds[slot];
            let cold = colds[slot].take().expect("at least one repeat");
            let report = lasts[slot].take().expect("at least one repeat");
            let class_latency: Vec<(&'static str, f64, f64)> = CLASS_LABELS
                .iter()
                .map(|&label| {
                    (
                        label,
                        class_latency_us(&report, &labels, label, 0.5),
                        class_latency_us(&report, &labels, label, 0.99),
                    )
                })
                .collect();
            let entry = Entry {
                shards: s,
                threads: t,
                inflight: b,
                mode: if t > 1 { "pooled" } else { "serial" },
                seconds_total,
                qps: queries as f64 * repeats as f64 / seconds_total,
                pages_p50: report.page_quantile(0.5),
                pages_p99: report.page_quantile(0.99),
                class_latency,
                shard_balance: report.shard_balance(),
                hit_ratio_cold: cold.buffer_stats().hit_ratio(),
                storage_reads_cold: cold.total_misses(),
                hit_ratio_warm: report.buffer_stats().hit_ratio(),
                storage_reads_warm: report.total_misses(),
                digest: report.digest,
            };
            println!(
                "{:>7} {:>8} {:>9} {:>10} {:>9.4}s {:>10.0} {:>9} {:>9} {:>8.2} {:>10.4} {:>10.4} {:>18}",
                entry.shards,
                entry.threads,
                entry.inflight,
                entry.mode,
                entry.seconds_total,
                entry.qps,
                entry.pages_p50,
                entry.pages_p99,
                entry.shard_balance,
                entry.hit_ratio_cold,
                entry.hit_ratio_warm,
                format!("{:016x}", entry.digest),
            );
            entries.push(entry);
        }
    }

    // The parity contract: the digest is invariant under batch splitting,
    // so every configuration — including every in-flight count — must
    // answer identically (and match both planner passes).
    let parity = entries
        .iter()
        .all(|e| e.digest == planners[0].digest && e.digest == planners[1].digest);
    if !parity {
        eprintln!("FAILED: digests diverge across shard/thread/inflight configurations");
    }
    if json {
        let body = to_json(
            side,
            &mapping,
            queries,
            repeats,
            inflight,
            partition,
            &base,
            page_file.as_deref(),
            &planners,
            planner_gate,
            &entries,
            parity,
        );
        // xtask:allow(fs-only-in-storage): benches persist their JSON artifacts
        if let Err(e) = std::fs::write(&out_path, &body) {
            eprintln!("cannot write {out_path}: {e}");
            std::process::exit(1);
        }
        println!("\nwrote {out_path}");
    }
    if !parity || !planner_gate {
        std::process::exit(1);
    }
}
