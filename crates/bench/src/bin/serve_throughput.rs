//! Serving-engine throughput: serial vs pooled, unsharded vs sharded.
//!
//! Replays one reproducible mixed range/kNN workload (seeded, from
//! `slpm_serve::workload`) through four engine configurations — the
//! {1, S} shards × {1, T} threads matrix — and records queries/sec,
//! pages-per-query quantiles, hit ratios and the batch digest for each.
//! Digests must agree across every configuration (the serving layer's
//! parity contract); any mismatch fails the run, as does any solver-path
//! error, so CI cannot record a silently-wrong trajectory.
//!
//! Usage:
//!   serve_throughput [--grid N] [--shards S] [--threads T] [--queries Q]
//!                    [--repeats R] [--mapping M] [--partition P]
//!                    [--json] [--out PATH]
//!
//! `--json` writes the machine-readable results (schema
//! `slpm.serve_throughput.v1`) to PATH (default BENCH_serve.json); the CI
//! `serve-smoke` job uploads that file as a build artifact. The JSON
//! stamps `host_parallelism` — on a single-core container the pooled
//! entries measure scheduling overhead, not speedup; read them together
//! with that field.

use slpm_graph::grid::GridSpec;
use slpm_querysim::mappings::curve_order_by_name;
use slpm_serve::engine::{BatchReport, EngineConfig, ServeEngine};
use slpm_serve::shard::Partition;
use slpm_serve::workload::{grid_points, mixed_workload, WorkloadConfig};
use std::time::Instant;

struct Entry {
    shards: usize,
    threads: usize,
    mode: &'static str,
    seconds_total: f64,
    qps: f64,
    pages_p50: usize,
    pages_p99: usize,
    /// First repeat: every buffer pool starts empty.
    hit_ratio_cold: f64,
    storage_reads_cold: usize,
    /// Last repeat: pools warmed by the preceding repeats (steady state).
    hit_ratio_warm: f64,
    storage_reads_warm: usize,
    digest: u64,
}

#[allow(clippy::too_many_arguments)]
fn to_json(
    side: usize,
    mapping: &str,
    queries: usize,
    repeats: usize,
    partition: Partition,
    cfg: &EngineConfig,
    entries: &[Entry],
    parity: bool,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"slpm.serve_throughput.v1\",\n");
    out.push_str(
        "  \"description\": \"Sharded/batched query serving: serial vs pooled throughput\",\n",
    );
    out.push_str(&format!("  \"grid\": [{side}, {side}],\n"));
    out.push_str(&format!("  \"mapping\": \"{mapping}\",\n"));
    out.push_str(&format!("  \"queries\": {queries},\n"));
    out.push_str(&format!("  \"repeats\": {repeats},\n"));
    out.push_str(&format!("  \"partition\": \"{partition}\",\n"));
    out.push_str(&format!(
        "  \"records_per_page\": {},\n  \"buffer_pages\": {},\n",
        cfg.records_per_page, cfg.buffer_pages
    ));
    // Single-core hosts cannot show pooled speedups; stamp the machine so
    // the recorded trajectory is read in context (as BENCH_pipeline.json
    // does).
    out.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    out.push_str(&format!("  \"parity\": {parity},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {}, \"threads\": {}, \"mode\": \"{}\", \
             \"seconds_total\": {:.6}, \"qps\": {:.1}, \"pages_p50\": {}, \
             \"pages_p99\": {}, \"hit_ratio_cold\": {:.4}, \"storage_reads_cold\": {}, \
             \"hit_ratio_warm\": {:.4}, \"storage_reads_warm\": {}, \
             \"digest\": \"{:016x}\"}}{}\n",
            e.shards,
            e.threads,
            e.mode,
            e.seconds_total,
            e.qps,
            e.pages_p50,
            e.pages_p99,
            e.hit_ratio_cold,
            e.storage_reads_cold,
            e.hit_ratio_warm,
            e.storage_reads_warm,
            e.digest,
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut side = 256usize;
    let mut shards = 4usize;
    let mut threads = 4usize;
    let mut queries = 1000usize;
    let mut repeats = 3usize;
    let mut mapping = String::from("hilbert");
    let mut partition = Partition::Contiguous;
    let mut json = false;
    let mut out_path = String::from("BENCH_serve.json");
    let mut i = 0;
    let bad = |flag: &str| -> ! {
        eprintln!("{flag} requires a positive integer");
        std::process::exit(2);
    };
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--grid" => {
                i += 1;
                side = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 4)
                    .unwrap_or_else(|| bad("--grid (side >= 4)"));
            }
            "--shards" => {
                i += 1;
                shards = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| bad("--shards"));
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| bad("--threads"));
            }
            "--queries" => {
                i += 1;
                queries = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| bad("--queries"));
            }
            "--repeats" => {
                i += 1;
                repeats = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| bad("--repeats"));
            }
            "--mapping" => {
                i += 1;
                mapping = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--mapping requires a name");
                    std::process::exit(2);
                });
            }
            "--partition" => {
                i += 1;
                partition = args
                    .get(i)
                    .and_then(|v| Partition::parse(v))
                    .unwrap_or_else(|| {
                        eprintln!("--partition must be contiguous or round-robin");
                        std::process::exit(2);
                    });
            }
            "--out" => {
                i += 1;
                out_path = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!(
                    "unknown flag '{other}' (try --grid N, --shards S, --threads T, \
                     --queries Q, --repeats R, --mapping M, --partition P, --json, --out PATH)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let spec = GridSpec::cube(side, 2);
    let order = match curve_order_by_name(&spec, &mapping) {
        Ok(order) => order,
        Err(msg) => {
            eprintln!("FAILED: {msg}");
            std::process::exit(1);
        }
    };
    let points = grid_points(&spec);
    let workload = mixed_workload(
        &spec,
        &WorkloadConfig {
            queries,
            ..Default::default()
        },
    );
    let base = EngineConfig {
        partition,
        ..Default::default()
    };

    println!(
        "{:>7} {:>8} {:>8} {:>10} {:>10} {:>9} {:>9} {:>10} {:>10} {:>18}",
        "shards",
        "threads",
        "mode",
        "seconds",
        "q/s",
        "pages p50",
        "pages p99",
        "hit cold",
        "hit warm",
        "digest"
    );
    let mut entries: Vec<Entry> = Vec::new();
    // The {1, S} × {1, T} matrix, deduplicated when S or T is 1.
    let mut combos: Vec<(usize, usize)> =
        vec![(1, 1), (shards, 1), (1, threads), (shards, threads)];
    combos.sort_unstable();
    combos.dedup();
    for (s, t) in combos {
        let cfg = EngineConfig {
            shards: s,
            threads: t,
            ..base
        };
        let engine = ServeEngine::new(&points, &order, cfg);
        // Buffer pools persist across repeats: the first replay is cold,
        // the last is steady-state. Record both, and time the whole loop.
        let start = Instant::now();
        let mut cold: Option<BatchReport> = None;
        let mut last: Option<BatchReport> = None;
        for r in 0..repeats {
            let report = engine.run(&workload);
            if r == 0 {
                cold = Some(report.clone());
            }
            last = Some(report);
        }
        let seconds_total = start.elapsed().as_secs_f64();
        let cold = cold.expect("at least one repeat");
        let report = last.expect("at least one repeat");
        let entry = Entry {
            shards: s,
            threads: t,
            mode: if t > 1 { "pooled" } else { "serial" },
            seconds_total,
            qps: queries as f64 * repeats as f64 / seconds_total,
            pages_p50: report.page_quantile(0.5),
            pages_p99: report.page_quantile(0.99),
            hit_ratio_cold: cold.buffer_stats().hit_ratio(),
            storage_reads_cold: cold.total_misses(),
            hit_ratio_warm: report.buffer_stats().hit_ratio(),
            storage_reads_warm: report.total_misses(),
            digest: report.digest,
        };
        println!(
            "{:>7} {:>8} {:>8} {:>9.4}s {:>10.0} {:>9} {:>9} {:>10.4} {:>10.4} {:>18}",
            entry.shards,
            entry.threads,
            entry.mode,
            entry.seconds_total,
            entry.qps,
            entry.pages_p50,
            entry.pages_p99,
            entry.hit_ratio_cold,
            entry.hit_ratio_warm,
            format!("{:016x}", entry.digest),
        );
        entries.push(entry);
    }

    // The parity contract: every configuration answers identically.
    let parity = entries.windows(2).all(|w| w[0].digest == w[1].digest);
    if !parity {
        eprintln!("FAILED: digests diverge across shard/thread configurations");
    }
    if json {
        let body = to_json(
            side, &mapping, queries, repeats, partition, &base, &entries, parity,
        );
        if let Err(e) = std::fs::write(&out_path, &body) {
            eprintln!("cannot write {out_path}: {e}");
            std::process::exit(1);
        }
        println!("\nwrote {out_path}");
    }
    if !parity {
        std::process::exit(1);
    }
}
