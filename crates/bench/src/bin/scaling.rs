//! Scaling study: Fiedler computation cost versus grid size.
//!
//! Demonstrates that the shift-invert path handles production-sized point
//! sets: square grids from 16x16 up to 256x256 (65 536 vertices). Prints
//! wall time, lambda_2 against the closed form, and the residual.
use slpm_graph::grid::{Connectivity, GridSpec};
use slpm_linalg::fiedler::{fiedler_pair, FiedlerOptions};
use std::time::Instant;

fn main() {
    println!(
        "{:>9}  {:>8}  {:>12}  {:>12}  {:>9}  {:>9}",
        "grid", "vertices", "lambda2", "closed form", "residual", "time"
    );
    for side in [16usize, 32, 64, 128, 256] {
        let spec = GridSpec::cube(side, 2);
        let lap = spec.graph(Connectivity::Orthogonal).laplacian();
        let t = Instant::now();
        let pair = fiedler_pair(&lap, &FiedlerOptions::default()).expect("connected grid");
        let elapsed = t.elapsed();
        let expect = 4.0 * (std::f64::consts::PI / (2.0 * side as f64)).sin().powi(2);
        println!(
            "{:>6}^2  {:>8}  {:>12.3e}  {:>12.3e}  {:>9.1e}  {:>8.2?}",
            side,
            spec.num_points(),
            pair.lambda2,
            expect,
            pair.residual,
            elapsed
        );
    }
}
