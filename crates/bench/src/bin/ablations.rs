//! Prints the three ablation studies from DESIGN.md.
use slpm_querysim::experiments::ablation;
use slpm_querysim::table::TextTable;

fn main() {
    let mut t = TextTable::new(["method", "lambda2", "residual", "2-sum cost"]);
    for r in ablation::eigensolver_agreement(16) {
        t.push_row([
            r.method,
            format!("{:.8}", r.lambda2),
            format!("{:.2e}", r.residual),
            format!("{:.1}", r.two_sum),
        ]);
    }
    println!(
        "== Ablation: eigensolver strategies (16x16 grid) ==\n{}",
        t.render()
    );

    let mut t = TextTable::new(["graph model", "lambda2", "worst adj.", "mean adj."]);
    for r in ablation::connectivity_comparison(8) {
        t.push_row([
            r.model,
            format!("{:.6}", r.lambda2),
            r.worst_adjacent.to_string(),
            format!("{:.2}", r.mean_adjacent),
        ]);
    }
    println!(
        "== Ablation: graph connectivity (8x8 grid) ==\n{}",
        t.render()
    );

    let mut t = TextTable::new(["affinity weight", "pair 1-D distance", "base 2-sum"]);
    for r in ablation::affinity_sweep(8, &[0.0, 0.5, 1.0, 2.0, 4.0, 8.0]) {
        t.push_row([
            format!("{:.1}", r.weight),
            r.pair_distance.to_string(),
            format!("{:.1}", r.base_two_sum),
        ]);
    }
    println!(
        "== Ablation: affinity edge weight (8x8 grid, corner pair) ==\n{}",
        t.render()
    );

    let mut t = TextTable::new(["ordering strategy", "2-sum", "bandwidth", "mean adj."]);
    for r in ablation::ordering_comparison(16) {
        t.push_row([
            r.strategy,
            format!("{:.0}", r.two_sum),
            r.bandwidth.to_string(),
            format!("{:.2}", r.mean_adjacent),
        ]);
    }
    println!(
        "== Ablation: ordering strategies (16x16 grid) ==\n{}",
        t.render()
    );
}
