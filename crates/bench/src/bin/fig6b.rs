//! Regenerates Figure 6b (range-query fairness, 4-D).
use slpm_querysim::experiments::fig6;
fn main() {
    let cfg = fig6::Fig6Config::default();
    println!("{}", fig6::run_fairness(&cfg).render());
}
