//! Streaming admission under load: arrival shapes × offered rates, with
//! per-entry SLO scorecards and an in-process streamed-vs-batch parity
//! check.
//!
//! Replays one reproducible mixed range/kNN workload through
//! `slpm_serve::stream::stream_serve` for every requested arrival shape
//! at two offered rates:
//!
//! * **headroom** — a base rate calibrated from the workload's simulated
//!   service cost (a fixed fraction of aggregate shard capacity), where
//!   the SLO must hold for every shape, and
//! * **overload** — a multiple of capacity, where the shed policy must
//!   drop work at the queue bound (and one block-policy entry shows the
//!   stall-instead-of-shed alternative).
//!
//! Because arrivals, queueing and the SLO clock all live on the
//! simulated clock, every number that feeds a gate is machine-
//! independent; wall-clock throughput is recorded as an observable only.
//! The run **fails** (nonzero exit) if
//!
//! * any entry's streamed digest differs from a one-shot batch run of
//!   its admitted subsequence (the streamed-vs-batch parity contract), or
//! * any headroom entry misses its SLO or sheds work (the `slo_gate`
//!   CI's `stream-smoke` job asserts), or
//! * the **fault sweep** fails its chaos gate (`fault_gate`, the CI
//!   `chaos-smoke` job asserts): a canned plan permanently killing one
//!   shard mid-stream must trip the breaker, swap slice epochs, keep
//!   every fault-free query bitwise identical to the unfaulted baseline
//!   and keep the fault-free p99 inside the SLO, and a transient flaky
//!   plan must recover inside the retry budget with zero degradation.
//!   `--fault-plan SPEC` replaces the canned permanent plan, or
//! * the **out-of-core sweep** fails its storage gate (`storage_gate`,
//!   the CI `oocore-smoke` job asserts): the same engine geometry served
//!   from a real page file on disk — `--page-file PATH` to reuse a
//!   `slpm pack` artifact, else a temp file packed in-process — must
//!   answer the whole workload bitwise identically to the in-memory
//!   engine (cold pool and warm pool), and on an ordered full-domain
//!   sweep with the buffer pool capped at ~10% of the file,
//!   linear-order readahead (`--readahead`, default 8) must cut demand
//!   misses versus the identical sweep without it. Cold-vs-warm wall
//!   throughput is recorded as an observable only.
//!
//! Usage:
//!   stream_throughput [--grid N] [--shards S] [--threads T]
//!                     [--queries Q] [--shapes a,b,..] [--mapping M]
//!                     [--queue-depth D] [--batch-delay-us U]
//!                     [--slo-us U] [--fault-plan SPEC]
//!                     [--page-file PATH] [--readahead N]
//!                     [--buffer-pages N] [--json] [--out PATH]
//!
//! `--json` writes the machine-readable results (schema
//! `slpm.serve_throughput.v5`) to PATH (default BENCH_serve.json); the
//! CI `stream-smoke` and `oocore-smoke` jobs upload that file as a
//! build artifact.

use slpm_graph::grid::GridSpec;
use slpm_querysim::mappings::curve_order_by_name;
use slpm_serve::arrival::{ArrivalConfig, ArrivalShape};
use slpm_serve::engine::{EngineConfig, Query, ServeEngine};
use slpm_serve::stream::{stream_serve, AdmissionPolicy, ServiceModel, StreamConfig, StreamReport};
use slpm_serve::workload::{grid_points, mixed_workload_labeled, WorkloadConfig};
use slpm_serve::FaultPlan;
use slpm_storage::{write_page_file, Mbr, PageLayout, PageMapper};
use std::path::PathBuf;
use std::time::Instant;

struct Entry {
    shape: ArrivalShape,
    rate_label: &'static str,
    rate_qps: f64,
    policy: AdmissionPolicy,
    report: StreamReport,
    parity: bool,
}

/// One fault-sweep run: a seeded plan streamed through a fresh engine,
/// scored against the unfaulted baseline of the same configuration.
struct FaultEntry {
    label: &'static str,
    plan: String,
    report: StreamReport,
    /// Every fault-free query answered bitwise identically (results,
    /// pages, runs) to the unfaulted baseline run.
    fault_free_identical: bool,
    /// Fault-free p99 stayed inside the SLO target.
    fault_slo_met: bool,
    /// Coverage came back clean and the digest matches the baseline
    /// (the expectation for transient plans inside the retry budget).
    recovered: bool,
    pass: bool,
}

/// The out-of-core sweep: the workload and an ordered full-domain scan
/// served from a real on-disk page file through a capped buffer pool.
struct StorageSweep {
    page_file: String,
    pages: usize,
    buffer_pages: usize,
    readahead: usize,
    cold_wall_qps: f64,
    warm_wall_qps: f64,
    memory_digest: u64,
    cold_digest: u64,
    warm_digest: u64,
    sweep_plain_misses: usize,
    sweep_readahead_misses: usize,
    sweep_prefetched: usize,
    sweep_prefetch_hits: usize,
    /// Disk == memory bitwise (cold and warm) and readahead cut demand
    /// misses on the ordered sweep. Pure counter arithmetic — identical
    /// on every machine; the wall qps fields are observables only.
    storage_gate: bool,
}

#[allow(clippy::too_many_arguments)]
fn to_json(
    side: usize,
    mapping: &str,
    queries: usize,
    shards: usize,
    threads: usize,
    cfg: &StreamConfig,
    base_rate: f64,
    overload_rate: f64,
    slo_gate: bool,
    parity: bool,
    fault_gate: bool,
    entries: &[Entry],
    fault_entries: &[FaultEntry],
    storage: &StorageSweep,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"slpm.serve_throughput.v5\",\n");
    out.push_str(
        "  \"description\": \"Streaming admission: arrival shapes x rates, SLO scorecards, shed/block accounting\",\n",
    );
    out.push_str(&format!("  \"grid\": [{side}, {side}],\n"));
    out.push_str(&format!("  \"mapping\": \"{mapping}\",\n"));
    out.push_str(&format!("  \"queries\": {queries},\n"));
    out.push_str(&format!("  \"shards\": {shards},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    let m = &cfg.service;
    out.push_str(&format!(
        "  \"service_model\": {{\"per_page_us\": {}, \"per_seek_us\": {}, \"per_unit_us\": {}}},\n",
        m.per_page_us, m.per_seek_us, m.per_unit_us
    ));
    out.push_str(&format!(
        "  \"batch_delay_us\": {}, \"max_batch\": {}, \"queue_depth\": {}, \"slo_target_us\": {},\n",
        cfg.batch_delay_us, cfg.max_batch, cfg.queue_depth, cfg.slo_us
    ));
    out.push_str(&format!(
        "  \"base_rate_qps\": {base_rate:.0},\n  \"overload_rate_qps\": {overload_rate:.0},\n"
    ));
    out.push_str(&format!("  \"slo_gate\": {slo_gate},\n"));
    out.push_str(&format!("  \"parity\": {parity},\n"));
    out.push_str(&format!("  \"fault_gate\": {fault_gate},\n"));
    out.push_str(&format!(
        "  \"storage\": {{\"page_file\": \"{}\", \"pages\": {}, \"buffer_pages\": {}, \
         \"readahead\": {}, \"cold_wall_qps\": {:.1}, \"warm_wall_qps\": {:.1}, \
         \"memory_digest\": \"{:016x}\", \"cold_digest\": \"{:016x}\", \
         \"warm_digest\": \"{:016x}\", \"sweep_plain_misses\": {}, \
         \"sweep_readahead_misses\": {}, \"sweep_prefetched\": {}, \
         \"sweep_prefetch_hits\": {}, \"storage_gate\": {}}},\n",
        storage.page_file,
        storage.pages,
        storage.buffer_pages,
        storage.readahead,
        storage.cold_wall_qps,
        storage.warm_wall_qps,
        storage.memory_digest,
        storage.cold_digest,
        storage.warm_digest,
        storage.sweep_plain_misses,
        storage.sweep_readahead_misses,
        storage.sweep_prefetched,
        storage.sweep_prefetch_hits,
        storage.storage_gate,
    ));
    out.push_str("  \"fault_entries\": [\n");
    for (i, e) in fault_entries.iter().enumerate() {
        let slo = &e.report.slo;
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"plan\": \"{}\", \"offered\": {}, \"admitted\": {}, \
             \"degraded\": {}, \"trips\": {}, \"epoch\": {}, \
             \"fault_free_p99_us\": {:.1}, \"fault_free_identical\": {}, \
             \"fault_slo_met\": {}, \"recovered\": {}, \
             \"degraded_digest\": \"{:016x}\", \"pass\": {}}}{}\n",
            e.label,
            e.plan,
            slo.offered,
            slo.admitted,
            slo.degraded,
            e.report.trips,
            e.report.epoch,
            slo.fault_free_p99_us,
            e.fault_free_identical,
            e.fault_slo_met,
            e.recovered,
            e.report.degraded_digest(),
            e.pass,
            if i + 1 == fault_entries.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let slo = &e.report.slo;
        let shed_by_class: Vec<String> = slo
            .shed_by_class
            .iter()
            .map(|(class, shed)| format!("{{\"class\": \"{class}\", \"shed\": {shed}}}"))
            .collect();
        out.push_str(&format!(
            "    {{\"shape\": \"{}\", \"rate\": \"{}\", \"rate_qps\": {:.0}, \
             \"policy\": \"{}\", \"offered\": {}, \"admitted\": {}, \"shed\": {}, \
             \"shed_by_class\": [{}], \"blocked_batches\": {}, \"blocked_us\": {:.1}, \
             \"micro_batches\": {}, \"max_queue_depth\": {}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}, \"max_us\": {:.1}, \
             \"violations\": {}, \"violation_pct\": {:.2}, \"slo_met\": {}, \
             \"sim_makespan_us\": {:.1}, \"wall_qps\": {:.1}, \
             \"digest\": \"{:016x}\", \"parity\": {}}}{}\n",
            e.shape,
            e.rate_label,
            e.rate_qps,
            e.policy,
            slo.offered,
            slo.admitted,
            slo.shed,
            shed_by_class.join(", "),
            slo.blocked_batches,
            slo.blocked_us,
            e.report.micro_batches,
            slo.max_queue_depth,
            slo.p50_us,
            slo.p99_us,
            slo.p999_us,
            slo.max_us,
            slo.violations,
            slo.violation_pct,
            slo.slo_met,
            e.report.sim_makespan_us,
            e.report.queries_per_second(),
            e.report.digest,
            e.parity,
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut side = 128usize;
    let mut shards = 4usize;
    let mut threads = 2usize;
    let mut queries = 400usize;
    let mut mapping = String::from("hilbert");
    let mut shapes: Vec<ArrivalShape> = ArrivalShape::ALL.to_vec();
    let mut queue_depth = 64usize;
    let mut batch_delay_us = 200u64;
    let mut slo_us = 2_000u64;
    let mut json = false;
    let mut fault_plan: Option<String> = None;
    let mut page_file: Option<String> = None;
    let mut readahead = 8usize;
    let mut buffer_pages = 0usize; // 0 = auto: ~10% of the file's pages
    let mut out_path = String::from("BENCH_serve.json");
    let mut i = 0;
    let bad = |flag: &str| -> ! {
        eprintln!("{flag} requires a positive integer");
        std::process::exit(2);
    };
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--grid" => {
                i += 1;
                side = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 4)
                    .unwrap_or_else(|| bad("--grid (side >= 4)"));
            }
            "--shards" => {
                i += 1;
                shards = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| bad("--shards"));
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| bad("--threads"));
            }
            "--queries" => {
                i += 1;
                queries = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| bad("--queries"));
            }
            "--queue-depth" => {
                i += 1;
                queue_depth = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| bad("--queue-depth"));
            }
            "--batch-delay-us" => {
                i += 1;
                batch_delay_us = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| bad("--batch-delay-us"));
            }
            "--slo-us" => {
                i += 1;
                slo_us = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| bad("--slo-us"));
            }
            "--shapes" => {
                i += 1;
                let spec = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--shapes requires a comma-separated list");
                    std::process::exit(2);
                });
                shapes = spec
                    .split(',')
                    .map(|s| {
                        ArrivalShape::parse(s.trim()).unwrap_or_else(|| {
                            eprintln!(
                                "unknown arrival shape '{s}' \
                                 (deterministic, poisson, bursty, diurnal)"
                            );
                            std::process::exit(2);
                        })
                    })
                    .collect();
                if shapes.is_empty() {
                    eprintln!("--shapes requires at least one shape");
                    std::process::exit(2);
                }
            }
            "--mapping" => {
                i += 1;
                mapping = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--mapping requires a name");
                    std::process::exit(2);
                });
            }
            "--out" => {
                i += 1;
                out_path = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            "--fault-plan" => {
                i += 1;
                let spec = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--fault-plan requires a plan spec (e.g. kill!:0@12)");
                    std::process::exit(2);
                });
                if let Err(e) = FaultPlan::parse(&spec) {
                    eprintln!("invalid --fault-plan: {e}");
                    std::process::exit(2);
                }
                fault_plan = Some(spec);
            }
            "--page-file" => {
                i += 1;
                page_file = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--page-file requires a path (e.g. from `slpm pack`)");
                    std::process::exit(2);
                }));
            }
            "--readahead" => {
                i += 1;
                readahead = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| bad("--readahead"));
            }
            "--buffer-pages" => {
                i += 1;
                buffer_pages = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| bad("--buffer-pages"));
            }
            other => {
                eprintln!(
                    "unknown flag '{other}' (try --grid N, --shards S, --threads T, \
                     --queries Q, --shapes a,b, --mapping M, --queue-depth D, \
                     --batch-delay-us U, --slo-us U, --fault-plan SPEC, \
                     --page-file PATH, --readahead N, --buffer-pages N, --json, \
                     --out PATH)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let spec = GridSpec::cube(side, 2);
    let order = match curve_order_by_name(&spec, &mapping) {
        Ok(order) => order,
        Err(msg) => {
            eprintln!("FAILED: {msg}");
            std::process::exit(1);
        }
    };
    let points = grid_points(&spec);
    let labeled = mixed_workload_labeled(
        &spec,
        &WorkloadConfig {
            queries,
            ..Default::default()
        },
    );
    let workload: Vec<Query> = labeled.iter().map(|(q, _)| q.clone()).collect();
    let labels: Vec<&'static str> = labeled.iter().map(|(_, l)| *l).collect();
    let engine = ServeEngine::new(
        &points,
        &order,
        EngineConfig {
            shards,
            threads,
            ..Default::default()
        },
    );

    // Calibrate the offered rates from the workload's *simulated* service
    // cost so the headroom point sits at a fixed utilisation on every
    // machine: capacity = shards / mean per-shard service time. Headroom
    // runs at 20% of capacity (bursty's 4x on-phase peak and diurnal's
    // 1.5x crest both stay below saturation); overload at 3x capacity.
    let service = ServiceModel::default();
    let planned = engine.plan_batch(&workload);
    let total_service_us: f64 = (0..planned.len())
        .map(|q| {
            planned
                .shard_loads(q)
                .iter()
                .map(|&(_, pages, runs)| {
                    service.per_unit_us
                        + runs as f64 * service.per_seek_us
                        + pages as f64 * service.per_page_us
                })
                // xtask:allow(float-reduce): serial fold in query order over a fixed plan — deterministic, and only calibrates the offered rate
                .sum::<f64>()
        })
        .sum();
    let capacity_qps = shards as f64 * queries as f64 * 1e6 / total_service_us;
    let base_rate = 0.2 * capacity_qps;
    let overload_rate = 3.0 * capacity_qps;
    println!(
        "calibration: mean service {:.1}us/query, capacity {:.0} q/s, \
         headroom {:.0} q/s, overload {:.0} q/s",
        total_service_us / queries as f64,
        capacity_qps,
        base_rate,
        overload_rate,
    );

    println!(
        "{:>14} {:>9} {:>10} {:>6} {:>9} {:>5} {:>9} {:>9} {:>9} {:>7} {:>6} {:>7}",
        "shape",
        "rate",
        "q/s",
        "policy",
        "admitted",
        "shed",
        "p50us",
        "p99us",
        "p999us",
        "viol%",
        "depth",
        "parity"
    );
    let mut entries: Vec<Entry> = Vec::new();
    let mut plan: Vec<(ArrivalShape, &'static str, f64, AdmissionPolicy)> = Vec::new();
    for &shape in &shapes {
        plan.push((shape, "headroom", base_rate, AdmissionPolicy::Shed));
        plan.push((shape, "overload", overload_rate, AdmissionPolicy::Shed));
    }
    // One block-policy overload point: everything admitted, stalls paid
    // in latency instead of shed work.
    plan.push((shapes[0], "overload", overload_rate, AdmissionPolicy::Block));
    for (shape, rate_label, rate_qps, policy) in plan {
        let cfg = StreamConfig {
            arrival: ArrivalConfig::new(shape, rate_qps, 42),
            batch_delay_us: batch_delay_us as f64,
            queue_depth,
            policy,
            slo_us: slo_us as f64,
            service,
            ..Default::default()
        };
        let report = stream_serve(&engine, &workload, &labels, &cfg)
            .expect("the fault-free sweep has no replay panics");
        // The parity contract, checked in-process for every entry: a
        // one-shot batch run of the admitted subsequence must produce
        // the identical digest.
        let admitted: Vec<Query> = report
            .admitted_idx
            .iter()
            .map(|&q| workload[q].clone())
            .collect();
        let parity = engine
            .run(&admitted)
            .expect("the fault-free sweep has no replay panics")
            .digest
            == report.digest;
        let slo = &report.slo;
        println!(
            "{:>14} {:>9} {:>10.0} {:>6} {:>9} {:>5} {:>9.1} {:>9.1} {:>9.1} {:>6.2}% {:>6} {:>7}",
            shape.to_string(),
            rate_label,
            rate_qps,
            policy.to_string(),
            slo.admitted,
            slo.shed,
            slo.p50_us,
            slo.p99_us,
            slo.p999_us,
            slo.violation_pct,
            slo.max_queue_depth,
            if parity { "ok" } else { "FAIL" },
        );
        entries.push(Entry {
            shape,
            rate_label,
            rate_qps,
            policy,
            report,
            parity,
        });
    }

    let parity = entries.iter().all(|e| e.parity);
    if !parity {
        eprintln!("FAILED: streamed digest diverges from one-shot batch execution");
    }
    // The SLO gate: at the calibrated headroom rate, every arrival shape
    // must meet the latency target without shedding anything. Purely
    // simulated-clock arithmetic — identical on every machine.
    let slo_gate = entries
        .iter()
        .filter(|e| e.rate_label == "headroom")
        .all(|e| e.report.slo.slo_met && e.report.slo.shed == 0);
    if !slo_gate {
        eprintln!("FAILED: a headroom entry missed its SLO or shed work");
    }
    let overload_sheds = entries
        .iter()
        .filter(|e| e.rate_label == "overload" && e.policy == AdmissionPolicy::Shed)
        .all(|e| e.report.slo.shed > 0);
    if !overload_sheds {
        // Informational: a too-generous queue bound hides the backpressure
        // path this bench exists to exercise.
        eprintln!("note: an overload entry shed nothing; consider a smaller --queue-depth");
    }
    println!(
        "slo gate (headroom, all shapes): {}  parity: {}",
        if slo_gate { "met" } else { "MISSED" },
        if parity { "ok" } else { "FAIL" },
    );

    // ---- Fault sweep (chaos gate) ----------------------------------
    // Stream the same workload at the headroom rate through fresh
    // engines: once clean (the baseline), then once per fault plan. The
    // canned permanent plan kills one of the shards mid-stream; the
    // transient plan must recover inside the retry budget. All scoring
    // is simulated-clock arithmetic, identical on every machine.
    let fault_cfg = StreamConfig {
        arrival: ArrivalConfig::new(shapes[0], base_rate, 42),
        batch_delay_us: batch_delay_us as f64,
        queue_depth,
        slo_us: slo_us as f64,
        service,
        ..Default::default()
    };
    let fresh_engine = || {
        ServeEngine::new(
            &points,
            &order,
            EngineConfig {
                shards,
                threads,
                ..Default::default()
            },
        )
    };
    let baseline = stream_serve(&fresh_engine(), &workload, &labels, &fault_cfg)
        .expect("the unfaulted baseline has no replay panics");
    let flaky_shard = 1.min(shards - 1);
    let plans: Vec<(&'static str, String)> = vec![
        (
            "permanent",
            fault_plan
                .clone()
                .unwrap_or_else(|| "kill!:0@12".to_string()),
        ),
        ("transient", format!("flaky:{flaky_shard}@0+2")),
    ];
    let mut fault_entries: Vec<FaultEntry> = Vec::new();
    for (label, plan) in plans {
        let engine = fresh_engine();
        engine.inject_faults(FaultPlan::parse(&plan).expect("plans are pre-validated"));
        let report = match stream_serve(&engine, &workload, &labels, &fault_cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("FAILED: fault sweep '{label}' errored: {e}");
                std::process::exit(1);
            }
        };
        // Fault-free bitwise identity: penalties never reach admission,
        // so the admitted sequence must match, and every non-degraded
        // query must answer with the identical (results, pages, runs).
        let mut fault_free_identical = report.admitted_idx == baseline.admitted_idx;
        if fault_free_identical {
            for (a, b) in report.outcomes.iter().zip(&baseline.outcomes) {
                if a.degraded_pages > 0 {
                    continue;
                }
                if a.results != b.results || a.pages != b.pages || a.runs != b.runs {
                    fault_free_identical = false;
                    break;
                }
            }
        }
        let fault_slo_met = report.slo.fault_free_p99_us <= report.slo.target_us;
        let recovered = report.coverage.is_clean() && report.digest == baseline.digest;
        let pass = match label {
            "transient" => fault_free_identical && recovered,
            // A user-supplied plan has unknown degradation; gate on the
            // universal contracts only.
            _ if fault_plan.is_some() => fault_free_identical && fault_slo_met,
            _ => {
                fault_free_identical
                    && fault_slo_met
                    && report.trips >= 1
                    && report.epoch >= 1
                    && report.slo.degraded > 0
            }
        };
        println!(
            "fault sweep [{label}] plan {plan}: admitted {} degraded {} trips {} \
             epoch {} fault-free p99 {:.1}us identical {} recovered {} -> {}",
            report.slo.admitted,
            report.slo.degraded,
            report.trips,
            report.epoch,
            report.slo.fault_free_p99_us,
            fault_free_identical,
            recovered,
            if pass { "pass" } else { "FAIL" },
        );
        fault_entries.push(FaultEntry {
            label,
            plan,
            report,
            fault_free_identical,
            fault_slo_met,
            recovered,
            pass,
        });
    }
    let fault_gate = fault_entries.iter().all(|e| e.pass);
    if !fault_gate {
        eprintln!("FAILED: the fault sweep missed its chaos gate");
    }
    println!(
        "fault gate (degraded serving): {}",
        if fault_gate { "met" } else { "MISSED" },
    );

    // ---- Out-of-core sweep (storage gate) --------------------------
    // The same engine geometry served from a real page file on disk,
    // through a buffer pool capped well under the file size. Two
    // deterministic contracts gate; wall throughput is an observable.
    let ecfg = EngineConfig {
        shards,
        threads,
        ..Default::default()
    };
    let mapper = PageMapper::new(&order, PageLayout::new(ecfg.records_per_page));
    let num_pages = mapper.num_pages();
    // Auto pool: ~10% of the file, floored so the prefetch budget (which
    // never evicts the demand page, so caps at capacity - 1) stays open.
    let pool = if buffer_pages > 0 {
        buffer_pages
    } else {
        (num_pages / 10).max(readahead + 2)
    };
    let (pf_path, temp_file) = match &page_file {
        Some(p) => (PathBuf::from(p), false),
        None => {
            let p = std::env::temp_dir().join(format!("slpm-stream-{}.pages", std::process::id()));
            if let Err(e) = write_page_file(&p, &mapper, ecfg.record_size) {
                eprintln!("FAILED: cannot write page file {}: {e}", p.display());
                std::process::exit(1);
            }
            (p, true)
        }
    };
    let disk_engine = |ra: usize| -> ServeEngine {
        ServeEngine::with_page_file(
            &points,
            &order,
            EngineConfig {
                buffer_pages: pool,
                readahead: ra,
                ..ecfg
            },
            pf_path.clone(),
        )
        .unwrap_or_else(|e| {
            eprintln!(
                "FAILED: cannot open page file {} (geometry/order must match \
                 this run's --grid/--mapping): {e}",
                pf_path.display()
            );
            std::process::exit(1);
        })
    };
    let memory_digest = engine.run(&workload).expect("no replay panic").digest;
    let oocore = disk_engine(readahead);
    let t0 = Instant::now();
    let cold = oocore.run(&workload).expect("no replay panic");
    let cold_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let warm = oocore.run(&workload).expect("no replay panic");
    let warm_secs = t1.elapsed().as_secs_f64();
    // The ordered sweep: each full-domain range is one monotone pass over
    // every page in linear order; with the pool capped at ~10% of the
    // file, the second pass re-faults everything the first evicted, so
    // demand misses stay high unless readahead hides them.
    let sweep: Vec<Query> = (0..2)
        .map(|_| {
            Query::Range(Mbr {
                lo: vec![0, 0],
                hi: vec![side as i64 - 1, side as i64 - 1],
            })
        })
        .collect();
    let ra_report = disk_engine(readahead).run(&sweep).expect("no replay panic");
    let plain_report = disk_engine(0).run(&sweep).expect("no replay panic");
    let ra_stats = ra_report.buffer_stats();
    let plain_stats = plain_report.buffer_stats();
    if temp_file {
        // xtask:allow(fs-only-in-storage): removes its own temp page file
        let _ = std::fs::remove_file(&pf_path);
    }
    let parity_ok = cold.digest == memory_digest
        && warm.digest == memory_digest
        && ra_report.digest == plain_report.digest;
    let readahead_ok = ra_stats.misses < plain_stats.misses && ra_stats.prefetch_hits > 0;
    let storage_gate = parity_ok && readahead_ok;
    println!(
        "out-of-core: {} pages, pool {pool}, readahead {readahead}: cold {:.0} q/s, \
         warm {:.0} q/s, sweep misses {} (readahead) vs {} (none), \
         prefetched {} ({} hit) -> {}",
        num_pages,
        queries as f64 / cold_secs,
        queries as f64 / warm_secs,
        ra_stats.misses,
        plain_stats.misses,
        ra_stats.prefetched,
        ra_stats.prefetch_hits,
        if storage_gate { "pass" } else { "FAIL" },
    );
    if !parity_ok {
        eprintln!("FAILED: disk-backed serving diverged from the in-memory engine");
    }
    if !readahead_ok {
        eprintln!("FAILED: readahead did not cut demand misses on the ordered sweep");
    }
    println!(
        "storage gate (out-of-core parity + readahead): {}",
        if storage_gate { "met" } else { "MISSED" },
    );
    let storage = StorageSweep {
        page_file: page_file.unwrap_or_else(|| "(temp)".to_string()),
        pages: num_pages,
        buffer_pages: pool,
        readahead,
        cold_wall_qps: queries as f64 / cold_secs,
        warm_wall_qps: queries as f64 / warm_secs,
        memory_digest,
        cold_digest: cold.digest,
        warm_digest: warm.digest,
        sweep_plain_misses: plain_stats.misses,
        sweep_readahead_misses: ra_stats.misses,
        sweep_prefetched: ra_stats.prefetched,
        sweep_prefetch_hits: ra_stats.prefetch_hits,
        storage_gate,
    };

    if json {
        let cfg = StreamConfig {
            arrival: ArrivalConfig::new(shapes[0], base_rate, 42),
            batch_delay_us: batch_delay_us as f64,
            queue_depth,
            slo_us: slo_us as f64,
            service,
            ..Default::default()
        };
        let body = to_json(
            side,
            &mapping,
            queries,
            shards,
            threads,
            &cfg,
            base_rate,
            overload_rate,
            slo_gate,
            parity,
            fault_gate,
            &entries,
            &fault_entries,
            &storage,
        );
        // xtask:allow(fs-only-in-storage): benches persist their JSON artifacts
        if let Err(e) = std::fs::write(&out_path, &body) {
            eprintln!("cannot write {out_path}: {e}");
            std::process::exit(1);
        }
        println!("\nwrote {out_path}");
    }
    if !parity || !slo_gate || !fault_gate || !storage_gate {
        std::process::exit(1);
    }
}
