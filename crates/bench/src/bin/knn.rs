//! Extra experiment: kNN scan-window sizes per mapping (paper Section 1
//! motivation: similarity search).
use slpm_querysim::experiments::knn;
fn main() {
    println!("{}", knn::run(&knn::KnnConfig::default()).render());
}
