//! Regenerates Figure 5a (nearest-neighbour worst case, 5-D).
use slpm_querysim::experiments::fig5;
fn main() {
    let cfg = fig5::Fig5Config::default();
    println!("{}", fig5::run_worst_case(&cfg).render());
}
