//! Regenerates Figure 3 (the 3×3 worked example).
fn main() {
    println!("{}", slpm_querysim::experiments::fig3::run().render());
}
