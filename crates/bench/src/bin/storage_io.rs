//! Extra experiment: measured page I/O and buffer hit rates per mapping.
use slpm_querysim::experiments::storage_io;
fn main() {
    let cfg = storage_io::StorageIoConfig::default();
    println!("{}", storage_io::render(&storage_io::run(&cfg), &cfg));
}
