//! Regenerates Figure 5b (nearest-neighbour fairness, 2-D).
use slpm_querysim::experiments::fig5;
fn main() {
    let cfg = fig5::Fig5Config::default();
    println!("{}", fig5::run_fairness(&cfg).render());
}
