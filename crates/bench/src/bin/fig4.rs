//! Regenerates Figure 4 (4- vs 8-connectivity variants). Usage: `fig4 [side]`.
fn main() {
    let side: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    println!("{}", slpm_querysim::experiments::fig4::run(side).render());
}
