//! End-to-end pipeline scaling: dense QL vs shift-invert Lanczos vs the
//! multilevel solver, 32x32 up to 1024x1024 (1,048,576 points).
//!
//! Unlike `scaling` (which times the bare eigensolver), this runs the whole
//! Spectral LPM pipeline per method — grid graph, Laplacian, degeneracy-
//! aware Fiedler solve, linear order — so the numbers are what a user of
//! `SpectralMapper` actually pays. Each method only runs up to the size it
//! is sensible at (dense is O(n^3); Lanczos shift-invert re-solves the full
//! graph every iteration); the multilevel path covers every size.
//!
//! Usage:
//!   pipeline_scale [--max-side N] [--threads N] [--oocore SIDE]
//!                  [--bisection SIDE] [--json] [--out PATH]
//!
//! `--threads N` (N > 1) additionally runs the multilevel path on N worker
//! threads at every size and **verifies in-process that the threaded
//! `LinearOrder` is identical to the serial one** (the parallel kernels
//! use fixed-chunk deterministic reductions, so any divergence is a bug
//! and fails the run). Baseline methods always run single-threaded so the
//! trajectory stays comparable across machines. Threaded runs execute on
//! a persistent `WorkerPool` through the `ScopeExecutor` seam — the same
//! path the CLI uses — and their dispatch-cost counters (parallel
//! engagements, backend jobs, chunk-grid cells) are recorded per entry.
//! Two gates ride on them: `dispatch_gate` requires the threaded jobs-
//! submitted count to stay strictly below the pre-chunk-plan baseline at
//! every gated side (the counters are machine-independent, so this holds
//! on any host), and `speedup_gate` requires threaded wall time to beat
//! serial per side whenever the host has ≥ 2 cores (vacuously true on a
//! single-core host, where threading can only add overhead).
//!
//! `--bisection SIDE` additionally runs the **recursive-bisection stage**
//! on a non-square SIDE × (3·SIDE/2) grid: the RSB order once with the
//! root coarsening hierarchy restricted to each half
//! (`reuse_hierarchy: true`) and once re-coarsening every fragment from
//! scratch. It gates on the two orders being rank-for-rank identical and
//! on the reuse run being faster.
//!
//! `--oocore SIDE` additionally runs the **out-of-core stage**: pack a
//! SIDE×SIDE grid's Hilbert order into an on-disk page file (at 2048 that
//! is 4,194,304 records — well past what the in-memory tier should hold)
//! and stream the whole file twice through a buffer pool capped at ~10%
//! of its pages, cold then warm, with and without readahead. The stage
//! uses the curve order rather than the spectral pipeline because its
//! subject is the storage tier at scale, not the eigensolver; it gates
//! (nonzero exit) on disk-read determinism (cold digest == warm digest ==
//! readahead-off digest) and on readahead cutting demand misses.
//!
//! `--json` additionally writes the machine-readable benchmark trajectory
//! (schema `slpm.pipeline_scale.v4`) to PATH (default BENCH_pipeline.json);
//! CI uploads that file as a build artifact on every push. The process
//! exits nonzero if any attempted solver path fails, a threaded run
//! diverges from serial, or the out-of-core, dispatch, speedup or
//! bisection gate misses.

use slpm_graph::grid::{Connectivity, GridSpec};
use slpm_linalg::fiedler::{FiedlerMethod, FiedlerOptions};
use slpm_linalg::parallel::{dispatch_counters, DispatchCounters};
use slpm_linalg::Pool;
use slpm_querysim::mappings::curve_order_by_name;
use slpm_serve::engine::{EngineConfig, Query, ServeEngine};
use slpm_serve::workload::grid_points;
use slpm_serve::WorkerPool;
use slpm_storage::{write_page_file, Mbr, PageLayout, PageMapper};
use spectral_lpm::{
    objective, rsb_order_on, LinearOrder, RsbOptions, SpectralConfig, SpectralMapper,
};
use std::time::Instant;

/// Grid sides exercised (squares, 4-connectivity).
const SIDES: [usize; 6] = [32, 64, 128, 256, 512, 1024];
/// Dense QL is O(n^3): cap it at 32x32.
const DENSE_MAX_VERTICES: usize = 1_100;
/// Shift-invert Lanczos iterates full-graph CG solves: cap at 256x256.
const LANCZOS_MAX_VERTICES: usize = 66_000;
/// Backend jobs the 2-thread multilevel run submitted per side *before*
/// the chunk-plan dispatcher (recorded on this trajectory's own
/// instrumentation; one job per engagement). The counters depend only on
/// the problem-size sequence and the thread count, never on the host, so
/// `dispatch_gate` can require every threaded run to land strictly below
/// these on any machine. Sides under 128 never engaged the parallel path
/// (all kernels below the spawn thresholds) and are ungated.
const DISPATCH_BASELINE_JOBS: [(usize, u64); 4] =
    [(128, 15_652), (256, 26_418), (512, 35_798), (1024, 64_552)];

/// Run `f` on the executor the requested thread count implies: a
/// persistent [`WorkerPool`] via the `ScopeExecutor` seam when threaded
/// (the pool outlives every kernel call of the solve), the serial pool
/// otherwise.
fn with_pool<T>(threads: usize, f: impl FnOnce(&Pool<'_>) -> T) -> T {
    if threads > 1 {
        let workers = WorkerPool::new(threads);
        f(&workers.linalg_pool())
    } else {
        f(&Pool::serial())
    }
}

struct Entry {
    side: usize,
    vertices: usize,
    edges: usize,
    method: &'static str,
    threads: usize,
    seconds: f64,
    lambda2: f64,
    residual: f64,
    two_sum: f64,
    /// For threaded multilevel runs: rank-for-rank identical to the serial
    /// order at the same side (always true for serial entries).
    order_matches_serial: bool,
    /// Dispatch-cost counters accumulated during this run (parallel
    /// engagements, backend jobs, chunk-grid cells) — all zero for serial
    /// runs, machine-independent for a given (side, threads).
    dispatch: DispatchCounters,
}

fn method_name(m: FiedlerMethod) -> &'static str {
    match m {
        FiedlerMethod::Dense => "dense",
        FiedlerMethod::ShiftedDirect => "shifted-direct",
        FiedlerMethod::ShiftInvert => "shift-invert",
        FiedlerMethod::Multilevel => "multilevel",
    }
}

fn run_one(
    spec: &GridSpec,
    method: FiedlerMethod,
    threads: usize,
) -> Result<(Entry, LinearOrder), String> {
    let mapper = SpectralMapper::new(SpectralConfig {
        fiedler: FiedlerOptions {
            method,
            ..Default::default()
        },
        ..Default::default()
    });
    let graph = spec.graph(Connectivity::Orthogonal);
    let before = dispatch_counters();
    let start = Instant::now();
    let mapping = with_pool(threads, |pool| mapper.map_grid_on(spec, pool))
        .map_err(|e| format!("{} on {:?}: {e}", method_name(method), spec.dims()))?;
    let seconds = start.elapsed().as_secs_f64();
    let dispatch = dispatch_counters().since(&before);
    let entry = Entry {
        side: spec.dim(0),
        vertices: spec.num_points(),
        edges: mapping.num_edges,
        method: method_name(method),
        threads,
        seconds,
        lambda2: mapping.fiedler.lambda2,
        residual: mapping.fiedler.residual,
        two_sum: objective::two_sum_cost(&graph, &mapping.order),
        order_matches_serial: true,
        dispatch,
    };
    Ok((entry, mapping.order))
}

/// The out-of-core stage: a page file bigger than its buffer pool,
/// streamed end to end. All gate inputs are page/miss counters and
/// digests — deterministic; the wall-clock fields are observables.
struct Oocore {
    side: usize,
    records: usize,
    pages: usize,
    file_bytes: u64,
    buffer_pages: usize,
    readahead: usize,
    pack_seconds: f64,
    cold_seconds: f64,
    warm_seconds: f64,
    digest: u64,
    cold_misses: usize,
    warm_misses: usize,
    plain_misses: usize,
    prefetched: usize,
    gate: bool,
}

/// Pack `side`²'s Hilbert order into a temp page file and stream the
/// whole file through a pool capped at ~10% of its pages: cold, warm,
/// and readahead-off passes.
fn run_oocore(side: usize) -> Result<Oocore, String> {
    let spec = GridSpec::cube(side, 2);
    let order = curve_order_by_name(&spec, "hilbert")?;
    let ecfg = EngineConfig {
        shards: 4,
        ..Default::default()
    };
    let mapper = PageMapper::new(&order, PageLayout::new(ecfg.records_per_page));
    let pages = mapper.num_pages();
    let readahead = 8usize;
    let pool = (pages / 10).max(readahead + 2);
    let path = std::env::temp_dir().join(format!("slpm-oocore-{}.pages", std::process::id()));
    let t = Instant::now();
    let header =
        write_page_file(&path, &mapper, ecfg.record_size).map_err(|e| format!("pack: {e}"))?;
    let pack_seconds = t.elapsed().as_secs_f64();
    println!(
        "oocore: packed {side}x{side} ({} records) -> {} pages, {} bytes, pool {pool} \
         ({:.1}% of file), {pack_seconds:.2}s",
        order.len(),
        pages,
        header.file_len(),
        100.0 * pool as f64 / pages as f64,
    );

    let points = grid_points(&spec);
    let sweep = vec![Query::Range(Mbr {
        lo: vec![0, 0],
        hi: vec![side as i64 - 1, side as i64 - 1],
    })];
    let mk = |ra: usize| {
        ServeEngine::with_page_file(
            &points,
            &order,
            EngineConfig {
                buffer_pages: pool,
                readahead: ra,
                ..ecfg
            },
            path.clone(),
        )
        .map_err(|e| format!("open: {e}"))
    };
    let engine = mk(readahead)?;
    let t = Instant::now();
    let cold = engine.run(&sweep).map_err(|e| format!("cold sweep: {e}"))?;
    let cold_seconds = t.elapsed().as_secs_f64();
    let cold_misses = cold.buffer_stats().misses;
    let t = Instant::now();
    let warm = engine.run(&sweep).map_err(|e| format!("warm sweep: {e}"))?;
    let warm_seconds = t.elapsed().as_secs_f64();
    let warm_misses = warm.buffer_stats().misses;
    let plain = mk(0)?
        .run(&sweep)
        .map_err(|e| format!("readahead-off sweep: {e}"))?;
    // xtask:allow(fs-only-in-storage): removes its own temp page file
    let _ = std::fs::remove_file(&path);
    let prefetched = cold.buffer_stats().prefetched;
    let gate = cold.digest == warm.digest
        && cold.digest == plain.digest
        && cold_misses < plain.buffer_stats().misses
        && prefetched > 0;
    println!(
        "oocore: cold {cold_seconds:.2}s ({cold_misses} misses), warm {warm_seconds:.2}s \
         ({warm_misses} misses), readahead-off {} misses, prefetched {prefetched} -> {}",
        plain.buffer_stats().misses,
        if gate { "pass" } else { "FAIL" },
    );
    Ok(Oocore {
        side,
        records: order.len(),
        pages,
        file_bytes: header.file_len(),
        buffer_pages: pool,
        readahead,
        pack_seconds,
        cold_seconds,
        warm_seconds,
        digest: cold.digest,
        cold_misses,
        warm_misses,
        plain_misses: plain.buffer_stats().misses,
        prefetched,
        gate,
    })
}

/// The recursive-bisection stage: the same RSB order computed with the
/// root hierarchy restricted per half vs re-coarsened per fragment.
struct Bisection {
    dims: [usize; 2],
    vertices: usize,
    threads: usize,
    reuse_seconds: f64,
    scratch_seconds: f64,
    orders_match: bool,
    gate: bool,
}

/// RSB on a non-square `side x (3*side/2)` grid (λ₂ simple, so the order
/// is solver-independent), once with hierarchy reuse and once without.
/// Both runs share the leaf size and eigensolver configuration; only the
/// coarsening strategy differs, so the orders must agree rank for rank.
fn run_bisection(side: usize, threads: usize) -> Result<Bisection, String> {
    let dims = [side, side * 3 / 2];
    let spec = GridSpec::new(&dims);
    let graph = spec.graph(Connectivity::Orthogonal);
    let config = SpectralConfig {
        fiedler: FiedlerOptions {
            method: FiedlerMethod::Multilevel,
            ..Default::default()
        },
        ..Default::default()
    };
    let run = |reuse: bool| -> Result<(f64, LinearOrder), String> {
        let opts = RsbOptions {
            leaf_size: 64,
            config: config.clone(),
            reuse_hierarchy: reuse,
        };
        let start = Instant::now();
        let order = with_pool(threads, |pool| rsb_order_on(&graph, &opts, pool))
            .map_err(|e| format!("rsb (reuse={reuse}) on {dims:?}: {e}"))?;
        Ok((start.elapsed().as_secs_f64(), order))
    };
    let (reuse_seconds, reuse_order) = run(true)?;
    let (scratch_seconds, scratch_order) = run(false)?;
    let orders_match = reuse_order.ranks() == scratch_order.ranks();
    let gate = orders_match && reuse_seconds < scratch_seconds;
    println!(
        "bisection: {}x{} rsb reuse {reuse_seconds:.2}s vs re-coarsen {scratch_seconds:.2}s \
         ({:.2}x), orders {} -> {}",
        dims[0],
        dims[1],
        scratch_seconds / reuse_seconds,
        if orders_match { "match" } else { "DIVERGE" },
        if gate { "pass" } else { "FAIL" },
    );
    Ok(Bisection {
        dims,
        vertices: spec.num_points(),
        threads,
        reuse_seconds,
        scratch_seconds,
        orders_match,
        gate,
    })
}

/// `dispatch_gate`: every threaded multilevel entry at a side with a
/// recorded pre-chunk-plan baseline must have submitted strictly fewer
/// backend jobs than that baseline. Counter-based, so host-independent;
/// vacuously true when no threaded entries were recorded.
fn dispatch_gate(entries: &[Entry]) -> bool {
    entries
        .iter()
        .filter(|e| e.method == "multilevel" && e.threads > 1)
        .all(|e| {
            DISPATCH_BASELINE_JOBS
                .iter()
                .find(|(side, _)| *side == e.side)
                .is_none_or(|(_, baseline)| e.dispatch.jobs_submitted < *baseline)
        })
}

/// `speedup_gate`: threaded multilevel wall time beats serial at every
/// side — demanded only when the host actually has ≥ 2 cores to run the
/// workers on (single-core hosts time-slice the pool, where threading can
/// only break even at best; there the gate is vacuously true).
fn speedup_gate(entries: &[Entry], host_parallelism: usize) -> bool {
    if host_parallelism < 2 {
        return true;
    }
    SIDES.iter().all(|&side| {
        let serial = entries
            .iter()
            .find(|e| e.side == side && e.method == "multilevel" && e.threads == 1);
        let threaded = entries
            .iter()
            .find(|e| e.side == side && e.method == "multilevel" && e.threads > 1);
        match (serial, threaded) {
            (Some(s), Some(t)) => t.seconds < s.seconds,
            _ => true,
        }
    })
}

fn to_json(
    max_side: usize,
    threads: usize,
    entries: &[Entry],
    oocore: Option<&Oocore>,
    bisection: Option<&Bisection>,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"slpm.pipeline_scale.v4\",\n");
    out.push_str(
        "  \"description\": \"End-to-end Spectral LPM pipeline wall time per eigensolver\",\n",
    );
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    out.push_str(&format!("  \"max_side\": {max_side},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"host_parallelism\": {host_parallelism},\n"));
    match bisection {
        None => out.push_str("  \"bisection\": null,\n"),
        Some(b) => out.push_str(&format!(
            "  \"bisection\": {{\"dims\": [{}, {}], \"vertices\": {}, \"threads\": {}, \
             \"reuse_seconds\": {:.3}, \"scratch_seconds\": {:.3}, \
             \"orders_match\": {}, \"bisection_gate\": {}}},\n",
            b.dims[0],
            b.dims[1],
            b.vertices,
            b.threads,
            b.reuse_seconds,
            b.scratch_seconds,
            b.orders_match,
            b.gate,
        )),
    }
    match oocore {
        None => out.push_str("  \"oocore\": null,\n"),
        Some(o) => out.push_str(&format!(
            "  \"oocore\": {{\"side\": {}, \"records\": {}, \"pages\": {}, \
             \"file_bytes\": {}, \"buffer_pages\": {}, \"readahead\": {}, \
             \"pack_seconds\": {:.3}, \"cold_seconds\": {:.3}, \"warm_seconds\": {:.3}, \
             \"digest\": \"{:016x}\", \"cold_misses\": {}, \"warm_misses\": {}, \
             \"plain_misses\": {}, \"prefetched\": {}, \"oocore_gate\": {}}},\n",
            o.side,
            o.records,
            o.pages,
            o.file_bytes,
            o.buffer_pages,
            o.readahead,
            o.pack_seconds,
            o.cold_seconds,
            o.warm_seconds,
            o.digest,
            o.cold_misses,
            o.warm_misses,
            o.plain_misses,
            o.prefetched,
            o.gate,
        )),
    }
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"side\": {}, \"vertices\": {}, \"edges\": {}, \"method\": \"{}\", \
             \"threads\": {}, \"seconds\": {:.6}, \"lambda2\": {:.9e}, \"residual\": {:.3e}, \
             \"two_sum\": {:.1}, \"order_matches_serial\": {}, \
             \"scope_entries\": {}, \"jobs_submitted\": {}, \"chunks_executed\": {}}}{}\n",
            e.side,
            e.vertices,
            e.edges,
            e.method,
            e.threads,
            e.seconds,
            e.lambda2,
            e.residual,
            e.two_sum,
            e.order_matches_serial,
            e.dispatch.scope_entries,
            e.dispatch.jobs_submitted,
            e.dispatch.chunks_executed,
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    // Headline speedup: serial multilevel vs the best other serial path.
    out.push_str("  \"speedups\": [\n");
    let mut lines = Vec::new();
    for &side in SIDES.iter().filter(|&&s| s <= max_side) {
        let ml = entries
            .iter()
            .find(|e| e.side == side && e.method == "multilevel" && e.threads == 1);
        let best_other = entries
            .iter()
            .filter(|e| e.side == side && e.method != "multilevel")
            .min_by(|a, b| a.seconds.partial_cmp(&b.seconds).expect("finite times"));
        if let (Some(ml), Some(other)) = (ml, best_other) {
            lines.push(format!(
                "    {{\"side\": {side}, \"baseline\": \"{}\", \"baseline_seconds\": {:.6}, \
                 \"multilevel_seconds\": {:.6}, \"speedup\": {:.2}}}",
                other.method,
                other.seconds,
                ml.seconds,
                other.seconds / ml.seconds
            ));
        }
    }
    out.push_str(&lines.join(",\n"));
    out.push_str("\n  ],\n");
    // Threading speedup: serial vs threaded multilevel, per side.
    out.push_str("  \"thread_speedups\": [\n");
    let mut lines = Vec::new();
    for &side in SIDES.iter().filter(|&&s| s <= max_side) {
        let serial = entries
            .iter()
            .find(|e| e.side == side && e.method == "multilevel" && e.threads == 1);
        let threaded = entries
            .iter()
            .find(|e| e.side == side && e.method == "multilevel" && e.threads > 1);
        if let (Some(s1), Some(st)) = (serial, threaded) {
            lines.push(format!(
                "    {{\"side\": {side}, \"threads\": {}, \"serial_seconds\": {:.6}, \
                 \"threaded_seconds\": {:.6}, \"speedup\": {:.2}, \
                 \"order_matches_serial\": {}}}",
                st.threads,
                s1.seconds,
                st.seconds,
                s1.seconds / st.seconds,
                st.order_matches_serial
            ));
        }
    }
    out.push_str(&lines.join(",\n"));
    out.push_str("\n  ],\n");
    out.push_str(&format!(
        "  \"dispatch_gate\": {},\n",
        dispatch_gate(entries)
    ));
    out.push_str(&format!(
        "  \"speedup_gate\": {}\n",
        speedup_gate(entries, host_parallelism)
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut max_side = 1024usize;
    let mut threads = 1usize;
    let mut oocore_side = 0usize; // 0 = stage off
    let mut bisection_side = 0usize; // 0 = stage off
    let mut json = false;
    let mut out_path = String::from("BENCH_pipeline.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--max-side" => {
                i += 1;
                max_side = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--max-side requires a positive integer");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&t| t >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--threads requires a positive integer");
                        std::process::exit(2);
                    });
            }
            "--out" => {
                i += 1;
                out_path = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            "--oocore" => {
                i += 1;
                oocore_side = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&s| s >= 16)
                    .unwrap_or_else(|| {
                        eprintln!("--oocore requires a grid side >= 16");
                        std::process::exit(2);
                    });
            }
            "--bisection" => {
                i += 1;
                bisection_side = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&s| s >= 16)
                    .unwrap_or_else(|| {
                        eprintln!("--bisection requires a grid side >= 16");
                        std::process::exit(2);
                    });
            }
            other => {
                eprintln!(
                    "unknown flag '{other}' (try --max-side N, --threads N, --oocore SIDE, \
                     --bisection SIDE, --json, --out PATH)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if !SIDES.iter().any(|&s| s <= max_side) {
        // A too-small (or zero) --max-side would otherwise record an empty
        // trajectory and exit 0 — exactly the silent success the CI
        // perf-smoke job must not produce.
        eprintln!(
            "--max-side {max_side} selects no grids (smallest is {}x{})",
            SIDES[0], SIDES[0]
        );
        std::process::exit(2);
    }

    println!(
        "{:>6}  {:>8}  {:>14}  {:>7}  {:>10}  {:>12}  {:>9}  {:>14}",
        "grid", "vertices", "method", "threads", "time", "lambda2", "residual", "2-sum"
    );
    let mut entries: Vec<Entry> = Vec::new();
    let mut failed = false;
    let print_entry = |e: &Entry| {
        println!(
            "{:>4}^2  {:>8}  {:>14}  {:>7}  {:>9.3}s  {:>12.4e}  {:>9.1e}  {:>14.0}",
            e.side, e.vertices, e.method, e.threads, e.seconds, e.lambda2, e.residual, e.two_sum
        );
        if e.dispatch.scope_entries > 0 {
            println!(
                "        dispatch: {} engagements, {} jobs, {} chunks",
                e.dispatch.scope_entries, e.dispatch.jobs_submitted, e.dispatch.chunks_executed
            );
        }
    };
    for &side in SIDES.iter().filter(|&&s| s <= max_side) {
        let spec = GridSpec::cube(side, 2);
        let n = spec.num_points();
        let mut methods = Vec::new();
        if n <= DENSE_MAX_VERTICES {
            methods.push(FiedlerMethod::Dense);
        }
        if n <= LANCZOS_MAX_VERTICES {
            methods.push(FiedlerMethod::ShiftInvert);
        }
        for method in methods {
            match run_one(&spec, method, 1) {
                Ok((e, _)) => {
                    print_entry(&e);
                    entries.push(e);
                }
                Err(msg) => {
                    eprintln!("FAILED: {msg}");
                    failed = true;
                }
            }
        }
        // Multilevel: serial always; threaded additionally when requested,
        // with an order-parity check against the serial run.
        let serial_order = match run_one(&spec, FiedlerMethod::Multilevel, 1) {
            Ok((e, order)) => {
                print_entry(&e);
                entries.push(e);
                Some(order)
            }
            Err(msg) => {
                eprintln!("FAILED: {msg}");
                failed = true;
                None
            }
        };
        // Without a serial order there is nothing to compare against (the
        // serial failure was already reported); skip rather than record a
        // bogus parity verdict for a run whose order never diverged.
        if threads > 1 {
            if let Some(serial_order) = &serial_order {
                match run_one(&spec, FiedlerMethod::Multilevel, threads) {
                    Ok((mut e, order)) => {
                        e.order_matches_serial = serial_order.ranks() == order.ranks();
                        if !e.order_matches_serial {
                            eprintln!(
                                "FAILED: threaded ({threads}) multilevel order diverges from \
                                 serial at {side}x{side}"
                            );
                            failed = true;
                        }
                        print_entry(&e);
                        entries.push(e);
                    }
                    Err(msg) => {
                        eprintln!("FAILED: {msg}");
                        failed = true;
                    }
                }
            } else {
                eprintln!(
                    "skipping threaded ({threads}) multilevel at {side}x{side}: \
                     no serial order to verify against"
                );
            }
        }
    }

    // ---- Out-of-core stage ------------------------------------------
    let oocore = if oocore_side > 0 {
        match run_oocore(oocore_side) {
            Ok(o) => {
                if !o.gate {
                    eprintln!("FAILED: the out-of-core stage missed its gate");
                    failed = true;
                }
                Some(o)
            }
            Err(msg) => {
                eprintln!("FAILED: {msg}");
                failed = true;
                None
            }
        }
    } else {
        None
    };

    // ---- Recursive-bisection stage ----------------------------------
    let bisection = if bisection_side > 0 {
        match run_bisection(bisection_side, threads) {
            Ok(b) => {
                if !b.gate {
                    eprintln!("FAILED: the recursive-bisection stage missed its gate");
                    failed = true;
                }
                Some(b)
            }
            Err(msg) => {
                eprintln!("FAILED: {msg}");
                failed = true;
                None
            }
        }
    } else {
        None
    };

    // ---- Dispatch / speedup gates -----------------------------------
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    if !dispatch_gate(&entries) {
        eprintln!(
            "FAILED: dispatch_gate — a threaded run submitted at least as many backend jobs \
             as the pre-chunk-plan baseline"
        );
        failed = true;
    }
    if !speedup_gate(&entries, host_parallelism) {
        eprintln!(
            "FAILED: speedup_gate — threaded multilevel slower than serial on a \
             {host_parallelism}-core host"
        );
        failed = true;
    }

    if json {
        let body = to_json(
            max_side,
            threads,
            &entries,
            oocore.as_ref(),
            bisection.as_ref(),
        );
        // xtask:allow(fs-only-in-storage): benches persist their JSON artifacts
        if let Err(e) = std::fs::write(&out_path, &body) {
            eprintln!("cannot write {out_path}: {e}");
            failed = true;
        } else {
            println!("\nwrote {out_path}");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
