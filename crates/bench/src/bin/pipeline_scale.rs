//! End-to-end pipeline scaling: dense QL vs shift-invert Lanczos vs the
//! multilevel solver, 32x32 up to 512x512.
//!
//! Unlike `scaling` (which times the bare eigensolver), this runs the whole
//! Spectral LPM pipeline per method — grid graph, Laplacian, degeneracy-
//! aware Fiedler solve, linear order — so the numbers are what a user of
//! `SpectralMapper` actually pays. Each method only runs up to the size it
//! is sensible at (dense is O(n^3); Lanczos shift-invert re-solves the full
//! graph every iteration); the multilevel path covers every size.
//!
//! Usage:
//!   pipeline_scale [--max-side N] [--json] [--out PATH]
//!
//! `--json` additionally writes the machine-readable benchmark trajectory
//! (schema `slpm.pipeline_scale.v1`) to PATH (default BENCH_pipeline.json);
//! CI uploads that file as a build artifact on every push. The process
//! exits nonzero if any attempted solver path fails.

use slpm_graph::grid::{Connectivity, GridSpec};
use slpm_linalg::fiedler::{FiedlerMethod, FiedlerOptions};
use spectral_lpm::{objective, SpectralConfig, SpectralMapper};
use std::time::Instant;

/// Grid sides exercised (squares, 4-connectivity).
const SIDES: [usize; 5] = [32, 64, 128, 256, 512];
/// Dense QL is O(n^3): cap it at 32x32.
const DENSE_MAX_VERTICES: usize = 1_100;
/// Shift-invert Lanczos iterates full-graph CG solves: cap at 256x256.
const LANCZOS_MAX_VERTICES: usize = 66_000;

struct Entry {
    side: usize,
    vertices: usize,
    edges: usize,
    method: &'static str,
    seconds: f64,
    lambda2: f64,
    residual: f64,
    two_sum: f64,
}

fn method_name(m: FiedlerMethod) -> &'static str {
    match m {
        FiedlerMethod::Dense => "dense",
        FiedlerMethod::ShiftedDirect => "shifted-direct",
        FiedlerMethod::ShiftInvert => "shift-invert",
        FiedlerMethod::Multilevel => "multilevel",
    }
}

fn run_one(spec: &GridSpec, method: FiedlerMethod) -> Result<Entry, String> {
    let mapper = SpectralMapper::new(SpectralConfig {
        fiedler: FiedlerOptions {
            method,
            ..Default::default()
        },
        ..Default::default()
    });
    let graph = spec.graph(Connectivity::Orthogonal);
    let start = Instant::now();
    let mapping = mapper
        .map_grid(spec)
        .map_err(|e| format!("{} on {:?}: {e}", method_name(method), spec.dims()))?;
    let seconds = start.elapsed().as_secs_f64();
    Ok(Entry {
        side: spec.dim(0),
        vertices: spec.num_points(),
        edges: mapping.num_edges,
        method: method_name(method),
        seconds,
        lambda2: mapping.fiedler.lambda2,
        residual: mapping.fiedler.residual,
        two_sum: objective::two_sum_cost(&graph, &mapping.order),
    })
}

fn to_json(max_side: usize, entries: &[Entry]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"slpm.pipeline_scale.v1\",\n");
    out.push_str(
        "  \"description\": \"End-to-end Spectral LPM pipeline wall time per eigensolver\",\n",
    );
    out.push_str(&format!("  \"max_side\": {max_side},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"side\": {}, \"vertices\": {}, \"edges\": {}, \"method\": \"{}\", \
             \"seconds\": {:.6}, \"lambda2\": {:.9e}, \"residual\": {:.3e}, \
             \"two_sum\": {:.1}}}{}\n",
            e.side,
            e.vertices,
            e.edges,
            e.method,
            e.seconds,
            e.lambda2,
            e.residual,
            e.two_sum,
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    // Headline speedup: multilevel vs the best other path, per side.
    out.push_str("  \"speedups\": [\n");
    let mut lines = Vec::new();
    for &side in SIDES.iter().filter(|&&s| s <= max_side) {
        let ml = entries
            .iter()
            .find(|e| e.side == side && e.method == "multilevel");
        let best_other = entries
            .iter()
            .filter(|e| e.side == side && e.method != "multilevel")
            .min_by(|a, b| a.seconds.partial_cmp(&b.seconds).expect("finite times"));
        if let (Some(ml), Some(other)) = (ml, best_other) {
            lines.push(format!(
                "    {{\"side\": {side}, \"baseline\": \"{}\", \"baseline_seconds\": {:.6}, \
                 \"multilevel_seconds\": {:.6}, \"speedup\": {:.2}}}",
                other.method,
                other.seconds,
                ml.seconds,
                other.seconds / ml.seconds
            ));
        }
    }
    out.push_str(&lines.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut max_side = 512usize;
    let mut json = false;
    let mut out_path = String::from("BENCH_pipeline.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--max-side" => {
                i += 1;
                max_side = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--max-side requires a positive integer");
                    std::process::exit(2);
                });
            }
            "--out" => {
                i += 1;
                out_path = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown flag '{other}' (try --max-side N, --json, --out PATH)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if !SIDES.iter().any(|&s| s <= max_side) {
        // A too-small (or zero) --max-side would otherwise record an empty
        // trajectory and exit 0 — exactly the silent success the CI
        // perf-smoke job must not produce.
        eprintln!(
            "--max-side {max_side} selects no grids (smallest is {}x{})",
            SIDES[0], SIDES[0]
        );
        std::process::exit(2);
    }

    println!(
        "{:>6}  {:>8}  {:>14}  {:>10}  {:>12}  {:>9}  {:>14}",
        "grid", "vertices", "method", "time", "lambda2", "residual", "2-sum"
    );
    let mut entries: Vec<Entry> = Vec::new();
    let mut failed = false;
    for &side in SIDES.iter().filter(|&&s| s <= max_side) {
        let spec = GridSpec::cube(side, 2);
        let n = spec.num_points();
        let mut methods = Vec::new();
        if n <= DENSE_MAX_VERTICES {
            methods.push(FiedlerMethod::Dense);
        }
        if n <= LANCZOS_MAX_VERTICES {
            methods.push(FiedlerMethod::ShiftInvert);
        }
        methods.push(FiedlerMethod::Multilevel);
        for method in methods {
            match run_one(&spec, method) {
                Ok(e) => {
                    println!(
                        "{:>4}^2  {:>8}  {:>14}  {:>9.3}s  {:>12.4e}  {:>9.1e}  {:>14.0}",
                        e.side, e.vertices, e.method, e.seconds, e.lambda2, e.residual, e.two_sum
                    );
                    entries.push(e);
                }
                Err(msg) => {
                    eprintln!("FAILED: {msg}");
                    failed = true;
                }
            }
        }
    }

    if json {
        let body = to_json(max_side, &entries);
        if let Err(e) = std::fs::write(&out_path, &body) {
            eprintln!("cannot write {out_path}: {e}");
            failed = true;
        } else {
            println!("\nwrote {out_path}");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
