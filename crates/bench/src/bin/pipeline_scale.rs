//! End-to-end pipeline scaling: dense QL vs shift-invert Lanczos vs the
//! multilevel solver, 32x32 up to 1024x1024 (1,048,576 points).
//!
//! Unlike `scaling` (which times the bare eigensolver), this runs the whole
//! Spectral LPM pipeline per method — grid graph, Laplacian, degeneracy-
//! aware Fiedler solve, linear order — so the numbers are what a user of
//! `SpectralMapper` actually pays. Each method only runs up to the size it
//! is sensible at (dense is O(n^3); Lanczos shift-invert re-solves the full
//! graph every iteration); the multilevel path covers every size.
//!
//! Usage:
//!   pipeline_scale [--max-side N] [--threads N] [--json] [--out PATH]
//!
//! `--threads N` (N > 1) additionally runs the multilevel path on N worker
//! threads at every size and **verifies in-process that the threaded
//! `LinearOrder` is identical to the serial one** (the parallel kernels
//! use fixed-chunk deterministic reductions, so any divergence is a bug
//! and fails the run). Baseline methods always run single-threaded so the
//! trajectory stays comparable across machines.
//!
//! `--json` additionally writes the machine-readable benchmark trajectory
//! (schema `slpm.pipeline_scale.v2`) to PATH (default BENCH_pipeline.json);
//! CI uploads that file as a build artifact on every push. The process
//! exits nonzero if any attempted solver path fails or a threaded run
//! diverges from serial.

use slpm_graph::grid::{Connectivity, GridSpec};
use slpm_linalg::fiedler::{FiedlerMethod, FiedlerOptions};
use spectral_lpm::{objective, LinearOrder, SpectralConfig, SpectralMapper};
use std::time::Instant;

/// Grid sides exercised (squares, 4-connectivity).
const SIDES: [usize; 6] = [32, 64, 128, 256, 512, 1024];
/// Dense QL is O(n^3): cap it at 32x32.
const DENSE_MAX_VERTICES: usize = 1_100;
/// Shift-invert Lanczos iterates full-graph CG solves: cap at 256x256.
const LANCZOS_MAX_VERTICES: usize = 66_000;

struct Entry {
    side: usize,
    vertices: usize,
    edges: usize,
    method: &'static str,
    threads: usize,
    seconds: f64,
    lambda2: f64,
    residual: f64,
    two_sum: f64,
    /// For threaded multilevel runs: rank-for-rank identical to the serial
    /// order at the same side (always true for serial entries).
    order_matches_serial: bool,
}

fn method_name(m: FiedlerMethod) -> &'static str {
    match m {
        FiedlerMethod::Dense => "dense",
        FiedlerMethod::ShiftedDirect => "shifted-direct",
        FiedlerMethod::ShiftInvert => "shift-invert",
        FiedlerMethod::Multilevel => "multilevel",
    }
}

fn run_one(
    spec: &GridSpec,
    method: FiedlerMethod,
    threads: usize,
) -> Result<(Entry, LinearOrder), String> {
    let mapper = SpectralMapper::new(SpectralConfig {
        fiedler: FiedlerOptions {
            method,
            threads: Some(threads),
            ..Default::default()
        },
        ..Default::default()
    });
    let graph = spec.graph(Connectivity::Orthogonal);
    let start = Instant::now();
    let mapping = mapper
        .map_grid(spec)
        .map_err(|e| format!("{} on {:?}: {e}", method_name(method), spec.dims()))?;
    let seconds = start.elapsed().as_secs_f64();
    let entry = Entry {
        side: spec.dim(0),
        vertices: spec.num_points(),
        edges: mapping.num_edges,
        method: method_name(method),
        threads,
        seconds,
        lambda2: mapping.fiedler.lambda2,
        residual: mapping.fiedler.residual,
        two_sum: objective::two_sum_cost(&graph, &mapping.order),
        order_matches_serial: true,
    };
    Ok((entry, mapping.order))
}

fn to_json(max_side: usize, threads: usize, entries: &[Entry]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"slpm.pipeline_scale.v2\",\n");
    out.push_str(
        "  \"description\": \"End-to-end Spectral LPM pipeline wall time per eigensolver\",\n",
    );
    out.push_str(&format!("  \"max_side\": {max_side},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"side\": {}, \"vertices\": {}, \"edges\": {}, \"method\": \"{}\", \
             \"threads\": {}, \"seconds\": {:.6}, \"lambda2\": {:.9e}, \"residual\": {:.3e}, \
             \"two_sum\": {:.1}, \"order_matches_serial\": {}}}{}\n",
            e.side,
            e.vertices,
            e.edges,
            e.method,
            e.threads,
            e.seconds,
            e.lambda2,
            e.residual,
            e.two_sum,
            e.order_matches_serial,
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    // Headline speedup: serial multilevel vs the best other serial path.
    out.push_str("  \"speedups\": [\n");
    let mut lines = Vec::new();
    for &side in SIDES.iter().filter(|&&s| s <= max_side) {
        let ml = entries
            .iter()
            .find(|e| e.side == side && e.method == "multilevel" && e.threads == 1);
        let best_other = entries
            .iter()
            .filter(|e| e.side == side && e.method != "multilevel")
            .min_by(|a, b| a.seconds.partial_cmp(&b.seconds).expect("finite times"));
        if let (Some(ml), Some(other)) = (ml, best_other) {
            lines.push(format!(
                "    {{\"side\": {side}, \"baseline\": \"{}\", \"baseline_seconds\": {:.6}, \
                 \"multilevel_seconds\": {:.6}, \"speedup\": {:.2}}}",
                other.method,
                other.seconds,
                ml.seconds,
                other.seconds / ml.seconds
            ));
        }
    }
    out.push_str(&lines.join(",\n"));
    out.push_str("\n  ],\n");
    // Threading speedup: serial vs threaded multilevel, per side.
    out.push_str("  \"thread_speedups\": [\n");
    let mut lines = Vec::new();
    for &side in SIDES.iter().filter(|&&s| s <= max_side) {
        let serial = entries
            .iter()
            .find(|e| e.side == side && e.method == "multilevel" && e.threads == 1);
        let threaded = entries
            .iter()
            .find(|e| e.side == side && e.method == "multilevel" && e.threads > 1);
        if let (Some(s1), Some(st)) = (serial, threaded) {
            lines.push(format!(
                "    {{\"side\": {side}, \"threads\": {}, \"serial_seconds\": {:.6}, \
                 \"threaded_seconds\": {:.6}, \"speedup\": {:.2}, \
                 \"order_matches_serial\": {}}}",
                st.threads,
                s1.seconds,
                st.seconds,
                s1.seconds / st.seconds,
                st.order_matches_serial
            ));
        }
    }
    out.push_str(&lines.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut max_side = 1024usize;
    let mut threads = 1usize;
    let mut json = false;
    let mut out_path = String::from("BENCH_pipeline.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--max-side" => {
                i += 1;
                max_side = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--max-side requires a positive integer");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&t| t >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--threads requires a positive integer");
                        std::process::exit(2);
                    });
            }
            "--out" => {
                i += 1;
                out_path = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!(
                    "unknown flag '{other}' (try --max-side N, --threads N, --json, --out PATH)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if !SIDES.iter().any(|&s| s <= max_side) {
        // A too-small (or zero) --max-side would otherwise record an empty
        // trajectory and exit 0 — exactly the silent success the CI
        // perf-smoke job must not produce.
        eprintln!(
            "--max-side {max_side} selects no grids (smallest is {}x{})",
            SIDES[0], SIDES[0]
        );
        std::process::exit(2);
    }

    println!(
        "{:>6}  {:>8}  {:>14}  {:>7}  {:>10}  {:>12}  {:>9}  {:>14}",
        "grid", "vertices", "method", "threads", "time", "lambda2", "residual", "2-sum"
    );
    let mut entries: Vec<Entry> = Vec::new();
    let mut failed = false;
    let print_entry = |e: &Entry| {
        println!(
            "{:>4}^2  {:>8}  {:>14}  {:>7}  {:>9.3}s  {:>12.4e}  {:>9.1e}  {:>14.0}",
            e.side, e.vertices, e.method, e.threads, e.seconds, e.lambda2, e.residual, e.two_sum
        );
    };
    for &side in SIDES.iter().filter(|&&s| s <= max_side) {
        let spec = GridSpec::cube(side, 2);
        let n = spec.num_points();
        let mut methods = Vec::new();
        if n <= DENSE_MAX_VERTICES {
            methods.push(FiedlerMethod::Dense);
        }
        if n <= LANCZOS_MAX_VERTICES {
            methods.push(FiedlerMethod::ShiftInvert);
        }
        for method in methods {
            match run_one(&spec, method, 1) {
                Ok((e, _)) => {
                    print_entry(&e);
                    entries.push(e);
                }
                Err(msg) => {
                    eprintln!("FAILED: {msg}");
                    failed = true;
                }
            }
        }
        // Multilevel: serial always; threaded additionally when requested,
        // with an order-parity check against the serial run.
        let serial_order = match run_one(&spec, FiedlerMethod::Multilevel, 1) {
            Ok((e, order)) => {
                print_entry(&e);
                entries.push(e);
                Some(order)
            }
            Err(msg) => {
                eprintln!("FAILED: {msg}");
                failed = true;
                None
            }
        };
        // Without a serial order there is nothing to compare against (the
        // serial failure was already reported); skip rather than record a
        // bogus parity verdict for a run whose order never diverged.
        if threads > 1 {
            if let Some(serial_order) = &serial_order {
                match run_one(&spec, FiedlerMethod::Multilevel, threads) {
                    Ok((mut e, order)) => {
                        e.order_matches_serial = serial_order.ranks() == order.ranks();
                        if !e.order_matches_serial {
                            eprintln!(
                                "FAILED: threaded ({threads}) multilevel order diverges from \
                                 serial at {side}x{side}"
                            );
                            failed = true;
                        }
                        print_entry(&e);
                        entries.push(e);
                    }
                    Err(msg) => {
                        eprintln!("FAILED: {msg}");
                        failed = true;
                    }
                }
            } else {
                eprintln!(
                    "skipping threaded ({threads}) multilevel at {side}x{side}: \
                     no serial order to verify against"
                );
            }
        }
    }

    if json {
        let body = to_json(max_side, threads, &entries);
        if let Err(e) = std::fs::write(&out_path, &body) {
            eprintln!("cannot write {out_path}: {e}");
            failed = true;
        } else {
            println!("\nwrote {out_path}");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
