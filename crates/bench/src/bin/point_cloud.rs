//! Extra experiment: Spectral LPM on clustered non-grid point sets.
use slpm_querysim::experiments::point_cloud;
fn main() {
    let cfg = point_cloud::PointCloudConfig::default();
    println!("{}", point_cloud::render(&point_cloud::run(&cfg), &cfg));
}
