//! Extra experiment: parallel response time over M round-robin disks.
use slpm_querysim::experiments::declustering;
fn main() {
    let cfg = declustering::DeclusterConfig::default();
    println!("{}", declustering::render(&declustering::run(&cfg), &cfg));
}
