//! Regenerates Figure 6a (range-query worst case, 4-D) plus the
//! partial-query stress variant.
use slpm_querysim::experiments::fig6;
fn main() {
    let cfg = fig6::Fig6Config::default();
    println!("{}", fig6::run_worst_case(&cfg).render());
    println!("{}", fig6::run_worst_case_partial(&cfg).render());
}
