//! Regenerates Figure 1 (fractal boundary effect). Usage: `fig1 [side]`.
fn main() {
    let side: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let result = slpm_querysim::experiments::fig1::run(side);
    println!("{}", result.render());
    if side == 4 {
        println!(
            "Paper's drawn-pair values (orientation-specific): Peano 14, Gray 9, Hilbert 5.\n\
             Our curve orientations give the worst adjacent stretches above; the\n\
             boundary-effect phenomenon (fractals ≫ non-fractals) is the reproduced claim."
        );
    }
}
