//! Extra experiment: R-tree packing quality and query cost per mapping.
use slpm_querysim::experiments::rtree_packing;
fn main() {
    let cfg = rtree_packing::RtreeConfig::default();
    println!("{}", rtree_packing::render(&rtree_packing::run(&cfg), &cfg));
}
