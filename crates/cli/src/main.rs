//! Thin entry point: parse, execute, print; errors to stderr with exit 2.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match slpm_cli::args::parse(&args).and_then(|cmd| slpm_cli::commands::execute(&cmd)) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
