//! Hand-rolled argument parsing for the `slpm` binary.

use slpm_serve::arrival::ArrivalShape;
use slpm_serve::engine::KnnPlanner;
use slpm_serve::shard::Partition;
use slpm_serve::stream::AdmissionPolicy;
use std::fmt;

/// A mapping selectable on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingChoice {
    /// Row-major sweep.
    Sweep,
    /// Boustrophedon snake.
    Snake,
    /// Z-order ("Peano" in the paper).
    Peano,
    /// Original base-3 Peano.
    TruePeano,
    /// Gray-coded curve.
    Gray,
    /// Hilbert curve.
    Hilbert,
    /// Spectral LPM, 4-connectivity.
    Spectral,
    /// Spectral LPM, 8-connectivity.
    Spectral8,
}

impl MappingChoice {
    /// Parse a mapping name (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s.to_ascii_lowercase().as_str() {
            "sweep" => MappingChoice::Sweep,
            "snake" => MappingChoice::Snake,
            "peano" | "z" | "zorder" | "z-order" | "morton" => MappingChoice::Peano,
            "truepeano" | "true-peano" | "peano3" => MappingChoice::TruePeano,
            "gray" => MappingChoice::Gray,
            "hilbert" => MappingChoice::Hilbert,
            "spectral" => MappingChoice::Spectral,
            "spectral8" => MappingChoice::Spectral8,
            _ => return None,
        })
    }
}

impl fmt::Display for MappingChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MappingChoice::Sweep => "sweep",
            MappingChoice::Snake => "snake",
            MappingChoice::Peano => "peano",
            MappingChoice::TruePeano => "truepeano",
            MappingChoice::Gray => "gray",
            MappingChoice::Hilbert => "hilbert",
            MappingChoice::Spectral => "spectral",
            MappingChoice::Spectral8 => "spectral8",
        };
        f.write_str(s)
    }
}

/// A parsed command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `slpm order --grid AxBx… --mapping M [--csv] [--threads N]`
    Order {
        /// Grid extents.
        dims: Vec<usize>,
        /// Which mapping.
        mapping: MappingChoice,
        /// Emit CSV instead of a grid/point listing.
        csv: bool,
        /// Eigensolver worker threads (spectral mappings only); `None` =
        /// machine default. Never changes the computed order.
        threads: Option<usize>,
    },
    /// `slpm fiedler --grid AxBx…
    /// [--method dense|shift-invert|shifted-direct|multilevel|auto]
    /// [--threads N]`
    Fiedler {
        /// Grid extents.
        dims: Vec<usize>,
        /// Eigensolver method name.
        method: String,
        /// Eigensolver worker threads; `None` = machine default.
        threads: Option<usize>,
    },
    /// `slpm figure <id>` where id ∈ fig1, fig3, fig4, fig5a, fig5b,
    /// fig6a, fig6b.
    Figure {
        /// Figure id.
        id: String,
    },
    /// `slpm experiment <name>` where name ∈ knn, storage, rtree,
    /// decluster, pointcloud, ablations.
    Experiment {
        /// Experiment name.
        name: String,
    },
    /// `slpm report --grid AxB --mapping M` — quality report of an order.
    Report {
        /// Grid extents.
        dims: Vec<usize>,
        /// Which mapping.
        mapping: MappingChoice,
    },
    /// `slpm pack --grid AxB --out FILE [--mapping M] [--page-records N]
    /// [--record-size B]` — write the grid's records to a disk page file
    /// in linear-order sequence, for `slpm serve --page-file`.
    Pack {
        /// Grid extents.
        dims: Vec<usize>,
        /// Which mapping lays out the file (default Hilbert).
        mapping: MappingChoice,
        /// Output path of the page file.
        out: String,
        /// Records per page.
        page_records: usize,
        /// Bytes per record payload.
        record_size: usize,
    },
    /// `slpm serve --grid AxB [--mapping M] [--shards S] [--threads T]
    /// [--queries Q] [--seed N] [--partition contiguous|round-robin]
    /// [--buffer-pages N] [--page-records N] [--inflight B]
    /// [--knn-planner best-first|expanding-ball]
    /// [--page-file FILE] [--readahead N]` — run a mixed range/kNN
    /// workload through the sharded serving engine.
    Serve {
        /// Grid extents.
        dims: Vec<usize>,
        /// Which mapping lays out the store (default Hilbert).
        mapping: MappingChoice,
        /// Number of shards.
        shards: usize,
        /// Worker threads (1 = serial baseline, no pool).
        threads: usize,
        /// Queries in the generated batch.
        queries: usize,
        /// Workload seed.
        seed: u64,
        /// Page → shard placement.
        partition: Partition,
        /// LRU frames per shard.
        buffer_pages: usize,
        /// Records per page.
        page_records: usize,
        /// Concurrently admitted batches the workload is split into
        /// (1 = one batch, the serial-admission baseline).
        inflight: usize,
        /// kNN planning algorithm.
        planner: KnnPlanner,
        /// Streaming mode: serve the workload as an open-loop arrival
        /// stream with admission control and SLO accounting instead of
        /// one closed-loop batch.
        stream: bool,
        /// Streaming: mean arrival rate in queries per second.
        rate: u64,
        /// Streaming: the arrival-process shape.
        arrival: ArrivalShape,
        /// Streaming: micro-batch window in simulated µs.
        batch_delay_us: u64,
        /// Streaming: micro-batch size cap (a full batch dispatches
        /// early).
        max_batch: usize,
        /// Streaming: per-shard bound on queued replay units.
        queue_depth: usize,
        /// Streaming: what happens at the bound (shed or block).
        admission: AdmissionPolicy,
        /// Streaming: SLO latency target in simulated µs.
        slo_us: u64,
        /// Seeded fault plan (validated `FaultPlan` grammar), `None` =
        /// fault-free.
        fault_plan: Option<String>,
        /// Replay attempts per unit (1 = no retry).
        retry: u32,
        /// Per-attempt timeout in simulated µs.
        timeout_us: u64,
        /// Base retry backoff in simulated µs (doubles per attempt).
        backoff_us: u64,
        /// Consecutive doomed units that trip a shard's breaker.
        breaker_threshold: u32,
        /// Units an open breaker fast-fails before probing.
        probe_cooldown: u32,
        /// Serve pages from this disk page file (written by `slpm pack`
        /// under the same grid, mapping and page geometry) instead of
        /// materialising them in memory.
        page_file: Option<String>,
        /// Run-readahead window per demand miss (0 = off; only
        /// meaningful with a buffer pool smaller than the working set).
        readahead: usize,
    },
    /// `slpm help`
    Help,
}

/// Parse failures, with a message suitable for direct printing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Parse `AxBxC` grid syntax (e.g. `8x8`, `4x4x4x4`).
pub fn parse_dims(s: &str) -> Result<Vec<usize>, ParseError> {
    let dims: Result<Vec<usize>, _> = s.split(['x', 'X']).map(str::parse::<usize>).collect();
    match dims {
        Ok(d) if !d.is_empty() && d.iter().all(|&x| x > 0) => Ok(d),
        _ => Err(ParseError(format!(
            "invalid grid '{s}': expected AxB... with positive extents"
        ))),
    }
}

/// Extract the value following a `--flag`.
fn take_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, ParseError> {
    *i += 1;
    args.get(*i)
        .map(String::as_str)
        .ok_or_else(|| ParseError(format!("{flag} requires a value")))
}

/// Parse a `--threads` value (a positive integer).
fn parse_threads(args: &[String], i: &mut usize) -> Result<usize, ParseError> {
    parse_positive(args, i, "--threads")
}

/// Parse a positive-integer flag value.
fn parse_positive(args: &[String], i: &mut usize, flag: &str) -> Result<usize, ParseError> {
    let v = take_value(args, i, flag)?;
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(ParseError(format!(
            "invalid {flag} '{v}': expected a positive integer"
        ))),
    }
}

/// Parse a non-negative integer flag value (0 is meaningful, e.g. a
/// probe cooldown of zero probes immediately after a trip).
fn parse_nonneg(args: &[String], i: &mut usize, flag: &str) -> Result<u64, ParseError> {
    let v = take_value(args, i, flag)?;
    v.parse::<u64>()
        .map_err(|_| ParseError(format!("invalid {flag} '{v}': expected an integer >= 0")))
}

/// Parse a full argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let cmd = args
        .first()
        .map(String::as_str)
        .ok_or_else(|| ParseError("no command; try `slpm help`".into()))?;
    match cmd {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "order" => {
            let mut dims = None;
            let mut mapping = None;
            let mut csv = false;
            let mut threads = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--grid" => dims = Some(parse_dims(take_value(args, &mut i, "--grid")?)?),
                    "--mapping" => {
                        let v = take_value(args, &mut i, "--mapping")?;
                        mapping = Some(MappingChoice::parse(v).ok_or_else(|| {
                            ParseError(format!(
                                "unknown mapping '{v}' (try sweep, snake, peano, truepeano, \
                                 gray, hilbert, spectral, spectral8)"
                            ))
                        })?);
                    }
                    "--csv" => csv = true,
                    "--threads" => threads = Some(parse_threads(args, &mut i)?),
                    other => return Err(ParseError(format!("unknown flag '{other}'"))),
                }
                i += 1;
            }
            Ok(Command::Order {
                dims: dims.ok_or_else(|| ParseError("order requires --grid".into()))?,
                mapping: mapping.ok_or_else(|| ParseError("order requires --mapping".into()))?,
                csv,
                threads,
            })
        }
        "fiedler" => {
            let mut dims = None;
            let mut method = "shift-invert".to_string();
            let mut threads = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--grid" => dims = Some(parse_dims(take_value(args, &mut i, "--grid")?)?),
                    "--method" => method = take_value(args, &mut i, "--method")?.to_string(),
                    "--threads" => threads = Some(parse_threads(args, &mut i)?),
                    other => return Err(ParseError(format!("unknown flag '{other}'"))),
                }
                i += 1;
            }
            if ![
                "dense",
                "shift-invert",
                "shifted-direct",
                "multilevel",
                "auto",
            ]
            .contains(&method.as_str())
            {
                return Err(ParseError(format!(
                    "unknown method '{method}' (dense, shift-invert, shifted-direct, \
                     multilevel, auto)"
                )));
            }
            Ok(Command::Fiedler {
                dims: dims.ok_or_else(|| ParseError("fiedler requires --grid".into()))?,
                method,
                threads,
            })
        }
        "figure" => {
            let id = args
                .get(1)
                .ok_or_else(|| ParseError("figure requires an id (fig1..fig6b)".into()))?;
            let known = ["fig1", "fig3", "fig4", "fig5a", "fig5b", "fig6a", "fig6b"];
            if !known.contains(&id.as_str()) {
                return Err(ParseError(format!(
                    "unknown figure '{id}' (known: {})",
                    known.join(", ")
                )));
            }
            Ok(Command::Figure { id: id.clone() })
        }
        "experiment" => {
            let name = args
                .get(1)
                .ok_or_else(|| ParseError("experiment requires a name".into()))?;
            let known = [
                "knn",
                "storage",
                "rtree",
                "decluster",
                "pointcloud",
                "ablations",
            ];
            if !known.contains(&name.as_str()) {
                return Err(ParseError(format!(
                    "unknown experiment '{name}' (known: {})",
                    known.join(", ")
                )));
            }
            Ok(Command::Experiment { name: name.clone() })
        }
        "pack" => {
            let mut dims = None;
            let mut mapping = MappingChoice::Hilbert;
            let mut out = None;
            let mut page_records = 64usize;
            let mut record_size = 64usize;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--grid" => dims = Some(parse_dims(take_value(args, &mut i, "--grid")?)?),
                    "--mapping" => {
                        let v = take_value(args, &mut i, "--mapping")?;
                        mapping = MappingChoice::parse(v)
                            .ok_or_else(|| ParseError(format!("unknown mapping '{v}'")))?;
                    }
                    "--out" => out = Some(take_value(args, &mut i, "--out")?.to_string()),
                    "--page-records" => {
                        page_records = parse_positive(args, &mut i, "--page-records")?
                    }
                    "--record-size" => record_size = parse_positive(args, &mut i, "--record-size")?,
                    other => return Err(ParseError(format!("unknown flag '{other}'"))),
                }
                i += 1;
            }
            Ok(Command::Pack {
                dims: dims.ok_or_else(|| ParseError("pack requires --grid".into()))?,
                mapping,
                out: out.ok_or_else(|| ParseError("pack requires --out".into()))?,
                page_records,
                record_size,
            })
        }
        "serve" => {
            let mut dims = None;
            let mut mapping = MappingChoice::Hilbert;
            let mut shards = 2usize;
            let mut threads = 1usize;
            let mut queries = 1000usize;
            let mut seed = 42u64;
            let mut partition = Partition::Contiguous;
            let mut buffer_pages = 64usize;
            let mut page_records = 64usize;
            let mut inflight = 1usize;
            let mut planner = KnnPlanner::BestFirst;
            let mut stream = false;
            let mut rate = 20_000u64;
            let mut arrival = ArrivalShape::Poisson;
            let mut batch_delay_us = 200u64;
            let mut max_batch = 32usize;
            let mut queue_depth = 64usize;
            let mut admission = AdmissionPolicy::Shed;
            let mut slo_us = 2_000u64;
            let mut fault_plan = None;
            let mut retry = 3u32;
            let mut timeout_us = 10_000u64;
            let mut backoff_us = 100u64;
            let mut breaker_threshold = 3u32;
            let mut probe_cooldown = 4u32;
            let mut page_file = None;
            let mut readahead = 0usize;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--grid" => dims = Some(parse_dims(take_value(args, &mut i, "--grid")?)?),
                    "--mapping" => {
                        let v = take_value(args, &mut i, "--mapping")?;
                        mapping = MappingChoice::parse(v)
                            .ok_or_else(|| ParseError(format!("unknown mapping '{v}'")))?;
                    }
                    "--shards" => shards = parse_positive(args, &mut i, "--shards")?,
                    "--threads" => threads = parse_threads(args, &mut i)?,
                    "--queries" => queries = parse_positive(args, &mut i, "--queries")?,
                    "--seed" => {
                        let v = take_value(args, &mut i, "--seed")?;
                        seed = v.parse::<u64>().map_err(|_| {
                            ParseError(format!("invalid --seed '{v}': expected an integer"))
                        })?;
                    }
                    "--partition" => {
                        let v = take_value(args, &mut i, "--partition")?;
                        partition = Partition::parse(v).ok_or_else(|| {
                            ParseError(format!("unknown partition '{v}' (contiguous, round-robin)"))
                        })?;
                    }
                    "--buffer-pages" => {
                        buffer_pages = parse_positive(args, &mut i, "--buffer-pages")?
                    }
                    "--page-records" => {
                        page_records = parse_positive(args, &mut i, "--page-records")?
                    }
                    "--inflight" => inflight = parse_positive(args, &mut i, "--inflight")?,
                    "--knn-planner" => {
                        let v = take_value(args, &mut i, "--knn-planner")?;
                        planner = KnnPlanner::parse(v).ok_or_else(|| {
                            ParseError(format!(
                                "unknown kNN planner '{v}' (best-first, expanding-ball)"
                            ))
                        })?;
                    }
                    "--stream" => stream = true,
                    "--rate" => rate = parse_positive(args, &mut i, "--rate")? as u64,
                    "--arrival" => {
                        let v = take_value(args, &mut i, "--arrival")?;
                        arrival = ArrivalShape::parse(v).ok_or_else(|| {
                            ParseError(format!(
                                "unknown arrival shape '{v}' (deterministic, poisson, \
                                 bursty, diurnal)"
                            ))
                        })?;
                    }
                    "--batch-delay-us" => {
                        let v = take_value(args, &mut i, "--batch-delay-us")?;
                        batch_delay_us = v.parse::<u64>().map_err(|_| {
                            ParseError(format!(
                                "invalid --batch-delay-us '{v}': expected an integer"
                            ))
                        })?;
                    }
                    "--max-batch" => max_batch = parse_positive(args, &mut i, "--max-batch")?,
                    "--queue-depth" => queue_depth = parse_positive(args, &mut i, "--queue-depth")?,
                    "--admission" => {
                        let v = take_value(args, &mut i, "--admission")?;
                        admission = AdmissionPolicy::parse(v).ok_or_else(|| {
                            ParseError(format!("unknown admission policy '{v}' (shed, block)"))
                        })?;
                    }
                    "--slo-us" => slo_us = parse_positive(args, &mut i, "--slo-us")? as u64,
                    "--fault-plan" => {
                        let v = take_value(args, &mut i, "--fault-plan")?;
                        // Validate the grammar up front so a typo fails
                        // at the command line, not mid-run.
                        slpm_serve::FaultPlan::parse(v)
                            .map_err(|e| ParseError(format!("invalid --fault-plan: {e}")))?;
                        fault_plan = Some(v.to_string());
                    }
                    "--retry" => retry = parse_positive(args, &mut i, "--retry")? as u32,
                    "--timeout-us" => {
                        timeout_us = parse_positive(args, &mut i, "--timeout-us")? as u64
                    }
                    "--backoff-us" => {
                        backoff_us = parse_positive(args, &mut i, "--backoff-us")? as u64
                    }
                    "--breaker-threshold" => {
                        breaker_threshold =
                            parse_positive(args, &mut i, "--breaker-threshold")? as u32
                    }
                    "--probe-cooldown" => {
                        probe_cooldown = parse_nonneg(args, &mut i, "--probe-cooldown")? as u32
                    }
                    "--page-file" => {
                        page_file = Some(take_value(args, &mut i, "--page-file")?.to_string())
                    }
                    "--readahead" => {
                        readahead = parse_nonneg(args, &mut i, "--readahead")? as usize
                    }
                    other => return Err(ParseError(format!("unknown flag '{other}'"))),
                }
                i += 1;
            }
            Ok(Command::Serve {
                dims: dims.ok_or_else(|| ParseError("serve requires --grid".into()))?,
                mapping,
                shards,
                threads,
                queries,
                seed,
                partition,
                buffer_pages,
                page_records,
                inflight,
                planner,
                stream,
                rate,
                arrival,
                batch_delay_us,
                max_batch,
                queue_depth,
                admission,
                slo_us,
                fault_plan,
                retry,
                timeout_us,
                backoff_us,
                breaker_threshold,
                probe_cooldown,
                page_file,
                readahead,
            })
        }
        "report" => {
            let mut dims = None;
            let mut mapping = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--grid" => dims = Some(parse_dims(take_value(args, &mut i, "--grid")?)?),
                    "--mapping" => {
                        let v = take_value(args, &mut i, "--mapping")?;
                        mapping = Some(
                            MappingChoice::parse(v)
                                .ok_or_else(|| ParseError(format!("unknown mapping '{v}'")))?,
                        );
                    }
                    other => return Err(ParseError(format!("unknown flag '{other}'"))),
                }
                i += 1;
            }
            Ok(Command::Report {
                dims: dims.ok_or_else(|| ParseError("report requires --grid".into()))?,
                mapping: mapping.ok_or_else(|| ParseError("report requires --mapping".into()))?,
            })
        }
        other => Err(ParseError(format!(
            "unknown command '{other}'; try `slpm help`"
        ))),
    }
}

/// The help text.
pub const HELP: &str = "\
slpm — Spectral LPM reproduction CLI

USAGE:
  slpm order   --grid 8x8 --mapping spectral [--csv] [--threads N]
  slpm fiedler --grid 8x8 [--method dense|shift-invert|shifted-direct|multilevel|auto]
               [--threads N]
  slpm figure  <fig1|fig3|fig4|fig5a|fig5b|fig6a|fig6b>
  slpm experiment <knn|storage|rtree|decluster|pointcloud|ablations>
  slpm report  --grid 8x8 --mapping hilbert
  slpm pack    --grid 256x256 --out pages.slpm [--mapping hilbert]
               [--page-records 64] [--record-size 64]
  slpm serve   --grid 256x256 [--mapping hilbert] [--shards 2] [--threads 1]
               [--queries 1000] [--seed 42] [--partition contiguous|round-robin]
               [--buffer-pages 64] [--page-records 64] [--inflight 1]
               [--knn-planner best-first|expanding-ball]
               [--page-file pages.slpm] [--readahead 0]
               [--stream] [--rate 20000]
               [--arrival deterministic|poisson|bursty|diurnal]
               [--batch-delay-us 200] [--max-batch 32] [--queue-depth 64]
               [--admission shed|block] [--slo-us 2000]
               [--fault-plan SPEC] [--retry 3] [--timeout-us 10000]
               [--backoff-us 100] [--breaker-threshold 3] [--probe-cooldown 4]
  slpm help

Mappings: sweep, snake, peano (Z-order), truepeano, gray, hilbert,
          spectral (4-connectivity), spectral8 (8-connectivity).
Grids for the recursive curves need power-of-two sides (truepeano: powers
of three); sweep/snake/spectral accept any extents.
Spectral mappings pick their eigensolver automatically by grid size (dense
-> shift-invert Lanczos -> multilevel); `slpm fiedler --method` overrides.
--threads N pins the eigensolver's worker threads (default: the machine's
available parallelism, or the SLPM_THREADS env var); results are bitwise
identical for every thread count.
`slpm serve` replays a seeded mixed range/kNN workload through the sharded
serving engine (order -> pages -> shards -> worker pool); result sets, page
counts and the printed digest are bitwise identical for every --shards,
--threads, --inflight and --knn-planner combination. --inflight B splits
the workload into B concurrently admitted batches (per-shard FIFO queues,
round-robin fairness); --knn-planner picks best-first branch-and-bound
(default) or the expanding-ball baseline.
`slpm pack` writes the grid's records to a checksummed disk page file laid
out in linear-order sequence; `slpm serve --page-file` then serves the
same workload out-of-core, faulting pages through each shard's buffer
pool — results, page accounting and the digest stay bitwise identical to
the in-memory engine. --readahead N prefetches up to N next pages of the
current monotone page run on each demand miss (one seek per run), which
pays off when --buffer-pages is smaller than the working set.
--stream serves the same workload as an open-loop arrival process on a
simulated clock: --rate and --arrival pick the traffic (mean q/s and
shape), --batch-delay-us/--max-batch the micro-batch window, and
--queue-depth/--admission the backpressure bound and policy (shed drops
at the bound and counts per class; block stalls the stream and pays in
tail latency). Per-query admission-to-completion latency is scored
against --slo-us (p50/p99/p999, violation %); all streaming decisions
and latencies are deterministic — machine-independent — and the printed
digest still equals the batch digest of the admitted query sequence.
--fault-plan injects seeded, fully deterministic faults at the replay
seam. SPEC is comma-separated events: kill:S@N (shard S fails from its
Nth unit, healed by failover), kill!:S@N (same, but survives rebuilds),
flaky:S@N+A (A failing attempts), stall:S@N+K=U (K units stall U us),
panic:S@N (one replay-unit panic), pagerr:P@N (page P's Nth read
fails). --retry/--timeout-us/--backoff-us bound per-unit recovery;
--breaker-threshold consecutive failures trip a shard's circuit
breaker (failover to a rebuilt slice at the next admission) and
--probe-cooldown sets how many units an open breaker fast-fails
before probing. Fault-free queries stay bitwise identical to an
unfaulted run; degraded queries are answered from the index plan with
their unserved rank ranges reported.
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_dims_cases() {
        assert_eq!(parse_dims("8x8").unwrap(), vec![8, 8]);
        assert_eq!(parse_dims("4X4X4").unwrap(), vec![4, 4, 4]);
        assert_eq!(parse_dims("16").unwrap(), vec![16]);
        assert!(parse_dims("").is_err());
        assert!(parse_dims("8x0").is_err());
        assert!(parse_dims("8xa").is_err());
    }

    #[test]
    fn parse_order_command() {
        let c = parse(&argv(&["order", "--grid", "8x8", "--mapping", "hilbert"])).unwrap();
        assert_eq!(
            c,
            Command::Order {
                dims: vec![8, 8],
                mapping: MappingChoice::Hilbert,
                csv: false,
                threads: None
            }
        );
        let c = parse(&argv(&[
            "order",
            "--grid",
            "4x4",
            "--mapping",
            "spectral",
            "--csv",
        ]))
        .unwrap();
        assert!(matches!(c, Command::Order { csv: true, .. }));
    }

    #[test]
    fn order_requires_flags() {
        assert!(parse(&argv(&["order", "--grid", "8x8"])).is_err());
        assert!(parse(&argv(&["order", "--mapping", "sweep"])).is_err());
        assert!(parse(&argv(&["order", "--grid"])).is_err());
        assert!(parse(&argv(&["order", "--mapping", "nope", "--grid", "4x4"])).is_err());
    }

    #[test]
    fn parse_fiedler_defaults() {
        let c = parse(&argv(&["fiedler", "--grid", "4x4"])).unwrap();
        assert_eq!(
            c,
            Command::Fiedler {
                dims: vec![4, 4],
                method: "shift-invert".into(),
                threads: None
            }
        );
        assert!(parse(&argv(&["fiedler", "--grid", "4x4", "--method", "qr"])).is_err());
        for m in ["multilevel", "auto", "dense", "shifted-direct"] {
            assert!(
                parse(&argv(&["fiedler", "--grid", "4x4", "--method", m])).is_ok(),
                "method {m} should parse"
            );
        }
    }

    #[test]
    fn parse_threads_flag() {
        let c = parse(&argv(&[
            "fiedler",
            "--grid",
            "4x4",
            "--method",
            "multilevel",
            "--threads",
            "4",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Fiedler {
                dims: vec![4, 4],
                method: "multilevel".into(),
                threads: Some(4)
            }
        );
        let c = parse(&argv(&[
            "order",
            "--grid",
            "4x4",
            "--mapping",
            "spectral",
            "--threads",
            "2",
        ]))
        .unwrap();
        assert!(matches!(
            c,
            Command::Order {
                threads: Some(2),
                ..
            }
        ));
        // Zero, junk, and missing values are rejected.
        assert!(parse(&argv(&["fiedler", "--grid", "4x4", "--threads", "0"])).is_err());
        assert!(parse(&argv(&["fiedler", "--grid", "4x4", "--threads", "two"])).is_err());
        assert!(parse(&argv(&["fiedler", "--grid", "4x4", "--threads"])).is_err());
    }

    #[test]
    fn parse_figure_and_experiment() {
        assert_eq!(
            parse(&argv(&["figure", "fig5a"])).unwrap(),
            Command::Figure { id: "fig5a".into() }
        );
        assert!(parse(&argv(&["figure", "fig9"])).is_err());
        assert_eq!(
            parse(&argv(&["experiment", "knn"])).unwrap(),
            Command::Experiment { name: "knn".into() }
        );
        assert!(parse(&argv(&["experiment", "nope"])).is_err());
    }

    #[test]
    fn parse_serve_defaults_and_flags() {
        let c = parse(&argv(&["serve", "--grid", "64x64"])).unwrap();
        assert_eq!(
            c,
            Command::Serve {
                dims: vec![64, 64],
                mapping: MappingChoice::Hilbert,
                shards: 2,
                threads: 1,
                queries: 1000,
                seed: 42,
                partition: Partition::Contiguous,
                buffer_pages: 64,
                page_records: 64,
                inflight: 1,
                planner: KnnPlanner::BestFirst,
                stream: false,
                rate: 20_000,
                arrival: ArrivalShape::Poisson,
                batch_delay_us: 200,
                max_batch: 32,
                queue_depth: 64,
                admission: AdmissionPolicy::Shed,
                slo_us: 2_000,
                fault_plan: None,
                retry: 3,
                timeout_us: 10_000,
                backoff_us: 100,
                breaker_threshold: 3,
                probe_cooldown: 4,
                page_file: None,
                readahead: 0,
            }
        );
        let c = parse(&argv(&[
            "serve",
            "--grid",
            "32x32",
            "--mapping",
            "snake",
            "--shards",
            "4",
            "--threads",
            "4",
            "--queries",
            "200",
            "--seed",
            "7",
            "--partition",
            "round-robin",
            "--buffer-pages",
            "16",
            "--page-records",
            "32",
            "--inflight",
            "4",
            "--knn-planner",
            "expanding-ball",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Serve {
                dims: vec![32, 32],
                mapping: MappingChoice::Snake,
                shards: 4,
                threads: 4,
                queries: 200,
                seed: 7,
                partition: Partition::RoundRobin,
                buffer_pages: 16,
                page_records: 32,
                inflight: 4,
                planner: KnnPlanner::ExpandingBall,
                stream: false,
                rate: 20_000,
                arrival: ArrivalShape::Poisson,
                batch_delay_us: 200,
                max_batch: 32,
                queue_depth: 64,
                admission: AdmissionPolicy::Shed,
                slo_us: 2_000,
                fault_plan: None,
                retry: 3,
                timeout_us: 10_000,
                backoff_us: 100,
                breaker_threshold: 3,
                probe_cooldown: 4,
                page_file: None,
                readahead: 0,
            }
        );
        // Missing grid, bad values, bad partition, bad planner/inflight.
        assert!(parse(&argv(&["serve"])).is_err());
        assert!(parse(&argv(&["serve", "--grid", "8x8", "--shards", "0"])).is_err());
        assert!(parse(&argv(&["serve", "--grid", "8x8", "--queries", "none"])).is_err());
        assert!(parse(&argv(&["serve", "--grid", "8x8", "--partition", "hashed"])).is_err());
        assert!(parse(&argv(&["serve", "--grid", "8x8", "--seed", "x"])).is_err());
        assert!(parse(&argv(&["serve", "--grid", "8x8", "--inflight", "0"])).is_err());
        assert!(parse(&argv(&["serve", "--grid", "8x8", "--knn-planner", "astar"])).is_err());
    }

    #[test]
    fn parse_pack_and_serve_page_file_flags() {
        let c = parse(&argv(&["pack", "--grid", "16x16", "--out", "f.pages"])).unwrap();
        assert_eq!(
            c,
            Command::Pack {
                dims: vec![16, 16],
                mapping: MappingChoice::Hilbert,
                out: "f.pages".into(),
                page_records: 64,
                record_size: 64,
            }
        );
        let c = parse(&argv(&[
            "pack",
            "--grid",
            "8x8",
            "--out",
            "g.pages",
            "--mapping",
            "snake",
            "--page-records",
            "16",
            "--record-size",
            "32",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Pack {
                dims: vec![8, 8],
                mapping: MappingChoice::Snake,
                out: "g.pages".into(),
                page_records: 16,
                record_size: 32,
            }
        );
        // pack needs both a grid and an output path.
        assert!(parse(&argv(&["pack", "--out", "f.pages"])).is_err());
        assert!(parse(&argv(&["pack", "--grid", "8x8"])).is_err());
        assert!(parse(&argv(&["pack", "--grid", "8x8", "--out"])).is_err());

        // serve takes the file and a readahead depth.
        let c = parse(&argv(&[
            "serve",
            "--grid",
            "16x16",
            "--page-file",
            "f.pages",
            "--readahead",
            "4",
        ]))
        .unwrap();
        match c {
            Command::Serve {
                page_file,
                readahead,
                ..
            } => {
                assert_eq!(page_file.as_deref(), Some("f.pages"));
                assert_eq!(readahead, 4);
            }
            other => panic!("expected serve, got {other:?}"),
        }
        assert!(parse(&argv(&["serve", "--grid", "8x8", "--page-file"])).is_err());
        assert!(parse(&argv(&["serve", "--grid", "8x8", "--readahead", "x"])).is_err());
    }

    #[test]
    fn parse_serve_stream_flags() {
        let c = parse(&argv(&[
            "serve",
            "--grid",
            "64x64",
            "--stream",
            "--rate",
            "50000",
            "--arrival",
            "bursty",
            "--batch-delay-us",
            "100",
            "--max-batch",
            "16",
            "--queue-depth",
            "8",
            "--admission",
            "block",
            "--slo-us",
            "1500",
        ]))
        .unwrap();
        match c {
            Command::Serve {
                stream,
                rate,
                arrival,
                batch_delay_us,
                max_batch,
                queue_depth,
                admission,
                slo_us,
                ..
            } => {
                assert!(stream);
                assert_eq!(rate, 50_000);
                assert_eq!(arrival, ArrivalShape::Bursty);
                assert_eq!(batch_delay_us, 100);
                assert_eq!(max_batch, 16);
                assert_eq!(queue_depth, 8);
                assert_eq!(admission, AdmissionPolicy::Block);
                assert_eq!(slo_us, 1_500);
            }
            other => panic!("expected Serve, got {other:?}"),
        }
        // Bad streaming values are rejected.
        assert!(parse(&argv(&["serve", "--grid", "8x8", "--rate", "0"])).is_err());
        assert!(parse(&argv(&["serve", "--grid", "8x8", "--arrival", "lognormal"])).is_err());
        assert!(parse(&argv(&["serve", "--grid", "8x8", "--admission", "retry"])).is_err());
        assert!(parse(&argv(&["serve", "--grid", "8x8", "--queue-depth", "0"])).is_err());
        assert!(parse(&argv(&["serve", "--grid", "8x8", "--slo-us", "x"])).is_err());
    }

    #[test]
    fn parse_serve_fault_flags() {
        let c = parse(&argv(&[
            "serve",
            "--grid",
            "16x16",
            "--fault-plan",
            "kill!:0@2,flaky:1@0+2",
            "--retry",
            "5",
            "--timeout-us",
            "500",
            "--backoff-us",
            "20",
            "--breaker-threshold",
            "2",
            "--probe-cooldown",
            "0",
        ]))
        .unwrap();
        match c {
            Command::Serve {
                fault_plan,
                retry,
                timeout_us,
                backoff_us,
                breaker_threshold,
                probe_cooldown,
                ..
            } => {
                assert_eq!(fault_plan.as_deref(), Some("kill!:0@2,flaky:1@0+2"));
                assert_eq!(retry, 5);
                assert_eq!(timeout_us, 500);
                assert_eq!(backoff_us, 20);
                assert_eq!(breaker_threshold, 2);
                assert_eq!(probe_cooldown, 0);
            }
            other => panic!("expected Serve, got {other:?}"),
        }
        // A malformed plan fails at the command line with the offending
        // event named, and nonsensical recovery knobs are rejected.
        let err = parse(&argv(&[
            "serve",
            "--grid",
            "8x8",
            "--fault-plan",
            "zap:0@1",
        ]))
        .expect_err("unknown fault kind");
        assert!(err.0.contains("invalid --fault-plan"), "{err}");
        assert!(err.0.contains("zap:0@1"), "{err}");
        assert!(parse(&argv(&["serve", "--grid", "8x8", "--retry", "0"])).is_err());
        assert!(parse(&argv(&["serve", "--grid", "8x8", "--timeout-us", "0"])).is_err());
        assert!(parse(&argv(&["serve", "--grid", "8x8", "--timeout-us", "-5"])).is_err());
        assert!(parse(&argv(&["serve", "--grid", "8x8", "--backoff-us", "0"])).is_err());
        assert!(parse(&argv(&[
            "serve",
            "--grid",
            "8x8",
            "--breaker-threshold",
            "0"
        ]))
        .is_err());
        assert!(parse(&argv(&["serve", "--grid", "8x8", "--probe-cooldown", "-1"])).is_err());
        assert!(parse(&argv(&["serve", "--grid", "8x8", "--fault-plan"])).is_err());
    }

    #[test]
    fn parse_help_and_errors() {
        assert_eq!(parse(&argv(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse(&argv(&["-h"])).unwrap(), Command::Help);
        assert!(parse(&[]).is_err());
        assert!(parse(&argv(&["frobnicate"])).is_err());
    }

    #[test]
    fn mapping_aliases() {
        assert_eq!(MappingChoice::parse("Morton"), Some(MappingChoice::Peano));
        assert_eq!(MappingChoice::parse("z-order"), Some(MappingChoice::Peano));
        assert_eq!(
            MappingChoice::parse("TRUEPEANO"),
            Some(MappingChoice::TruePeano)
        );
        assert_eq!(MappingChoice::parse("bogus"), None);
        assert_eq!(MappingChoice::Spectral8.to_string(), "spectral8");
    }
}
