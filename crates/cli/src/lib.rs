//! Command-line interface to the Spectral LPM reproduction.
//!
//! The `slpm` binary exposes the library to shell users:
//!
//! ```text
//! slpm order   --grid 8x8 --mapping spectral [--csv]   # rank per point
//! slpm fiedler --grid 8x8 [--method dense]             # λ₂ + vector
//! slpm figure  fig5a                                   # regenerate a figure
//! slpm experiment knn                                  # extra experiments
//! slpm help
//! ```
//!
//! Argument parsing is hand-rolled (no CLI crates in the dependency
//! budget) and lives in [`args`] so it is unit-testable; command execution
//! lives in [`commands`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{Command, ParseError};
