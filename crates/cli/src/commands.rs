//! Command execution for the `slpm` binary.

use crate::args::{Command, MappingChoice, ParseError};
use slpm_graph::grid::{Connectivity, GridSpec};
use slpm_linalg::fiedler::{fiedler_pair_on, FiedlerMethod, FiedlerOptions};
use slpm_linalg::{parallel, Pool};
use slpm_querysim::experiments::{
    ablation, declustering, fig1, fig3, fig4, fig5, fig6, knn, point_cloud, rtree_packing,
    storage_io,
};
use slpm_querysim::mappings::{curve_order, curve_order_by_name};
use slpm_serve::arrival::{ArrivalConfig, ArrivalShape};
use slpm_serve::engine::{EngineConfig, ServeEngine};
use slpm_serve::stream::{stream_serve, AdmissionPolicy, StreamConfig};
use slpm_serve::workload::{grid_points, mixed_workload, mixed_workload_labeled, WorkloadConfig};
use slpm_serve::{CoverageReport, FaultPlan, RecoveryConfig, WorkerPool};
use slpm_sfc::TruePeanoCurve;
use slpm_storage::{write_page_file, PageLayout, PageMapper};
use spectral_lpm::{LinearOrder, SpectralConfig, SpectralMapper};
use std::path::PathBuf;

/// The persistent worker pool every spectral solve in this binary runs
/// on: one `WorkerPool` spun up per command (when more than one thread is
/// requested), handed down through the `ScopeExecutor` seam so the
/// multilevel driver, PCG and CSR matvec all schedule onto the same
/// long-lived workers instead of paying a scoped thread spawn+join per
/// kernel call. `threads = None` resolves once, here, via
/// [`parallel::default_threads`] (the `SLPM_THREADS` env override, else
/// the machine's available parallelism).
fn spectral_pool(threads: Option<usize>) -> Option<WorkerPool> {
    let threads = threads.unwrap_or_else(parallel::default_threads);
    (threads > 1).then(|| WorkerPool::new(threads))
}

/// Run `f` on the resolved executor: the persistent pool's linalg handle
/// when one exists, the serial pool otherwise. Thread count never changes
/// results — every kernel keeps the fixed-chunk deterministic reduction
/// order — so this only decides *where* the work runs.
fn with_spectral_pool<T>(threads: Option<usize>, f: impl FnOnce(&Pool<'_>) -> T) -> T {
    match spectral_pool(threads) {
        Some(workers) => f(&workers.linalg_pool()),
        None => f(&Pool::serial()),
    }
}

/// Build the requested order over the grid. `threads` pins the spectral
/// eigensolver's worker count (ignored by the curve mappings).
fn build_order(
    dims: &[usize],
    mapping: MappingChoice,
    threads: Option<usize>,
) -> Result<LinearOrder, ParseError> {
    let spec = GridSpec::new(dims);
    let err = |e: String| ParseError(e);
    let side = dims[0] as u64;
    let uniform = dims.iter().all(|&d| d as u64 == side);
    let k = dims.len();
    match mapping {
        // The curve mappings share one name → order dispatch with every
        // other `--mapping` consumer (e.g. the serve_throughput bench).
        MappingChoice::Sweep
        | MappingChoice::Snake
        | MappingChoice::Peano
        | MappingChoice::Gray
        | MappingChoice::Hilbert => curve_order_by_name(&spec, &mapping.to_string()).map_err(err),
        MappingChoice::TruePeano => {
            if !uniform {
                return Err(ParseError("truepeano requires a hypercube grid".into()));
            }
            Ok(curve_order(
                &spec,
                &TruePeanoCurve::from_side(k, side).map_err(|e| err(e.to_string()))?,
            ))
        }
        MappingChoice::Spectral | MappingChoice::Spectral8 => {
            let connectivity = if mapping == MappingChoice::Spectral {
                Connectivity::Orthogonal
            } else {
                Connectivity::Full
            };
            // Automatic eigensolver selection: dense on tiny grids,
            // shift-invert in the mid range, multilevel at scale — so
            // `slpm order --mapping spectral` stays fast from 3x3 up to
            // production-sized grids.
            let mapper = SpectralMapper::new(SpectralConfig {
                connectivity,
                auto_method: true,
                ..Default::default()
            });
            Ok(
                with_spectral_pool(threads, |pool| mapper.map_grid_on(&spec, pool))
                    .map_err(|e| err(e.to_string()))?
                    .order,
            )
        }
    }
}

/// Render the fault-plane section shared by the batch and stream paths:
/// the active plan, per-query coverage with the degraded rank ranges,
/// breaker health per shard, and the slice epoch.
fn render_fault_section(
    out: &mut String,
    plan: &str,
    coverage: &CoverageReport,
    engine: &ServeEngine,
    degraded_digest: u64,
) {
    out.push_str(&format!("fault plan: {plan}\n"));
    out.push_str(&format!(
        "coverage: {} queries, {} fault-free, {} degraded\n",
        coverage.queries,
        coverage.fault_free,
        coverage.degraded_queries(),
    ));
    const MAX_UNIT_LINES: usize = 8;
    for d in coverage.degraded_units.iter().take(MAX_UNIT_LINES) {
        out.push_str(&format!("  degraded: {d}\n"));
    }
    if coverage.degraded_units.len() > MAX_UNIT_LINES {
        out.push_str(&format!(
            "  ... and {} more degraded unit(s)\n",
            coverage.degraded_units.len() - MAX_UNIT_LINES
        ));
    }
    for b in engine.health_snapshot() {
        out.push_str(&format!(
            "  breaker[{}]: {} trips: {} incarnation: {}\n",
            b.shard, b.state, b.trips, b.incarnation,
        ));
    }
    out.push_str(&format!(
        "epoch: {}  degraded digest: {degraded_digest:016x}\n",
        engine.epoch(),
    ));
}

/// Run the streaming admission loop for `slpm serve --stream` and render
/// its SLO scorecard. The in-process parity line replays the admitted
/// subsequence as one batch and compares digests, so every streamed
/// invocation doubles as a correctness check (skipped under a fault
/// plan, whose stamp cursors are consumed by the streamed run).
#[allow(clippy::too_many_arguments)]
fn serve_stream(
    engine: &ServeEngine,
    spec: &GridSpec,
    dims: &[usize],
    mapping: MappingChoice,
    queries: usize,
    seed: u64,
    rate: u64,
    arrival: ArrivalShape,
    batch_delay_us: u64,
    max_batch: usize,
    queue_depth: usize,
    admission: AdmissionPolicy,
    slo_us: u64,
    fault_plan: Option<&str>,
) -> Result<String, ParseError> {
    let labeled = mixed_workload_labeled(
        spec,
        &WorkloadConfig {
            queries,
            seed,
            ..Default::default()
        },
    );
    let (workload, labels): (Vec<_>, Vec<_>) = labeled.into_iter().unzip();
    let cfg = StreamConfig {
        arrival: ArrivalConfig::new(arrival, rate as f64, seed),
        batch_delay_us: batch_delay_us as f64,
        max_batch,
        queue_depth,
        policy: admission,
        slo_us: slo_us as f64,
        ..Default::default()
    };
    let report = stream_serve(engine, &workload, &labels, &cfg)
        .map_err(|e| ParseError(format!("stream failed: {e}")))?;
    let slo = &report.slo;
    let mut out = String::new();
    out.push_str(&format!(
        "streaming {} queries over a {:?} grid ({} mapping)\n\
         arrival: {} @ {} q/s  batch delay: {}us  max batch: {}  \
         queue depth: {}  admission: {}\n",
        queries, dims, mapping, arrival, rate, batch_delay_us, max_batch, queue_depth, admission,
    ));
    out.push_str(&format!(
        "offered: {}  admitted: {}  shed: {}  micro-batches: {}  \
         blocked batches: {} ({:.0}us stalled)\n",
        slo.offered,
        slo.admitted,
        slo.shed,
        report.micro_batches,
        slo.blocked_batches,
        slo.blocked_us,
    ));
    for (class, shed) in &slo.shed_by_class {
        out.push_str(&format!("  shed[{class}]: {shed}\n"));
    }
    out.push_str(&format!(
        "latency p50: {:.1}us  p99: {:.1}us  p999: {:.1}us  max: {:.1}us (simulated)\n",
        slo.p50_us, slo.p99_us, slo.p999_us, slo.max_us,
    ));
    out.push_str(&format!(
        "slo target: {}us  violations: {} ({:.2}%)  max queue depth: {}  slo met: {}\n",
        slo.target_us,
        slo.violations,
        slo.violation_pct,
        slo.max_queue_depth,
        if slo.slo_met { "yes" } else { "no" },
    ));
    out.push_str(&format!(
        "sim makespan: {:.0}us  wall elapsed: {:.3}s  throughput: {:.0} q/s\n",
        report.sim_makespan_us,
        report.elapsed_seconds,
        report.queries_per_second(),
    ));
    if let Some(plan) = fault_plan {
        out.push_str(&format!(
            "degraded: {}  fault-free p99: {:.1}us  breaker trips: {}\n",
            slo.degraded, slo.fault_free_p99_us, report.trips,
        ));
        render_fault_section(
            &mut out,
            plan,
            &report.coverage,
            engine,
            report.degraded_digest(),
        );
        out.push_str(&format!(
            "digest: {:016x}\nparity (stream vs batch): skipped (fault plan active)\n",
            report.digest,
        ));
        return Ok(out);
    }
    // In-process parity witness: the streamed digest must equal a one-shot
    // batch run of the admitted subsequence, bit for bit.
    let admitted: Vec<_> = report
        .admitted_idx
        .iter()
        .map(|&q| workload[q].clone())
        .collect();
    let one_shot = engine
        .run(&admitted)
        .map_err(|e| ParseError(format!("parity replay failed: {e}")))?;
    out.push_str(&format!(
        "digest: {:016x}\nparity (stream vs batch): {}\n",
        report.digest,
        if report.digest == one_shot.digest {
            "ok"
        } else {
            "MISMATCH"
        },
    ));
    Ok(out)
}

/// Execute a parsed command, returning its stdout text.
pub fn execute(cmd: &Command) -> Result<String, ParseError> {
    match cmd {
        Command::Help => Ok(crate::args::HELP.to_string()),
        Command::Order {
            dims,
            mapping,
            csv,
            threads,
        } => {
            let spec = GridSpec::new(dims);
            let order = build_order(dims, *mapping, *threads)?;
            let mut out = String::new();
            if *csv {
                // point coordinates, then rank.
                let header: Vec<String> = (0..dims.len()).map(|d| format!("x{d}")).collect();
                out.push_str(&header.join(","));
                out.push_str(",rank\n");
                for (i, coords) in spec.iter_points().enumerate() {
                    let cells: Vec<String> = coords.iter().map(usize::to_string).collect();
                    out.push_str(&cells.join(","));
                    out.push_str(&format!(",{}\n", order.rank_of(i)));
                }
            } else if dims.len() == 2 {
                out.push_str(&format!(
                    "{mapping} order on a {}x{} grid:\n",
                    dims[0], dims[1]
                ));
                for x in 0..dims[0] {
                    let row: Vec<String> = (0..dims[1])
                        .map(|y| format!("{:>4}", order.rank_of(spec.index_of(&[x, y]))))
                        .collect();
                    out.push_str(&row.join(""));
                    out.push('\n');
                }
            } else {
                out.push_str(&format!(
                    "{mapping} order ({} points):\n",
                    spec.num_points()
                ));
                for (i, coords) in spec.iter_points().enumerate() {
                    out.push_str(&format!("{:?} -> {}\n", coords, order.rank_of(i)));
                }
            }
            Ok(out)
        }
        Command::Fiedler {
            dims,
            method,
            threads,
        } => {
            let spec = GridSpec::new(dims);
            let lap = spec.graph(Connectivity::Orthogonal).laplacian();
            let m = match method.as_str() {
                "dense" => FiedlerMethod::Dense,
                "shifted-direct" => FiedlerMethod::ShiftedDirect,
                "multilevel" => FiedlerMethod::Multilevel,
                "auto" => SpectralConfig::method_for_size(spec.num_points()),
                _ => FiedlerMethod::ShiftInvert,
            };
            let pair = with_spectral_pool(*threads, |pool| {
                fiedler_pair_on(
                    &lap,
                    &FiedlerOptions {
                        method: m,
                        ..Default::default()
                    },
                    pool,
                )
            })
            .map_err(|e| ParseError(e.to_string()))?;
            let comps: Vec<String> = pair.vector.iter().map(|v| format!("{v:.4}")).collect();
            Ok(format!(
                "grid {:?}  method {}\nlambda_2 = {:.8}\nresidual = {:.2e}\nfiedler vector = [{}]\n",
                dims,
                method,
                pair.lambda2,
                pair.residual,
                comps.join(", ")
            ))
        }
        Command::Figure { id } => Ok(match id.as_str() {
            "fig1" => fig1::run(4).render(),
            "fig3" => fig3::run().render(),
            "fig4" => fig4::run(4).render(),
            "fig5a" => fig5::run_worst_case(&fig5::Fig5Config::default()).render(),
            "fig5b" => fig5::run_fairness(&fig5::Fig5Config::default()).render(),
            "fig6a" => fig6::run_worst_case(&fig6::Fig6Config::default()).render(),
            "fig6b" => fig6::run_fairness(&fig6::Fig6Config::default()).render(),
            other => return Err(ParseError(format!("unknown figure '{other}'"))),
        }),
        Command::Experiment { name } => Ok(match name.as_str() {
            "knn" => knn::run(&knn::KnnConfig::default()).render(),
            "storage" => {
                let cfg = storage_io::StorageIoConfig::default();
                storage_io::render(&storage_io::run(&cfg), &cfg)
            }
            "rtree" => {
                let cfg = rtree_packing::RtreeConfig::default();
                rtree_packing::render(&rtree_packing::run(&cfg), &cfg)
            }
            "decluster" => {
                let cfg = declustering::DeclusterConfig::default();
                declustering::render(&declustering::run(&cfg), &cfg)
            }
            "pointcloud" => {
                let cfg = point_cloud::PointCloudConfig::default();
                point_cloud::render(&point_cloud::run(&cfg), &cfg)
            }
            "ablations" => {
                let mut out = String::new();
                for r in ablation::eigensolver_agreement(16) {
                    out.push_str(&format!(
                        "eigensolver {}: lambda2 {:.8} residual {:.2e} 2-sum {:.0}\n",
                        r.method, r.lambda2, r.residual, r.two_sum
                    ));
                }
                for r in ablation::ordering_comparison(16) {
                    out.push_str(&format!(
                        "ordering {}: 2-sum {:.0} bandwidth {}\n",
                        r.strategy, r.two_sum, r.bandwidth
                    ));
                }
                out
            }
            other => return Err(ParseError(format!("unknown experiment '{other}'"))),
        }),
        Command::Pack {
            dims,
            mapping,
            out,
            page_records,
            record_size,
        } => {
            let order = build_order(dims, *mapping, None)?;
            let mapper = PageMapper::new(&order, PageLayout::new(*page_records));
            let header = write_page_file(PathBuf::from(out).as_path(), &mapper, *record_size)
                .map_err(|e| ParseError(format!("pack failed: {e}")))?;
            Ok(format!(
                "packed {:?} grid ({} mapping) -> {out}\n\
                 records: {}  pages: {}  page: {} records x {} bytes\n\
                 file: {} bytes  format v{}  order digest: {:016x}\n",
                dims,
                mapping,
                header.num_records,
                header.num_pages,
                page_records,
                record_size,
                header.file_len(),
                header.version,
                header.order_digest,
            ))
        }
        Command::Serve {
            dims,
            mapping,
            shards,
            threads,
            queries,
            seed,
            partition,
            buffer_pages,
            page_records,
            inflight,
            planner,
            stream,
            rate,
            arrival,
            batch_delay_us,
            max_batch,
            queue_depth,
            admission,
            slo_us,
            fault_plan,
            retry,
            timeout_us,
            backoff_us,
            breaker_threshold,
            probe_cooldown,
            page_file,
            readahead,
        } => {
            let spec = GridSpec::new(dims);
            let order = build_order(dims, *mapping, None)?;
            let points = grid_points(&spec);
            let recovery = RecoveryConfig {
                timeout_us: *timeout_us as f64,
                max_attempts: *retry,
                backoff_us: *backoff_us as f64,
                breaker_threshold: *breaker_threshold,
                probe_cooldown: *probe_cooldown,
            };
            recovery
                .validate()
                .map_err(|e| ParseError(format!("invalid recovery knobs: {e}")))?;
            let cfg = EngineConfig {
                records_per_page: *page_records,
                // Keep the documented one-leaf-per-page geometry when the
                // page size is overridden.
                fanout: *page_records,
                shards: *shards,
                threads: *threads,
                partition: *partition,
                buffer_pages: *buffer_pages,
                readahead: *readahead,
                knn_planner: *planner,
                recovery,
                ..Default::default()
            };
            let engine = match page_file {
                // Out-of-core: shard slices fault pages off the packed
                // file; a geometry/order mismatch fails here, up front.
                Some(path) => {
                    ServeEngine::with_page_file(&points, &order, cfg, PathBuf::from(path))
                        .map_err(|e| ParseError(format!("cannot open page file '{path}': {e}")))?
                }
                None => ServeEngine::new(&points, &order, cfg),
            };
            if let Some(plan) = fault_plan {
                let plan = FaultPlan::parse(plan)
                    .map_err(|e| ParseError(format!("invalid --fault-plan: {e}")))?;
                engine.inject_faults(plan);
            }
            if *stream {
                return serve_stream(
                    &engine,
                    &spec,
                    dims,
                    *mapping,
                    *queries,
                    *seed,
                    *rate,
                    *arrival,
                    *batch_delay_us,
                    *max_batch,
                    *queue_depth,
                    *admission,
                    *slo_us,
                    fault_plan.as_deref(),
                );
            }
            let workload = mixed_workload(
                &spec,
                &WorkloadConfig {
                    queries: *queries,
                    seed: *seed,
                    ..Default::default()
                },
            );
            let report = engine
                .run_inflight(&workload, *inflight)
                .map_err(|e| ParseError(format!("serve failed: {e}")))?;
            let buffer = report.buffer_stats();
            let mut out = String::new();
            out.push_str(&format!(
                "serving {} queries over a {:?} grid ({} mapping)\n\
                 shards: {}  threads: {}  partition: {}  pages: {}  \
                 buffer: {} frames/shard  page: {} records\n\
                 knn planner: {}  in-flight batches: {}\n",
                queries,
                dims,
                mapping,
                shards,
                threads,
                partition,
                engine.num_pages(),
                buffer_pages,
                page_records,
                planner,
                inflight,
            ));
            if let Some(path) = page_file {
                out.push_str(&format!(
                    "storage: page file {path} (readahead {readahead})\n"
                ));
            }
            out.push_str(&format!(
                "results: {}  pages touched: {}  storage reads: {}  hit ratio: {:.3}\n",
                report.total_results(),
                report.total_pages(),
                report.total_misses(),
                buffer.hit_ratio(),
            ));
            out.push_str(&format!(
                "pages/query p50: {}  p99: {}  elapsed: {:.3}s  throughput: {:.0} q/s\n",
                report.page_quantile(0.5),
                report.page_quantile(0.99),
                report.elapsed_seconds,
                report.queries_per_second(),
            ));
            out.push_str(&format!(
                "latency/query p50: {:.1}us  p99: {:.1}us  shard balance (max/mean pages): {:.2}\n",
                report.latency_quantile(0.5) * 1e6,
                report.latency_quantile(0.99) * 1e6,
                report.shard_balance(),
            ));
            for s in &report.shards {
                out.push_str(&format!(
                    "  shard {}: {} queries, {} pages routed, {} runs, hit ratio {:.3}\n",
                    s.shard,
                    s.queries,
                    s.pages_routed,
                    s.runs,
                    s.buffer.hit_ratio(),
                ));
            }
            if let Some(plan) = fault_plan {
                render_fault_section(
                    &mut out,
                    plan,
                    &report.coverage,
                    &engine,
                    report.degraded_digest(),
                );
            }
            // The parity witness: identical for every --shards/--threads.
            out.push_str(&format!("digest: {:016x}\n", report.digest));
            Ok(out)
        }
        Command::Report { dims, mapping } => {
            let spec = GridSpec::new(dims);
            let graph = spec.graph(Connectivity::Orthogonal);
            let order = build_order(dims, *mapping, None)?;
            let report =
                spectral_lpm::OrderReport::compute(&graph, &order, &SpectralConfig::default())
                    .map_err(|e| ParseError(e.to_string()))?;
            Ok(report.render(&mapping.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args;

    fn run(parts: &[&str]) -> Result<String, ParseError> {
        let argv: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        execute(&args::parse(&argv)?)
    }

    #[test]
    fn order_grid_output() {
        let out = run(&["order", "--grid", "4x4", "--mapping", "hilbert"]).unwrap();
        assert!(out.contains("hilbert order on a 4x4 grid"));
        // Contains every rank 0..15.
        for r in 0..16 {
            assert!(out.contains(&format!("{r:>4}")), "missing rank {r}");
        }
    }

    #[test]
    fn order_csv_output() {
        let out = run(&["order", "--grid", "2x2", "--mapping", "sweep", "--csv"]).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "x0,x1,rank");
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[1], "0,0,0");
        assert_eq!(lines[4], "1,1,3");
    }

    #[test]
    fn order_spectral_any_extent() {
        let out = run(&["order", "--grid", "3x5", "--mapping", "spectral", "--csv"]).unwrap();
        assert_eq!(out.lines().count(), 16);
    }

    #[test]
    fn order_rejects_non_cube_for_curves() {
        assert!(run(&["order", "--grid", "4x8", "--mapping", "hilbert"]).is_err());
        assert!(run(&["order", "--grid", "6x6", "--mapping", "hilbert"]).is_err());
        // True Peano needs powers of three.
        assert!(run(&["order", "--grid", "9x9", "--mapping", "truepeano"]).is_ok());
        assert!(run(&["order", "--grid", "8x8", "--mapping", "truepeano"]).is_err());
    }

    #[test]
    fn fiedler_command_reports_lambda2() {
        let out = run(&["fiedler", "--grid", "3x3", "--method", "dense"]).unwrap();
        assert!(out.contains("lambda_2 = 1.000000"), "{out}");
        assert!(out.contains("fiedler vector"));
    }

    #[test]
    fn fiedler_multilevel_and_auto_methods_run() {
        // Small grids route multilevel through its exact dense fallback, so
        // λ₂ matches the closed form tightly.
        let out = run(&["fiedler", "--grid", "3x3", "--method", "multilevel"]).unwrap();
        assert!(out.contains("lambda_2 = 1.000000"), "{out}");
        let out = run(&["fiedler", "--grid", "4x4", "--method", "auto"]).unwrap();
        assert!(out.contains("lambda_2"), "{out}");
    }

    #[test]
    fn figure_command_renders() {
        let out = run(&["figure", "fig3"]).unwrap();
        assert!(out.contains("lambda_2"));
        let out = run(&["figure", "fig1"]).unwrap();
        assert!(out.contains("Spectral"));
    }

    #[test]
    fn help_lists_usage() {
        let out = run(&["help"]).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn report_command_renders_metrics() {
        let out = run(&["report", "--grid", "4x4", "--mapping", "hilbert"]).unwrap();
        assert!(out.contains("lambda2"), "{out}");
        assert!(out.contains("bandwidth"));
        assert!(run(&["report", "--grid", "4x4"]).is_err());
    }

    #[test]
    fn serve_command_reports_and_is_shard_thread_invariant() {
        let digest_line = |out: &str| {
            out.lines()
                .find(|l| l.starts_with("digest:"))
                .expect("digest line")
                .to_string()
        };
        let base = run(&[
            "serve",
            "--grid",
            "16x16",
            "--queries",
            "40",
            "--shards",
            "1",
            "--threads",
            "1",
        ])
        .unwrap();
        assert!(base.contains("serving 40 queries"));
        assert!(base.contains("hit ratio"));
        assert!(base.contains("shard 0:"));
        let reference = digest_line(&base);
        for (shards, threads) in [("4", "1"), ("1", "4"), ("4", "4")] {
            let out = run(&[
                "serve",
                "--grid",
                "16x16",
                "--queries",
                "40",
                "--shards",
                shards,
                "--threads",
                threads,
            ])
            .unwrap();
            assert_eq!(digest_line(&out), reference, "S={shards} T={threads}");
        }
        // Round-robin placement moves reads, never answers.
        let rr = run(&[
            "serve",
            "--grid",
            "16x16",
            "--queries",
            "40",
            "--shards",
            "4",
            "--partition",
            "round-robin",
        ])
        .unwrap();
        assert_eq!(digest_line(&rr), reference);
        // Concurrent admission and the baseline planner move work and
        // cost, never answers.
        for extra in [
            ["--inflight", "4"],
            ["--knn-planner", "expanding-ball"],
            ["--threads", "4"],
        ] {
            let mut argv = vec![
                "serve",
                "--grid",
                "16x16",
                "--queries",
                "40",
                "--inflight",
                "2",
            ];
            argv.extend(extra);
            let out = run(&argv).unwrap();
            assert_eq!(digest_line(&out), reference, "extra {extra:?}");
            assert!(out.contains("shard balance"));
            assert!(out.contains("latency/query"));
        }
        // A different seed is a different workload.
        let other = run(&["serve", "--grid", "16x16", "--queries", "40", "--seed", "7"]).unwrap();
        assert_ne!(digest_line(&other), reference);
    }

    #[test]
    fn serve_stream_reports_slo_and_parity() {
        let digest_line = |out: &str| {
            out.lines()
                .find(|l| l.starts_with("digest:"))
                .expect("digest line")
                .to_string()
        };
        // Uncontended stream: everything is admitted and the streamed
        // digest matches the one-shot batch run of the same workload.
        let out = run(&[
            "serve",
            "--grid",
            "16x16",
            "--queries",
            "40",
            "--stream",
            "--rate",
            "5000",
            "--arrival",
            "poisson",
        ])
        .unwrap();
        assert!(out.contains("streaming 40 queries"));
        assert!(out.contains("arrival: poisson @ 5000 q/s"));
        assert!(out.contains("offered: 40  admitted: 40  shed: 0"));
        assert!(out.contains("slo target: 2000us"));
        assert!(out.contains("parity (stream vs batch): ok"));
        let batch = run(&["serve", "--grid", "16x16", "--queries", "40"]).unwrap();
        assert_eq!(digest_line(&out), digest_line(&batch));
        // The simulated clock makes the stream thread-invariant too.
        let threaded = run(&[
            "serve",
            "--grid",
            "16x16",
            "--queries",
            "40",
            "--stream",
            "--rate",
            "5000",
            "--arrival",
            "poisson",
            "--shards",
            "4",
            "--threads",
            "4",
        ])
        .unwrap();
        assert_eq!(digest_line(&threaded), digest_line(&out));
        // Overload with a tiny queue sheds under the default policy but
        // still passes the parity check on the admitted subsequence.
        let shed = run(&[
            "serve",
            "--grid",
            "16x16",
            "--queries",
            "60",
            "--stream",
            "--rate",
            "400000",
            "--arrival",
            "bursty",
            "--queue-depth",
            "1",
            "--batch-delay-us",
            "0",
        ])
        .unwrap();
        assert!(
            shed.contains("shed["),
            "expected per-class shed lines:\n{shed}"
        );
        assert!(shed.contains("parity (stream vs batch): ok"));
        // Block mode admits everything instead.
        let block = run(&[
            "serve",
            "--grid",
            "16x16",
            "--queries",
            "60",
            "--stream",
            "--rate",
            "400000",
            "--arrival",
            "bursty",
            "--queue-depth",
            "1",
            "--admission",
            "block",
        ])
        .unwrap();
        assert!(block.contains("offered: 60  admitted: 60  shed: 0"));
        assert!(block.contains("parity (stream vs batch): ok"));
    }

    #[test]
    fn serve_fault_plan_reports_degraded_coverage_and_breakers() {
        // Batch mode: a permanent kill on shard 0 of 2 degrades some
        // queries, trips the breaker and swaps the epoch; the report
        // names the rank ranges left unserved.
        let out = run(&[
            "serve",
            "--grid",
            "16x16",
            "--queries",
            "40",
            "--shards",
            "2",
            "--fault-plan",
            "kill!:0@0",
            "--breaker-threshold",
            "2",
        ])
        .unwrap();
        assert!(out.contains("fault plan: kill!:0@0"), "{out}");
        assert!(out.contains("degraded"), "{out}");
        assert!(
            out.contains("ranks"),
            "degraded lines name rank ranges:\n{out}"
        );
        assert!(out.contains("breaker[0]:"), "{out}");
        assert!(out.contains("trips: 1"), "{out}");
        assert!(out.contains("degraded digest:"), "{out}");
        // Stream mode reports the degraded/SLO split and skips the
        // parity witness (the fault cursors were consumed by the run).
        let out = run(&[
            "serve",
            "--grid",
            "16x16",
            "--queries",
            "40",
            "--shards",
            "2",
            "--stream",
            "--rate",
            "5000",
            "--fault-plan",
            "flaky:0@1+2",
        ])
        .unwrap();
        assert!(out.contains("fault plan: flaky:0@1+2"), "{out}");
        assert!(out.contains("fault-free p99:"), "{out}");
        assert!(
            out.contains("parity (stream vs batch): skipped (fault plan active)"),
            "{out}"
        );
        // A transient fault inside the retry budget degrades nothing.
        assert!(out.contains("40 fault-free, 0 degraded"), "{out}");
    }

    #[test]
    fn pack_then_serve_page_file_matches_in_memory_digest() {
        let digest_line = |out: &str| {
            out.lines()
                .find(|l| l.starts_with("digest:"))
                .expect("digest line")
                .to_string()
        };
        let path = std::env::temp_dir().join(format!("slpm-cli-{}.pages", std::process::id()));
        let path_str = path.to_str().expect("utf-8 temp path");
        let packed = run(&["pack", "--grid", "16x16", "--out", path_str]).unwrap();
        assert!(packed.contains("records: 256"), "{packed}");
        assert!(packed.contains("pages: 4"), "{packed}");
        assert!(packed.contains("format v1"), "{packed}");
        // Same grid, mapping and geometry: the out-of-core serve run is
        // bitwise identical to the in-memory one — with and without
        // readahead, across a tiny buffer pool.
        let mem = run(&["serve", "--grid", "16x16", "--queries", "40"]).unwrap();
        let disk = run(&[
            "serve",
            "--grid",
            "16x16",
            "--queries",
            "40",
            "--page-file",
            path_str,
        ])
        .unwrap();
        assert!(disk.contains(&format!("storage: page file {path_str} (readahead 0)")));
        assert_eq!(digest_line(&disk), digest_line(&mem));
        let ra = run(&[
            "serve",
            "--grid",
            "16x16",
            "--queries",
            "40",
            "--page-file",
            path_str,
            "--readahead",
            "4",
            "--buffer-pages",
            "2",
        ])
        .unwrap();
        assert_eq!(digest_line(&ra), digest_line(&mem));
        // A geometry mismatch is a typed CLI error, not a panic.
        let err = run(&[
            "serve",
            "--grid",
            "16x16",
            "--queries",
            "40",
            "--page-file",
            path_str,
            "--page-records",
            "32",
        ])
        .expect_err("wrong page geometry");
        assert!(err.0.contains("cannot open page file"), "{err}");
        // A different mapping packs a different order: also rejected.
        let err = run(&[
            "serve",
            "--grid",
            "16x16",
            "--queries",
            "40",
            "--mapping",
            "snake",
            "--page-file",
            path_str,
        ])
        .expect_err("wrong order");
        assert!(err.0.contains("cannot open page file"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pack_requires_grid_and_out() {
        assert!(run(&["pack", "--grid", "8x8"]).is_err());
        assert!(run(&["pack", "--out", "/tmp/x.pages"]).is_err());
    }

    #[test]
    fn experiment_ablations_smoke() {
        let out = run(&["experiment", "ablations"]).unwrap();
        assert!(out.contains("eigensolver shift-invert"));
        assert!(out.contains("ordering direct Fiedler"));
    }
}
