//! Exhaustive schedule exploration of the serving stack's concurrency
//! protocols (see `crossbeam::model` for the checker itself).
//!
//! Every test here runs its harness once per *distinct bounded
//! interleaving* — thousands of schedules — and asserts properties that
//! must hold on all of them: no deadlock or lost wakeup, schedule-
//! invariant `digest_outcomes`, and panic propagation that never wedges
//! a waiter. Debug builds (the tier-1 `cargo test -q` gate) explore a
//! reduced schedule budget; CI runs the full budget via
//! `cargo test -p slpm_check --release`.

use slpm_check::harness::{MiniBreakerState, MiniEngine, MiniRecovery, MiniUnit};
use slpm_check::{explore, is_abort, with_quiet_panics, ModelOptions};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc as StdArc, Mutex as StdMutex};

/// Schedule budget: keep the debug-mode tier-1 run fast, explore wide in
/// release (CI's model-checker job).
const MAX_SCHEDULES: usize = if cfg!(debug_assertions) {
    3_000
} else {
    60_000
};

fn opts(max_threads: usize) -> ModelOptions {
    ModelOptions {
        preemption_bound: Some(2),
        max_schedules: MAX_SCHEDULES,
        max_threads,
        max_steps: 100_000,
    }
}

fn unit(qidx: usize, work: usize) -> MiniUnit {
    MiniUnit {
        qidx,
        work,
        poison: false,
        fail: false,
    }
}

fn fail_unit(qidx: usize) -> MiniUnit {
    MiniUnit {
        qidx,
        work: 3,
        poison: false,
        fail: true,
    }
}

#[test]
fn channel_delivers_every_message_exactly_once_on_every_schedule() {
    let report = explore(opts(4), || {
        let (tx, rx) = crossbeam::channel::unbounded::<usize>();
        let tx2 = tx.clone();
        let p1 = crossbeam::sync::thread::spawn(move || {
            tx.send(10).unwrap();
            tx.send(11).unwrap();
        });
        let p2 = crossbeam::sync::thread::spawn(move || {
            tx2.send(20).unwrap();
        });
        // The root is the sole consumer: drain exactly three messages,
        // then observe disconnect once both producers are done.
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap(), rx.recv().unwrap()];
        p1.join().unwrap();
        p2.join().unwrap();
        assert_eq!(rx.recv(), Err(crossbeam::channel::RecvError));
        got.sort_unstable();
        assert_eq!(got, vec![10, 11, 20], "a message was lost or duplicated");
    });
    assert!(report.schedules > 0);
    eprintln!("channel exactly-once: {report:?}");
}

#[test]
fn last_sender_drop_wakes_every_blocked_receiver_on_every_schedule() {
    // Two receivers race a single in-flight message against disconnect:
    // on every schedule exactly one receives the message and the other
    // observes RecvError — no schedule may leave either blocked forever
    // (the lost-wakeup this satellite exists to pin down).
    let report = explore(opts(4), || {
        let (tx, rx) = crossbeam::channel::unbounded::<usize>();
        let rx2 = rx.clone();
        let c1 = crossbeam::sync::thread::spawn(move || rx.recv());
        let c2 = crossbeam::sync::thread::spawn(move || rx2.recv());
        tx.send(42).unwrap();
        drop(tx); // last sender: every still-blocked receiver must wake
        let results = [c1.join().unwrap(), c2.join().unwrap()];
        let oks = results.iter().filter(|r| r.is_ok()).count();
        assert_eq!(oks, 1, "exactly one receiver gets the message: {results:?}");
        assert!(
            results.contains(&Ok(42)),
            "the in-flight message must still be delivered: {results:?}"
        );
    });
    eprintln!("last-sender-drop wake-all: {report:?}");
}

#[test]
fn run_scoped_latch_settles_on_every_schedule() {
    // The lifetime-erasure latch under the model: borrowed jobs are
    // handed to a worker thread that already exists; on every schedule
    // run_scoped must block until both jobs ran, and the latch's
    // settled-flags invariant must hold (it asserts internally).
    let report = explore(opts(4), || {
        let mut data = [0usize; 2];
        let (tx, rx) = crossbeam::channel::unbounded::<Box<dyn FnOnce() + Send>>();
        let worker = crossbeam::sync::thread::spawn(move || {
            for job in rx.iter() {
                job();
            }
        });
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = data
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| Box::new(move || *slot = i + 1) as Box<dyn FnOnce() + Send + '_>)
            .collect();
        crossbeam::thread::run_scoped(jobs, &mut |job| tx.send(job).expect("worker alive"));
        // Both borrowed writes are visible the moment run_scoped returns.
        assert_eq!(data, [1, 2]);
        drop(tx);
        worker.join().unwrap();
    });
    eprintln!("run_scoped latch: {report:?}");
}

#[test]
fn pool_digest_is_invariant_across_more_than_1000_schedules() {
    // The tentpole property: a 2-worker, 2-shard mini engine with two
    // concurrently admitted batches (per-shard FIFO + round-robin
    // rotation + the running-flag handoff) produces a bitwise-identical
    // `digest_outcomes` on every explored schedule, and the bounded
    // exploration covers well over 1000 distinct schedules with zero
    // deadlocks or lost wakeups.
    let digests: StdArc<StdMutex<Vec<u64>>> = StdArc::new(StdMutex::new(Vec::new()));
    let sink = StdArc::clone(&digests);
    let report = explore(opts(4), move || {
        let engine = MiniEngine::new(2, 2);
        let batch_a = engine.submit(2, vec![vec![unit(0, 4)], vec![unit(0, 6), unit(1, 8)]]);
        let batch_b = engine.submit(2, vec![vec![unit(1, 2), unit(0, 3)], vec![]]);
        let outcomes_a = batch_a.wait();
        let outcomes_b = batch_b.wait();
        let digest_a = slpm_serve::digest_outcomes(&outcomes_a);
        let digest_b = slpm_serve::digest_outcomes(&outcomes_b);
        // Fold both batches into one per-schedule fingerprint.
        sink.lock()
            .expect("digest sink")
            .push(digest_a ^ digest_b.rotate_left(1));
    });
    let digests = digests.lock().expect("digest sink");
    assert_eq!(digests.len(), report.schedules);
    assert!(
        report.schedules >= 1000,
        "exploration too shallow: only {} schedules (report {report:?})",
        report.schedules
    );
    let first = digests[0];
    if let Some(pos) = digests.iter().position(|&d| d != first) {
        panic!(
            "digest_outcomes is schedule-dependent: schedule 0 gave {first:#x}, \
             schedule {pos} gave {:#x}",
            digests[pos]
        );
    }
    eprintln!("pool digest invariance: {report:?}");
}

#[test]
fn bounded_admission_never_deadlocks_and_digest_is_invariant() {
    // The backpressure protocol under exhaustive interleaving: two
    // submitters race depth-1 bounded admissions into the same 2-shard
    // engine while runners drain and notify. Every explored schedule
    // must terminate (no deadlock or lost wakeup between `space.wait`
    // and the runner's pop+notify), the capacity invariant asserted
    // inside `submit_bounded` must hold at every admission, and the
    // merged outcomes must digest identically on every schedule.
    let digests: StdArc<StdMutex<Vec<u64>>> = StdArc::new(StdMutex::new(Vec::new()));
    let sink = StdArc::clone(&digests);
    let report = explore(opts(4), move || {
        let engine = StdArc::new(MiniEngine::new(2, 2));
        let rival = StdArc::clone(&engine);
        // A concurrent submitter contends for the same depth-1 gates.
        let other = crossbeam::sync::thread::spawn(move || {
            rival
                .submit_bounded(2, vec![vec![unit(1, 2)], vec![unit(0, 3)]], 1)
                .wait()
        });
        let mine = engine
            .submit_bounded(2, vec![vec![unit(0, 4), unit(1, 5)], vec![unit(1, 8)]], 1)
            .wait();
        let theirs = other.join().unwrap();
        let digest = slpm_serve::digest_outcomes(&mine)
            ^ slpm_serve::digest_outcomes(&theirs).rotate_left(1);
        sink.lock().expect("digest sink").push(digest);
    });
    let digests = digests.lock().expect("digest sink");
    assert_eq!(digests.len(), report.schedules);
    assert!(
        report.schedules >= 1000,
        "exploration too shallow: only {} schedules (report {report:?})",
        report.schedules
    );
    let first = digests[0];
    if let Some(pos) = digests.iter().position(|&d| d != first) {
        panic!(
            "bounded admission is schedule-dependent: schedule 0 gave {first:#x}, \
             schedule {pos} gave {:#x}",
            digests[pos]
        );
    }
    // CI greps for this exact line so a silently-skipped suite (e.g. a
    // filtered-out test name) fails the model-check job.
    eprintln!(
        "bounded-queue admission: explored {} schedules ({report:?})",
        report.schedules
    );
}

#[test]
fn bounded_and_unbounded_admission_answer_identically_on_every_schedule() {
    // Depth bounds move *when* units enter a shard queue, never what the
    // batch answers: on every schedule, a bounded batch's outcomes must
    // equal the plain submit of the same units (computed once outside
    // the model, where plain mode is deterministic).
    let units = || vec![vec![unit(0, 4), unit(2, 2)], vec![unit(0, 6), unit(1, 8)]];
    let reference = slpm_serve::digest_outcomes(&MiniEngine::new(2, 2).submit(3, units()).wait());
    let report = explore(opts(3), move || {
        let engine = MiniEngine::new(2, 2);
        let outcomes = engine.submit_bounded(3, units(), 1).wait();
        assert_eq!(
            slpm_serve::digest_outcomes(&outcomes),
            reference,
            "bounded admission changed answers"
        );
    });
    assert!(report.schedules > 0);
    eprintln!("bounded-vs-unbounded parity: {report:?}");
}

#[test]
fn panic_in_replay_unit_never_wedges_wait_on_any_schedule() {
    let report = with_quiet_panics(|| {
        explore(opts(4), || {
            let engine = MiniEngine::new(2, 2);
            let poisoned = MiniUnit {
                qidx: 1,
                work: 1,
                poison: true,
                fail: false,
            };
            let handle = engine.submit(2, vec![vec![unit(0, 4)], vec![poisoned]]);
            let caught = catch_unwind(AssertUnwindSafe(|| handle.wait()));
            match caught {
                Ok(_) => panic!("a poisoned batch must fail wait()"),
                Err(payload) => {
                    if is_abort(&*payload) {
                        resume_unwind(payload);
                    }
                    let msg = payload
                        .downcast_ref::<String>()
                        .expect("assert! message payload");
                    assert!(msg.contains("replay unit(s) panicked"), "got {msg:?}");
                }
            }
        })
    });
    eprintln!("panic propagation: {report:?}");
}

#[test]
fn zero_unit_batch_waits_return_on_every_schedule() {
    let report = explore(opts(4), || {
        let engine = MiniEngine::new(1, 2);
        let empty = engine.submit(1, vec![vec![], vec![]]);
        let busy = engine.submit(1, vec![vec![unit(0, 5)], vec![]]);
        assert_eq!(empty.wait()[0].pages, 0);
        assert_eq!(busy.wait()[0].pages, 5);
    });
    eprintln!("zero-unit batches: {report:?}");
}

#[test]
fn breaker_trips_while_epoch_swaps_and_inflight_batches_drain_their_pinned_slices() {
    // Fail-while-swapping: batch A's admission trips shard 0's breaker
    // (two consecutive doomed units at threshold 2); batch B's admission
    // installs the rebuild — swapping the slice epoch — while A may
    // still be draining. On every explored schedule the harness asserts
    // each unit replays against the epoch its admission pinned, and the
    // degraded coverage + outcomes must be bitwise identical because
    // every fault-plane decision was stamped at admission.
    let digests: StdArc<StdMutex<Vec<u64>>> = StdArc::new(StdMutex::new(Vec::new()));
    let sink = StdArc::clone(&digests);
    let report = explore(opts(4), move || {
        let engine = MiniEngine::with_recovery(
            2,
            2,
            MiniRecovery {
                threshold: 2,
                cooldown: 1,
            },
        );
        let a = engine.submit(2, vec![vec![fail_unit(0), fail_unit(1)], vec![unit(0, 6)]]);
        // B admits mid-drain: its admission installs the rebuilt slice
        // (epoch 1) and its shard-0 unit burns the cooldown fast-fail.
        let b = engine.submit(2, vec![vec![unit(0, 4)], vec![unit(1, 8)]]);
        let (a_out, a_deg) = a.wait_degraded();
        let (b_out, b_deg) = b.wait_degraded();
        assert_eq!(a_deg, vec![(0, 0), (1, 0)], "the tripping units degrade");
        assert_eq!(
            b_deg,
            vec![(0, 0)],
            "the open breaker fast-fails B on shard 0"
        );
        assert_eq!(a_out[0].pages, 6, "shard 1 keeps serving A");
        assert_eq!(b_out[1].pages, 8, "shard 1 keeps serving B");
        assert_eq!(engine.epoch(), 1, "B's admission installs the rebuild");
        let (state, trips, incarnation) = engine.breaker(0);
        assert_eq!((trips, incarnation), (1, 1));
        assert_eq!(state, MiniBreakerState::Open);
        let digest = slpm_serve::digest_outcomes(&a_out)
            ^ slpm_serve::digest_outcomes(&b_out).rotate_left(1);
        sink.lock().expect("digest sink").push(digest);
    });
    let digests = digests.lock().expect("digest sink");
    assert_eq!(digests.len(), report.schedules);
    let first = digests[0];
    if let Some(pos) = digests.iter().position(|&d| d != first) {
        panic!(
            "degraded serving is schedule-dependent: schedule 0 gave {first:#x}, \
             schedule {pos} gave {:#x}",
            digests[pos]
        );
    }
    // CI greps for this exact line so a silently-skipped suite fails
    // the model-check job.
    eprintln!(
        "breaker-epoch protocol: explored {} schedules (fail-while-swapping, {report:?})",
        report.schedules
    );
}

#[test]
fn probe_racing_a_rival_trip_settles_to_one_trip_and_a_closed_breaker() {
    // Probe-racing-trip: two submitters race batches of doomed units
    // into the same shard. Stamping is atomic per admission under the
    // fleet lock, so on every schedule exactly one batch trips the
    // breaker (incarnation 1 heals the pinned faults); the other batch
    // then burns the cooldown with one fast-fail and closes the breaker
    // with a successful probe. Which batch plays which role is
    // schedule-dependent — the settled protocol state must not be.
    let report = explore(opts(4), move || {
        let engine = StdArc::new(MiniEngine::with_recovery(
            2,
            1,
            MiniRecovery {
                threshold: 2,
                cooldown: 1,
            },
        ));
        let rival = StdArc::clone(&engine);
        let other = crossbeam::sync::thread::spawn(move || {
            rival
                .submit(2, vec![vec![fail_unit(0), fail_unit(1)]])
                .wait_degraded()
        });
        let (mine_out, mine_deg) = engine
            .submit(2, vec![vec![fail_unit(0), fail_unit(1)]])
            .wait_degraded();
        let (theirs_out, theirs_deg) = other.join().unwrap();
        // One batch tripped (2 degraded), the other fast-failed once and
        // probe-served once: 3 degraded + 3 served pages in total.
        assert_eq!(mine_deg.len() + theirs_deg.len(), 3);
        let served: usize = mine_out.iter().chain(&theirs_out).map(|o| o.pages).sum();
        assert_eq!(served, 3, "the successful probe serves its unit");
        let (state, trips, incarnation) = engine.breaker(0);
        assert_eq!(trips, 1, "a probe failure must not re-trip");
        assert_eq!(incarnation, 1);
        assert_eq!(
            state,
            MiniBreakerState::Closed,
            "the probe closes the breaker"
        );
        // The next admission installs the rebuild and serves cleanly.
        let (out, deg) = engine.submit(1, vec![vec![unit(0, 5)]]).wait_degraded();
        assert!(deg.is_empty());
        assert_eq!(out[0].pages, 5);
        assert_eq!(engine.epoch(), 1);
    });
    assert!(report.schedules > 0);
    eprintln!(
        "breaker-epoch protocol: explored {} schedules (probe-racing-trip, {report:?})",
        report.schedules
    );
}

#[test]
fn units_stamped_before_a_trip_keep_serving_through_the_swap() {
    // Drain-vs-admit: a healthy batch A is stamped Serve before batch B
    // trips the breaker and batch C swaps the epoch. A's units must
    // drain to completion against their pinned epoch-0 slices on every
    // schedule — failover never claws back work already admitted.
    let report = explore(opts(4), move || {
        let engine = MiniEngine::with_recovery(
            2,
            1,
            MiniRecovery {
                threshold: 2,
                cooldown: 1,
            },
        );
        let a = engine.submit(2, vec![vec![unit(0, 4), unit(1, 5), unit(0, 2)]]);
        let b = engine.submit(1, vec![vec![fail_unit(0), fail_unit(0)]]);
        let c = engine.submit(1, vec![vec![unit(0, 7)]]);
        let (a_out, a_deg) = a.wait_degraded();
        let (_, b_deg) = b.wait_degraded();
        let (c_out, c_deg) = c.wait_degraded();
        assert!(a_deg.is_empty(), "A was stamped healthy before the trip");
        assert_eq!(a_out[0].pages, 6);
        assert_eq!(a_out[1].pages, 5);
        assert_eq!(b_deg, vec![(0, 0), (0, 0)]);
        // C admits after the trip: epoch swapped, one cooldown fast-fail.
        assert_eq!(engine.epoch(), 1);
        assert_eq!(c_deg, vec![(0, 0)]);
        assert_eq!(c_out[0].pages, 0);
    });
    assert!(report.schedules > 0);
    eprintln!(
        "breaker-epoch protocol: explored {} schedules (drain-vs-admit, {report:?})",
        report.schedules
    );
}

#[test]
fn seeded_lost_wakeup_is_detected() {
    // Sanity check that the checker actually *finds* bugs: the classic
    // check-then-wait race (test a flag without holding the mutex, then
    // lock and wait) loses the notification when the notifier runs
    // between the check and the wait. Some explored schedule must end
    // with the waiter blocked forever, which the checker reports as a
    // deadlock/lost wakeup.
    let caught = with_quiet_panics(|| {
        catch_unwind(|| {
            explore(opts(3), || {
                use crossbeam::sync::atomic::{AtomicBool, Ordering};
                use crossbeam::sync::{Arc, Condvar, Mutex};
                let flag = Arc::new(AtomicBool::new(false));
                let pair = Arc::new((Mutex::new(()), Condvar::new()));
                let (flag2, pair2) = (Arc::clone(&flag), Arc::clone(&pair));
                let notifier = crossbeam::sync::thread::spawn(move || {
                    flag2.store(true, Ordering::SeqCst);
                    pair2.1.notify_one();
                });
                // BUG (seeded): the flag check happens outside the mutex,
                // so the store+notify can land in between — and the wait
                // below then sleeps forever.
                if !flag.load(Ordering::SeqCst) {
                    let guard = pair.0.lock().expect("model lock");
                    let _guard = pair.1.wait(guard).expect("model lock");
                }
                notifier.join().unwrap();
            });
        })
    });
    let payload = caught.expect_err("the checker must catch the seeded lost wakeup");
    let msg = payload
        .downcast_ref::<String>()
        .expect("checker panic carries a rendered trace");
    assert!(
        msg.contains("deadlock or lost wakeup"),
        "unexpected checker report: {msg}"
    );
}
