//! `slpm_check` — model-checked concurrency harnesses for the serving
//! stack.
//!
//! Every determinism claim the tree makes rests on hand-rolled
//! concurrency: the `crossbeam` shim's MPMC channels, the
//! lifetime-erasure latch in `crossbeam::thread::run_scoped`, and
//! `slpm_serve`'s worker pool / per-shard FIFO queues / `BatchHandle`.
//! This crate pairs the shim's deterministic model checker
//! ([`crossbeam::model::explore`], compiled under the shim's `model`
//! feature) with [`harness`]: a miniature worker pool + per-shard FIFO +
//! batch-handle engine, structurally mirroring `slpm_serve::engine`'s
//! admission protocol but small enough to explore *every* bounded
//! interleaving. The schedule-exploration tests live in
//! `tests/model.rs` and assert, over thousands of distinct schedules:
//!
//! 1. no deadlock or lost wakeup on any explored schedule,
//! 2. [`slpm_serve::digest_outcomes`] is bitwise identical on every
//!    schedule (scheduling moves work, never answers),
//! 3. a panic inside a replay unit propagates to `wait()` on every
//!    schedule instead of wedging it.
//!
//! Run the full exploration suite with `cargo test -p slpm_check
//! --release` (debug builds explore a smaller schedule budget so the
//! tier-1 `cargo test -q` gate stays fast).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use crossbeam::model::{explore, is_abort, ModelOptions, Report};

pub mod harness;

use std::sync::Mutex as StdMutex;

/// Serialises panic-hook swaps across tests: runs `f` with the global
/// panic hook silenced (the hook is process-global, so concurrent tests
/// that seed intentional panics must take turns swapping it).
pub fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    static HOOK_TURN: StdMutex<()> = StdMutex::new(());
    let _turn = HOOK_TURN
        .lock()
        .unwrap_or_else(|poison| poison.into_inner());
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    std::panic::set_hook(prev);
    match result {
        Ok(r) => r,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}
