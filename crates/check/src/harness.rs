//! A miniature worker pool + per-shard FIFO + batch-handle engine.
//!
//! This is a structural mirror of `slpm_serve`'s serving stack —
//! [`MiniPool`] ↔ `slpm_serve::pool::WorkerPool`, [`MiniEngine`] ↔ the
//! per-shard FIFO queues and round-robin batch rotation of
//! `slpm_serve::engine`, [`MiniBatchHandle::wait`] ↔
//! `BatchHandle::wait` — shrunk until every bounded interleaving can be
//! explored by [`crossbeam::model::explore`]. Everything is written
//! against `crossbeam::sync` and `crossbeam::channel`, so the same code
//! runs on real primitives in plain tests and on instrumented ones
//! inside a model session.
//!
//! The protocol properties under test are exactly the engine's:
//!
//! * `submit` enqueues one `BatchWork` per shard and starts a runner for
//!   every shard that is not already running (`running` flag under the
//!   shard-queue lock — the lost-update window the checker probes);
//! * runners pop the front batch, take one unit, and rotate the batch to
//!   the back while units remain (round-robin fairness across in-flight
//!   batches);
//! * `submit_bounded` blocks the submitter on a per-shard condvar while
//!   a target shard holds `bound` or more queued units; runners decrement
//!   the count and notify under the same lock, and never wait themselves
//!   (backpressure can stall admission but never deadlock it);
//! * unit replay panics are caught, recorded, and re-raised at
//!   [`MiniBatchHandle::wait`] — never allowed to wedge the waiter;
//! * per-unit contributions merge commutatively under the progress lock,
//!   so [`slpm_serve::digest_outcomes`] over the returned outcomes must
//!   be bitwise identical on every schedule.

use crossbeam::channel::{self, Sender};
use crossbeam::sync::thread as sync_thread;
use crossbeam::sync::{Arc, Condvar, Mutex};
use slpm_serve::QueryOutcome;
use slpm_storage::{IoCost, QueryCost};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A tiny persistent worker pool over the shim's MPMC channel,
/// mirroring `slpm_serve::pool::WorkerPool`'s lifecycle: long-lived
/// workers drain an unbounded channel; dropping the pool disconnects the
/// channel and joins every worker.
pub struct MiniPool {
    tx: Option<Sender<Job>>,
    workers: Vec<sync_thread::JoinHandle<()>>,
}

impl MiniPool {
    /// Start `workers` pool threads (model threads inside a session).
    pub fn new(workers: usize) -> MiniPool {
        let (tx, rx) = channel::unbounded::<Job>();
        let workers = (0..workers)
            .map(|_| {
                let rx = rx.clone();
                sync_thread::spawn(move || {
                    for job in rx.iter() {
                        if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                            // The model's teardown signal must unwind the
                            // whole thread; everything else mirrors the
                            // real pool's swallow-and-count behaviour
                            // (failures are the batch's to record).
                            if crossbeam::model::is_abort(&*payload) {
                                resume_unwind(payload);
                            }
                        }
                    }
                })
            })
            .collect();
        MiniPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Queue a job for some worker.
    pub fn submit(&self, job: Job) {
        self.tx
            .as_ref()
            .expect("pool channel alive until drop")
            .send(job)
            .expect("pool workers alive");
    }
}

impl Drop for MiniPool {
    fn drop(&mut self) {
        self.tx.take(); // last sender gone: workers drain and exit
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// One replay unit: the work one query routed to one shard.
#[derive(Clone, Copy, Debug)]
pub struct MiniUnit {
    /// Index of the owning query in its batch.
    pub qidx: usize,
    /// Pages this unit contributes to the query's outcome.
    pub work: usize,
    /// When set, replaying this unit panics (exercises the
    /// failure-propagation path of `wait`).
    pub poison: bool,
}

/// Mutable batch accounting, guarded by the batch lock.
struct Progress {
    units_left: usize,
    failed: usize,
    outcomes: Vec<Option<QueryOutcome>>,
}

/// Completion state one batch's waiters block on.
struct BatchState {
    progress: Mutex<Progress>,
    done: Condvar,
}

impl BatchState {
    fn record_unit(&self, qidx: usize, pages: usize) {
        let mut p = self.progress.lock().expect("batch progress");
        let outcome = p.outcomes[qidx].get_or_insert_with(|| empty_outcome(qidx));
        // Commutative merges only: unit arrival order is
        // schedule-dependent, the merged outcome must not be.
        outcome.pages += pages;
        outcome.runs += 1;
        outcome.hits += pages / 2;
        outcome.misses += pages - pages / 2;
        finish_unit(self, p);
    }

    fn record_failure(&self) {
        let mut p = self.progress.lock().expect("batch progress");
        p.failed += 1;
        finish_unit(self, p);
    }
}

fn finish_unit(state: &BatchState, mut p: crossbeam::sync::MutexGuard<'_, Progress>) {
    assert!(
        p.units_left > 0,
        "mini batch: more units settled than queued"
    );
    p.units_left -= 1;
    if p.units_left == 0 {
        state.done.notify_all();
    }
}

fn empty_outcome(qidx: usize) -> QueryOutcome {
    QueryOutcome {
        results: vec![qidx],
        pages: 0,
        runs: 0,
        hits: 0,
        misses: 0,
        io: IoCost {
            pages: 0,
            runs: 0,
            total: 0.0,
        },
        tree: QueryCost::ZERO,
        seconds: 0.0,
    }
}

/// One batch's units queued on one shard.
struct BatchWork {
    state: Arc<BatchState>,
    units: VecDeque<MiniUnit>,
}

/// A shard's FIFO of in-flight batches plus its runner flag and the
/// queued-unit count bounded admission waits on.
struct ShardQueue {
    batches: VecDeque<BatchWork>,
    running: bool,
    pending_units: usize,
}

/// One shard's queue plus the condvar bounded submitters block on,
/// mirroring `slpm_serve::engine`'s `ShardGate`.
struct ShardGate {
    queue: Mutex<ShardQueue>,
    space: Condvar,
}

struct Shared {
    queues: Vec<ShardGate>,
}

/// Handle to one submitted batch; [`wait`](MiniBatchHandle::wait) blocks
/// until every unit settled.
pub struct MiniBatchHandle {
    state: Arc<BatchState>,
}

impl MiniBatchHandle {
    /// Block until every unit of the batch has settled, then return the
    /// merged per-query outcomes (in query order).
    ///
    /// # Panics
    /// Panics when any replay unit panicked — after all units settled,
    /// so a failed batch still never wedges its waiter.
    pub fn wait(self) -> Vec<QueryOutcome> {
        let mut p = self.state.progress.lock().expect("batch progress");
        while p.units_left > 0 {
            p = self.state.done.wait(p).expect("batch progress");
        }
        let failed = p.failed;
        let outcomes = std::mem::take(&mut p.outcomes);
        drop(p);
        assert!(
            failed == 0,
            "mini batch: {failed} replay unit(s) panicked during this batch"
        );
        outcomes
            .into_iter()
            .enumerate()
            .map(|(qidx, o)| o.unwrap_or_else(|| empty_outcome(qidx)))
            .collect()
    }
}

/// The miniature engine: per-shard FIFO queues drained by [`MiniPool`]
/// runners, mirroring `slpm_serve::engine::ServeEngine`'s admission.
pub struct MiniEngine {
    pool: MiniPool,
    shared: Arc<Shared>,
}

impl MiniEngine {
    /// Build an engine with `workers` pool threads and `shards` queues.
    pub fn new(workers: usize, shards: usize) -> MiniEngine {
        MiniEngine {
            pool: MiniPool::new(workers),
            shared: Arc::new(Shared {
                queues: (0..shards)
                    .map(|_| ShardGate {
                        queue: Mutex::new(ShardQueue {
                            batches: VecDeque::new(),
                            running: false,
                            pending_units: 0,
                        }),
                        space: Condvar::new(),
                    })
                    .collect(),
            }),
        }
    }

    /// Admit a batch of `queries` queries whose per-shard units are
    /// `shard_units[shard]`; returns immediately with a wait handle.
    pub fn submit(&self, queries: usize, shard_units: Vec<Vec<MiniUnit>>) -> MiniBatchHandle {
        self.admit(queries, shard_units, None)
    }

    /// Admit a batch under a per-shard queued-unit bound, mirroring
    /// `ServeEngine::submit_planned_bounded`: the caller blocks (shard by
    /// shard, in ascending order) while a target shard already holds
    /// `bound` or more queued units, and runners wake waiters as they
    /// drain. Runners themselves never wait, so admission can stall but
    /// never deadlock — the property the model tests pin down.
    pub fn submit_bounded(
        &self,
        queries: usize,
        shard_units: Vec<Vec<MiniUnit>>,
        bound: usize,
    ) -> MiniBatchHandle {
        self.admit(queries, shard_units, Some(bound.max(1)))
    }

    fn admit(
        &self,
        queries: usize,
        shard_units: Vec<Vec<MiniUnit>>,
        bound: Option<usize>,
    ) -> MiniBatchHandle {
        assert_eq!(shard_units.len(), self.shared.queues.len());
        let total: usize = shard_units.iter().map(Vec::len).sum();
        let state = Arc::new(BatchState {
            progress: Mutex::new(Progress {
                units_left: total,
                failed: 0,
                outcomes: (0..queries).map(|_| None).collect(),
            }),
            done: Condvar::new(),
        });
        for (shard, units) in shard_units.into_iter().enumerate() {
            if units.is_empty() {
                continue;
            }
            let start_runner = {
                let gate = &self.shared.queues[shard];
                let mut q = gate.queue.lock().expect("shard queue");
                if let Some(bound) = bound {
                    while q.pending_units >= bound {
                        q = gate.space.wait(q).expect("shard queue");
                    }
                    // The capacity invariant, checked under the lock at
                    // every admission on every explored schedule.
                    assert!(
                        q.pending_units < bound,
                        "bounded admission woke with a full queue"
                    );
                }
                q.pending_units += units.len();
                q.batches.push_back(BatchWork {
                    state: Arc::clone(&state),
                    units: units.into(),
                });
                let start = !q.running;
                if start {
                    q.running = true;
                }
                start
            };
            if start_runner {
                let shared = Arc::clone(&self.shared);
                self.pool
                    .submit(Box::new(move || run_shard(&shared, shard)));
            }
        }
        MiniBatchHandle { state }
    }
}

/// Drain one shard's queue: one unit per iteration, rotating the batch
/// to the back while it has more (round-robin across in-flight batches),
/// exactly as `slpm_serve::engine`'s shard runner does.
fn run_shard(shared: &Arc<Shared>, shard: usize) {
    loop {
        let (unit, state) = {
            let gate = &shared.queues[shard];
            let mut q = gate.queue.lock().expect("shard queue");
            let Some(mut batch) = q.batches.pop_front() else {
                // The `running = false` ↔ `submit` handoff is the
                // classic lost-batch window; both sides act under this
                // lock, and the model checker verifies there is no
                // schedule on which a queued batch is never drained.
                q.running = false;
                return;
            };
            let unit = batch.units.pop_front().expect("queued batch has units");
            let state = Arc::clone(&batch.state);
            if !batch.units.is_empty() {
                q.batches.push_back(batch);
            }
            // Pop and notify under the same lock, exactly as the engine's
            // runner does — the no-lost-wakeup obligation of the bounded
            // admission protocol.
            assert!(q.pending_units > 0, "mini shard: unit drained twice");
            q.pending_units -= 1;
            gate.space.notify_all();
            (unit, state)
        };
        match catch_unwind(AssertUnwindSafe(|| replay_unit(unit))) {
            Ok(pages) => state.record_unit(unit.qidx, pages),
            Err(payload) => {
                if crossbeam::model::is_abort(&*payload) {
                    resume_unwind(payload);
                }
                state.record_failure();
            }
        }
    }
}

/// Replay one unit: a deterministic function of the unit alone, so any
/// schedule-dependence in the merged outcomes must come from the
/// concurrency protocol — which is what the digest invariance test
/// pins down.
fn replay_unit(unit: MiniUnit) -> usize {
    if unit.poison {
        panic!("seeded replay-unit panic (qidx {})", unit.qidx);
    }
    unit.work
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpm_serve::digest_outcomes;

    #[test]
    fn plain_mode_engine_merges_outcomes_in_query_order() {
        let engine = MiniEngine::new(2, 2);
        let unit = |qidx, work| MiniUnit {
            qidx,
            work,
            poison: false,
        };
        let handle = engine.submit(
            3,
            vec![vec![unit(0, 4), unit(2, 2)], vec![unit(0, 6), unit(1, 8)]],
        );
        let outcomes = handle.wait();
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[0].pages, 10); // 4 from shard 0 + 6 from shard 1
        assert_eq!(outcomes[0].runs, 2);
        assert_eq!(outcomes[1].pages, 8);
        assert_eq!(outcomes[2].pages, 2);
        // A second identical run digests identically.
        let handle = engine.submit(
            3,
            vec![vec![unit(0, 4), unit(2, 2)], vec![unit(0, 6), unit(1, 8)]],
        );
        assert_eq!(digest_outcomes(&handle.wait()), digest_outcomes(&outcomes));
    }

    #[test]
    fn plain_mode_bounded_submit_backpressures_and_matches_unbounded() {
        let engine = MiniEngine::new(2, 2);
        let unit = |qidx, work| MiniUnit {
            qidx,
            work,
            poison: false,
        };
        let batch = |e: &MiniEngine, bound: Option<usize>| {
            let units = vec![vec![unit(0, 4), unit(2, 2)], vec![unit(0, 6), unit(1, 8)]];
            match bound {
                Some(b) => e.submit_bounded(3, units, b),
                None => e.submit(3, units),
            }
        };
        let free = batch(&engine, None).wait();
        // Depth 1 forces the submitter through the wait path on the
        // second unit of each shard; the merged outcomes are identical.
        for _ in 0..8 {
            let bounded = batch(&engine, Some(1)).wait();
            assert_eq!(
                digest_outcomes(&bounded),
                digest_outcomes(&free),
                "bounded admission changed answers"
            );
        }
    }

    #[test]
    fn plain_mode_zero_unit_batch_returns_immediately() {
        let engine = MiniEngine::new(1, 2);
        let outcomes = engine.submit(2, vec![vec![], vec![]]).wait();
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].pages, 0);
    }

    #[test]
    fn plain_mode_poisoned_unit_panics_wait_without_wedging() {
        let caught = crate::with_quiet_panics(|| {
            std::panic::catch_unwind(|| {
                let engine = MiniEngine::new(2, 1);
                let handle = engine.submit(
                    2,
                    vec![vec![
                        MiniUnit {
                            qidx: 0,
                            work: 1,
                            poison: false,
                        },
                        MiniUnit {
                            qidx: 1,
                            work: 1,
                            poison: true,
                        },
                    ]],
                );
                handle.wait()
            })
        });
        let payload = caught.expect_err("poisoned batch must fail wait()");
        let msg = payload
            .downcast_ref::<String>()
            .expect("assert! message payload");
        assert!(msg.contains("replay unit(s) panicked"), "got {msg:?}");
    }
}
