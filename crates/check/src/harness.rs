//! A miniature worker pool + per-shard FIFO + batch-handle engine.
//!
//! This is a structural mirror of `slpm_serve`'s serving stack —
//! [`MiniPool`] ↔ `slpm_serve::pool::WorkerPool`, [`MiniEngine`] ↔ the
//! per-shard FIFO queues and round-robin batch rotation of
//! `slpm_serve::engine`, [`MiniBatchHandle::wait`] ↔
//! `BatchHandle::wait` — shrunk until every bounded interleaving can be
//! explored by [`crossbeam::model::explore`]. Everything is written
//! against `crossbeam::sync` and `crossbeam::channel`, so the same code
//! runs on real primitives in plain tests and on instrumented ones
//! inside a model session.
//!
//! The protocol properties under test are exactly the engine's:
//!
//! * `submit` enqueues one `BatchWork` per shard and starts a runner for
//!   every shard that is not already running (`running` flag under the
//!   shard-queue lock — the lost-update window the checker probes);
//! * runners pop the front batch, take one unit, and rotate the batch to
//!   the back while units remain (round-robin fairness across in-flight
//!   batches);
//! * `submit_bounded` blocks the submitter on a per-shard condvar while
//!   a target shard holds `bound` or more queued units; runners decrement
//!   the count and notify under the same lock, and never wait themselves
//!   (backpressure can stall admission but never deadlock it);
//! * unit replay panics are caught, recorded, and re-raised at
//!   [`MiniBatchHandle::wait`] — never allowed to wedge the waiter;
//! * per-unit contributions merge commutatively under the progress lock,
//!   so [`slpm_serve::digest_outcomes`] over the returned outcomes must
//!   be bitwise identical on every schedule;
//! * the fault plane's breaker + epoch-swap protocol
//!   ([`MiniBreaker`](MiniBreakerState) ↔ `slpm_serve::health::ShardBreaker`,
//!   [`MiniEngine::epoch`] ↔ the engine's `ShardSet` swap): failing
//!   units are stamped doomed at admission under the fleet lock,
//!   consecutive failures trip the breaker (open → fast-fail cooldown →
//!   half-open probe → close), a trip requests a slice rebuild that the
//!   *next* admission installs by swapping an `Arc`'d epoch, and every
//!   in-flight batch drains against the epoch it pinned at admission —
//!   the fail-while-swapping and drain-vs-admit interleavings the model
//!   tests explore.

use crossbeam::channel::{self, Sender};
use crossbeam::sync::thread as sync_thread;
use crossbeam::sync::{Arc, Condvar, Mutex};
use slpm_serve::QueryOutcome;
use slpm_storage::{IoCost, QueryCost};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A tiny persistent worker pool over the shim's MPMC channel,
/// mirroring `slpm_serve::pool::WorkerPool`'s lifecycle: long-lived
/// workers drain an unbounded channel; dropping the pool disconnects the
/// channel and joins every worker.
pub struct MiniPool {
    tx: Option<Sender<Job>>,
    workers: Vec<sync_thread::JoinHandle<()>>,
}

impl MiniPool {
    /// Start `workers` pool threads (model threads inside a session).
    pub fn new(workers: usize) -> MiniPool {
        let (tx, rx) = channel::unbounded::<Job>();
        let workers = (0..workers)
            .map(|_| {
                let rx = rx.clone();
                sync_thread::spawn(move || {
                    for job in rx.iter() {
                        if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                            // The model's teardown signal must unwind the
                            // whole thread; everything else mirrors the
                            // real pool's swallow-and-count behaviour
                            // (failures are the batch's to record).
                            if crossbeam::model::is_abort(&*payload) {
                                resume_unwind(payload);
                            }
                        }
                    }
                })
            })
            .collect();
        MiniPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Queue a job for some worker.
    pub fn submit(&self, job: Job) {
        self.tx
            .as_ref()
            .expect("pool channel alive until drop")
            .send(job)
            .expect("pool workers alive");
    }
}

impl Drop for MiniPool {
    fn drop(&mut self) {
        self.tx.take(); // last sender gone: workers drain and exit
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// One replay unit: the work one query routed to one shard.
#[derive(Clone, Copy, Debug)]
pub struct MiniUnit {
    /// Index of the owning query in its batch.
    pub qidx: usize,
    /// Pages this unit contributes to the query's outcome.
    pub work: usize,
    /// When set, replaying this unit panics (exercises the
    /// failure-propagation path of `wait`).
    pub poison: bool,
    /// When set, the unit is doomed *on slice incarnation 0 only*
    /// (mirrors the engine's incarnation-pinned `kill:S@N` faults: a
    /// breaker trip rebuilds the slice and heals the fault). Doomed
    /// units degrade instead of serving and drive the breaker.
    pub fail: bool,
}

/// Recovery knobs for the mini breaker — the breaker half of
/// `slpm_serve::health::RecoveryConfig`.
#[derive(Clone, Copy, Debug)]
pub struct MiniRecovery {
    /// Consecutive doomed units that trip the breaker.
    pub threshold: u32,
    /// Units fast-failed after a trip before a probe is allowed.
    pub cooldown: u32,
}

impl Default for MiniRecovery {
    fn default() -> MiniRecovery {
        MiniRecovery {
            threshold: 2,
            cooldown: 1,
        }
    }
}

/// Mini breaker phases, mirroring `slpm_serve::health::BreakerState`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MiniBreakerState {
    /// Healthy: units execute, consecutive failures are counted.
    Closed,
    /// Tripped: units fast-fail for `cooldown` stamps, then probe.
    Open,
    /// Probing: the next unit decides close (success) or re-open.
    HalfOpen,
}

/// Per-shard circuit breaker — a line-for-line shrink of
/// `slpm_serve::health::ShardBreaker`, advanced only at admission time
/// under the fleet lock (which is what makes its decisions
/// schedule-invariant in the real engine too).
struct MiniBreaker {
    state: MiniBreakerState,
    consecutive_failures: u32,
    cooldown_left: u32,
    trips: u32,
    incarnation: u64,
    rebuild_pending: bool,
}

impl MiniBreaker {
    fn new() -> MiniBreaker {
        MiniBreaker {
            state: MiniBreakerState::Closed,
            consecutive_failures: 0,
            cooldown_left: 0,
            trips: 0,
            incarnation: 0,
            rebuild_pending: false,
        }
    }

    /// Advance on one admitted unit; `true` means execute (serve or
    /// degrade), `false` means fast-fail without touching the shard.
    fn on_unit(&mut self, doomed: bool, cfg: &MiniRecovery) -> bool {
        match self.state {
            MiniBreakerState::Closed => {
                if doomed {
                    self.consecutive_failures += 1;
                    if self.consecutive_failures >= cfg.threshold {
                        self.trip(cfg);
                    }
                } else {
                    self.consecutive_failures = 0;
                }
                true
            }
            MiniBreakerState::Open => {
                if self.cooldown_left > 0 {
                    self.cooldown_left -= 1;
                    false
                } else {
                    self.state = MiniBreakerState::HalfOpen;
                    self.probe(doomed, cfg)
                }
            }
            MiniBreakerState::HalfOpen => self.probe(doomed, cfg),
        }
    }

    fn probe(&mut self, doomed: bool, cfg: &MiniRecovery) -> bool {
        if doomed {
            self.state = MiniBreakerState::Open;
            self.cooldown_left = cfg.cooldown;
        } else {
            self.state = MiniBreakerState::Closed;
            self.consecutive_failures = 0;
        }
        true
    }

    fn trip(&mut self, cfg: &MiniRecovery) {
        self.state = MiniBreakerState::Open;
        self.trips += 1;
        self.incarnation += 1;
        self.cooldown_left = cfg.cooldown;
        self.consecutive_failures = 0;
        self.rebuild_pending = true;
    }
}

/// The swappable slice set: just an epoch counter here, but `Arc`-pinned
/// by every in-flight batch exactly as the real `ShardSet` is — the
/// drain-vs-admit obligation is that a unit only ever replays against
/// the epoch its admission pinned.
struct MiniSlices {
    epoch: u64,
}

/// Mutable batch accounting, guarded by the batch lock.
struct Progress {
    units_left: usize,
    failed: usize,
    /// `(qidx, shard)` of every unit that degraded (doomed or
    /// fast-failed) instead of serving.
    degraded: Vec<(usize, usize)>,
    outcomes: Vec<Option<QueryOutcome>>,
}

/// Completion state one batch's waiters block on.
struct BatchState {
    progress: Mutex<Progress>,
    done: Condvar,
}

impl BatchState {
    fn record_unit(&self, qidx: usize, pages: usize) {
        let mut p = self.progress.lock().expect("batch progress");
        let outcome = p.outcomes[qidx].get_or_insert_with(|| empty_outcome(qidx));
        // Commutative merges only: unit arrival order is
        // schedule-dependent, the merged outcome must not be.
        outcome.pages += pages;
        outcome.runs += 1;
        outcome.hits += pages / 2;
        outcome.misses += pages - pages / 2;
        finish_unit(self, p);
    }

    fn record_degraded(&self, qidx: usize, shard: usize) {
        let mut p = self.progress.lock().expect("batch progress");
        p.degraded.push((qidx, shard));
        finish_unit(self, p);
    }

    fn record_failure(&self) {
        let mut p = self.progress.lock().expect("batch progress");
        p.failed += 1;
        finish_unit(self, p);
    }
}

fn finish_unit(state: &BatchState, mut p: crossbeam::sync::MutexGuard<'_, Progress>) {
    assert!(
        p.units_left > 0,
        "mini batch: more units settled than queued"
    );
    p.units_left -= 1;
    if p.units_left == 0 {
        state.done.notify_all();
    }
}

fn empty_outcome(qidx: usize) -> QueryOutcome {
    QueryOutcome {
        results: vec![qidx],
        pages: 0,
        runs: 0,
        hits: 0,
        misses: 0,
        io: IoCost {
            pages: 0,
            runs: 0,
            total: 0.0,
        },
        tree: QueryCost::ZERO,
        seconds: 0.0,
        fault_us: 0.0,
        degraded_pages: 0,
    }
}

/// How an admitted unit must be handled, stamped under the fleet lock
/// at admission exactly as `slpm_serve::engine`'s `UnitDirective` is.
#[derive(Clone, Copy)]
enum Directive {
    /// Healthy: replay normally.
    Serve,
    /// Doomed at the pinned incarnation: skip replay, record degraded.
    Degrade,
    /// Breaker open: degrade without touching the shard at all.
    FastFail,
}

/// One admitted unit plus its admission-time fault-plane stamps.
struct QueuedUnit {
    unit: MiniUnit,
    directive: Directive,
    /// Slice epoch current when this unit was admitted; the runner
    /// asserts the batch's pinned slices still carry it.
    epoch: u64,
}

/// One batch's units queued on one shard.
struct BatchWork {
    state: Arc<BatchState>,
    /// Slices pinned at admission: in-flight batches drain the epoch
    /// they were admitted under even if a later admission swaps it.
    slices: Arc<MiniSlices>,
    units: VecDeque<QueuedUnit>,
}

/// A shard's FIFO of in-flight batches plus its runner flag and the
/// queued-unit count bounded admission waits on.
struct ShardQueue {
    batches: VecDeque<BatchWork>,
    running: bool,
    pending_units: usize,
}

/// One shard's queue plus the condvar bounded submitters block on,
/// mirroring `slpm_serve::engine`'s `ShardGate`.
struct ShardGate {
    queue: Mutex<ShardQueue>,
    space: Condvar,
}

struct Shared {
    queues: Vec<ShardGate>,
    /// Per-shard breakers, advanced at admission under this one lock —
    /// mirrors `EngineShared::fleet`.
    fleet: Mutex<Vec<MiniBreaker>>,
    /// The current epoch's slices, swapped at admission boundaries when
    /// a rebuild is pending — mirrors `EngineShared::slices`.
    slices: Mutex<Arc<MiniSlices>>,
    recovery: MiniRecovery,
}

/// Handle to one submitted batch; [`wait`](MiniBatchHandle::wait) blocks
/// until every unit settled.
pub struct MiniBatchHandle {
    state: Arc<BatchState>,
}

impl MiniBatchHandle {
    /// Block until every unit of the batch has settled, then return the
    /// merged per-query outcomes (in query order).
    ///
    /// # Panics
    /// Panics when any replay unit panicked — after all units settled,
    /// so a failed batch still never wedges its waiter.
    pub fn wait(self) -> Vec<QueryOutcome> {
        self.wait_degraded().0
    }

    /// Like [`wait`](MiniBatchHandle::wait), additionally returning the
    /// `(qidx, shard)` pairs of every degraded unit, sorted — the mini
    /// analogue of `BatchReport`'s coverage, and like it required to be
    /// a schedule-invariant function of the admitted sequence.
    ///
    /// # Panics
    /// Panics when any replay unit panicked, after all units settled.
    pub fn wait_degraded(self) -> (Vec<QueryOutcome>, Vec<(usize, usize)>) {
        let mut p = self.state.progress.lock().expect("batch progress");
        while p.units_left > 0 {
            p = self.state.done.wait(p).expect("batch progress");
        }
        let failed = p.failed;
        let mut degraded = std::mem::take(&mut p.degraded);
        let outcomes = std::mem::take(&mut p.outcomes);
        drop(p);
        assert!(
            failed == 0,
            "mini batch: {failed} replay unit(s) panicked during this batch"
        );
        degraded.sort_unstable();
        let outcomes = outcomes
            .into_iter()
            .enumerate()
            .map(|(qidx, o)| o.unwrap_or_else(|| empty_outcome(qidx)))
            .collect();
        (outcomes, degraded)
    }
}

/// The miniature engine: per-shard FIFO queues drained by [`MiniPool`]
/// runners, mirroring `slpm_serve::engine::ServeEngine`'s admission.
pub struct MiniEngine {
    pool: MiniPool,
    shared: Arc<Shared>,
}

impl MiniEngine {
    /// Build an engine with `workers` pool threads and `shards` queues,
    /// using the default [`MiniRecovery`] knobs.
    pub fn new(workers: usize, shards: usize) -> MiniEngine {
        MiniEngine::with_recovery(workers, shards, MiniRecovery::default())
    }

    /// Build an engine with explicit breaker knobs.
    pub fn with_recovery(workers: usize, shards: usize, recovery: MiniRecovery) -> MiniEngine {
        MiniEngine {
            pool: MiniPool::new(workers),
            shared: Arc::new(Shared {
                queues: (0..shards)
                    .map(|_| ShardGate {
                        queue: Mutex::new(ShardQueue {
                            batches: VecDeque::new(),
                            running: false,
                            pending_units: 0,
                        }),
                        space: Condvar::new(),
                    })
                    .collect(),
                fleet: Mutex::new((0..shards).map(|_| MiniBreaker::new()).collect()),
                slices: Mutex::new(Arc::new(MiniSlices { epoch: 0 })),
                recovery,
            }),
        }
    }

    /// The epoch of the currently installed slices.
    pub fn epoch(&self) -> u64 {
        self.shared.slices.lock().expect("mini slices").epoch
    }

    /// Snapshot one shard's breaker: `(state, trips, incarnation)`.
    pub fn breaker(&self, shard: usize) -> (MiniBreakerState, u32, u64) {
        let fleet = self.shared.fleet.lock().expect("mini fleet");
        let b = &fleet[shard];
        (b.state, b.trips, b.incarnation)
    }

    /// Admit a batch of `queries` queries whose per-shard units are
    /// `shard_units[shard]`; returns immediately with a wait handle.
    pub fn submit(&self, queries: usize, shard_units: Vec<Vec<MiniUnit>>) -> MiniBatchHandle {
        self.admit(queries, shard_units, None)
    }

    /// Admit a batch under a per-shard queued-unit bound, mirroring
    /// `ServeEngine::submit_planned_bounded`: the caller blocks (shard by
    /// shard, in ascending order) while a target shard already holds
    /// `bound` or more queued units, and runners wake waiters as they
    /// drain. Runners themselves never wait, so admission can stall but
    /// never deadlock — the property the model tests pin down.
    pub fn submit_bounded(
        &self,
        queries: usize,
        shard_units: Vec<Vec<MiniUnit>>,
        bound: usize,
    ) -> MiniBatchHandle {
        self.admit(queries, shard_units, Some(bound.max(1)))
    }

    /// Failover at the admission boundary, mirroring the engine's
    /// `install_rebuilds`: collect pending rebuilds under the fleet
    /// lock, then (only if any) swap a fresh epoch in under the slices
    /// lock. The two locks are taken sequentially, never nested — the
    /// same non-deadlocking order the real engine uses.
    fn install_rebuilds(&self) {
        let pending = {
            let mut fleet = self.shared.fleet.lock().expect("mini fleet");
            fleet
                .iter_mut()
                .any(|b| std::mem::take(&mut b.rebuild_pending))
        };
        if pending {
            let mut slices = self.shared.slices.lock().expect("mini slices");
            *slices = Arc::new(MiniSlices {
                epoch: slices.epoch + 1,
            });
        }
    }

    fn admit(
        &self,
        queries: usize,
        shard_units: Vec<Vec<MiniUnit>>,
        bound: Option<usize>,
    ) -> MiniBatchHandle {
        assert_eq!(shard_units.len(), self.shared.queues.len());
        self.install_rebuilds();
        let slices = Arc::clone(&*self.shared.slices.lock().expect("mini slices"));
        let total: usize = shard_units.iter().map(Vec::len).sum();
        let state = Arc::new(BatchState {
            progress: Mutex::new(Progress {
                units_left: total,
                failed: 0,
                degraded: Vec::new(),
                outcomes: (0..queries).map(|_| None).collect(),
            }),
            done: Condvar::new(),
        });
        // Stamp every unit's directive under one fleet-lock hold, in
        // shard-then-queue order — admission-time decisions are what
        // keep degraded coverage schedule-invariant.
        let stamped: Vec<Vec<QueuedUnit>> = {
            let mut fleet = self.shared.fleet.lock().expect("mini fleet");
            shard_units
                .into_iter()
                .enumerate()
                .map(|(shard, units)| {
                    units
                        .into_iter()
                        .map(|unit| {
                            let doomed = unit.fail && fleet[shard].incarnation == 0;
                            let directive = if !fleet[shard].on_unit(doomed, &self.shared.recovery)
                            {
                                Directive::FastFail
                            } else if doomed {
                                Directive::Degrade
                            } else {
                                Directive::Serve
                            };
                            QueuedUnit {
                                unit,
                                directive,
                                epoch: slices.epoch,
                            }
                        })
                        .collect()
                })
                .collect()
        };
        for (shard, units) in stamped.into_iter().enumerate() {
            if units.is_empty() {
                continue;
            }
            let start_runner = {
                let gate = &self.shared.queues[shard];
                let mut q = gate.queue.lock().expect("shard queue");
                if let Some(bound) = bound {
                    while q.pending_units >= bound {
                        q = gate.space.wait(q).expect("shard queue");
                    }
                    // The capacity invariant, checked under the lock at
                    // every admission on every explored schedule.
                    assert!(
                        q.pending_units < bound,
                        "bounded admission woke with a full queue"
                    );
                }
                q.pending_units += units.len();
                q.batches.push_back(BatchWork {
                    state: Arc::clone(&state),
                    slices: Arc::clone(&slices),
                    units: units.into(),
                });
                let start = !q.running;
                if start {
                    q.running = true;
                }
                start
            };
            if start_runner {
                let shared = Arc::clone(&self.shared);
                self.pool
                    .submit(Box::new(move || run_shard(&shared, shard)));
            }
        }
        MiniBatchHandle { state }
    }
}

/// Drain one shard's queue: one unit per iteration, rotating the batch
/// to the back while it has more (round-robin across in-flight batches),
/// exactly as `slpm_serve::engine`'s shard runner does.
fn run_shard(shared: &Arc<Shared>, shard: usize) {
    // xtask:allow(unbounded-retry): queue-drain loop — exits when the
    // shard FIFO is empty, never retries a faultable call.
    loop {
        let (queued, state, slices) = {
            let gate = &shared.queues[shard];
            let mut q = gate.queue.lock().expect("shard queue");
            let Some(mut batch) = q.batches.pop_front() else {
                // The `running = false` ↔ `submit` handoff is the
                // classic lost-batch window; both sides act under this
                // lock, and the model checker verifies there is no
                // schedule on which a queued batch is never drained.
                q.running = false;
                return;
            };
            let unit = batch.units.pop_front().expect("queued batch has units");
            let state = Arc::clone(&batch.state);
            let slices = Arc::clone(&batch.slices);
            if !batch.units.is_empty() {
                q.batches.push_back(batch);
            }
            // Pop and notify under the same lock, exactly as the engine's
            // runner does — the no-lost-wakeup obligation of the bounded
            // admission protocol.
            assert!(q.pending_units > 0, "mini shard: unit drained twice");
            q.pending_units -= 1;
            gate.space.notify_all();
            (unit, state, slices)
        };
        // Drain-vs-admit obligation: whatever epoch is *currently*
        // installed, this unit replays against the slices its admission
        // pinned — checked on every unit of every explored schedule.
        assert_eq!(
            queued.epoch, slices.epoch,
            "mini shard: unit drained against a slice epoch it was not admitted under"
        );
        match queued.directive {
            Directive::Degrade | Directive::FastFail => {
                state.record_degraded(queued.unit.qidx, shard);
            }
            Directive::Serve => match catch_unwind(AssertUnwindSafe(|| replay_unit(queued.unit))) {
                Ok(pages) => state.record_unit(queued.unit.qidx, pages),
                Err(payload) => {
                    if crossbeam::model::is_abort(&*payload) {
                        resume_unwind(payload);
                    }
                    state.record_failure();
                }
            },
        }
    }
}

/// Replay one unit: a deterministic function of the unit alone, so any
/// schedule-dependence in the merged outcomes must come from the
/// concurrency protocol — which is what the digest invariance test
/// pins down.
fn replay_unit(unit: MiniUnit) -> usize {
    if unit.poison {
        panic!("seeded replay-unit panic (qidx {})", unit.qidx);
    }
    unit.work
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpm_serve::digest_outcomes;

    #[test]
    fn plain_mode_engine_merges_outcomes_in_query_order() {
        let engine = MiniEngine::new(2, 2);
        let unit = |qidx, work| MiniUnit {
            qidx,
            work,
            poison: false,
            fail: false,
        };
        let handle = engine.submit(
            3,
            vec![vec![unit(0, 4), unit(2, 2)], vec![unit(0, 6), unit(1, 8)]],
        );
        let outcomes = handle.wait();
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[0].pages, 10); // 4 from shard 0 + 6 from shard 1
        assert_eq!(outcomes[0].runs, 2);
        assert_eq!(outcomes[1].pages, 8);
        assert_eq!(outcomes[2].pages, 2);
        // A second identical run digests identically.
        let handle = engine.submit(
            3,
            vec![vec![unit(0, 4), unit(2, 2)], vec![unit(0, 6), unit(1, 8)]],
        );
        assert_eq!(digest_outcomes(&handle.wait()), digest_outcomes(&outcomes));
    }

    #[test]
    fn plain_mode_bounded_submit_backpressures_and_matches_unbounded() {
        let engine = MiniEngine::new(2, 2);
        let unit = |qidx, work| MiniUnit {
            qidx,
            work,
            poison: false,
            fail: false,
        };
        let batch = |e: &MiniEngine, bound: Option<usize>| {
            let units = vec![vec![unit(0, 4), unit(2, 2)], vec![unit(0, 6), unit(1, 8)]];
            match bound {
                Some(b) => e.submit_bounded(3, units, b),
                None => e.submit(3, units),
            }
        };
        let free = batch(&engine, None).wait();
        // Depth 1 forces the submitter through the wait path on the
        // second unit of each shard; the merged outcomes are identical.
        for _ in 0..8 {
            let bounded = batch(&engine, Some(1)).wait();
            assert_eq!(
                digest_outcomes(&bounded),
                digest_outcomes(&free),
                "bounded admission changed answers"
            );
        }
    }

    #[test]
    fn plain_mode_zero_unit_batch_returns_immediately() {
        let engine = MiniEngine::new(1, 2);
        let outcomes = engine.submit(2, vec![vec![], vec![]]).wait();
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].pages, 0);
    }

    #[test]
    fn plain_mode_breaker_trips_swaps_epoch_and_heals_pinned_faults() {
        let engine = MiniEngine::with_recovery(
            2,
            2,
            MiniRecovery {
                threshold: 2,
                cooldown: 1,
            },
        );
        let fail = |qidx| MiniUnit {
            qidx,
            work: 3,
            poison: false,
            fail: true,
        };
        let ok = |qidx, work| MiniUnit {
            qidx,
            work,
            poison: false,
            fail: false,
        };
        // Two doomed units trip shard 0's breaker during this admission;
        // shard 1 is untouched.
        let (_, degraded) = engine
            .submit(2, vec![vec![fail(0), fail(1)], vec![ok(0, 6)]])
            .wait_degraded();
        assert_eq!(degraded, vec![(0, 0), (1, 0)]);
        let (state, trips, incarnation) = engine.breaker(0);
        assert_eq!((state, trips, incarnation), (MiniBreakerState::Open, 1, 1));
        assert_eq!(engine.epoch(), 0, "rebuild installs at the NEXT admission");
        // Next admission swaps the epoch; its one shard-0 unit burns the
        // cooldown as a fast-fail.
        let (_, degraded) = engine
            .submit(1, vec![vec![ok(0, 4)], vec![]])
            .wait_degraded();
        assert_eq!(engine.epoch(), 1);
        assert_eq!(degraded, vec![(0, 0)]);
        // Cooldown spent: the next unit probes, succeeds (the fail flag
        // is pinned to incarnation 0), and closes the breaker.
        let (outcomes, degraded) = engine
            .submit(1, vec![vec![ok(0, 4)], vec![]])
            .wait_degraded();
        assert!(degraded.is_empty());
        assert_eq!(outcomes[0].pages, 4);
        assert_eq!(engine.breaker(0).0, MiniBreakerState::Closed);
        assert_eq!(engine.breaker(1), (MiniBreakerState::Closed, 0, 0));
    }

    #[test]
    fn plain_mode_poisoned_unit_panics_wait_without_wedging() {
        let caught = crate::with_quiet_panics(|| {
            std::panic::catch_unwind(|| {
                let engine = MiniEngine::new(2, 1);
                let handle = engine.submit(
                    2,
                    vec![vec![
                        MiniUnit {
                            qidx: 0,
                            work: 1,
                            poison: false,
                            fail: false,
                        },
                        MiniUnit {
                            qidx: 1,
                            work: 1,
                            poison: true,
                            fail: false,
                        },
                    ]],
                );
                handle.wait()
            })
        });
        let payload = caught.expect_err("poisoned batch must fail wait()");
        let msg = payload
            .downcast_ref::<String>()
            .expect("assert! message payload");
        assert!(msg.contains("replay unit(s) panicked"), "got {msg:?}");
    }
}
