//! `xtask` — the repo's source-level lint pass (no external deps).
//!
//! `cargo run -p xtask -- lint` scans every `.rs` file under `crates/`,
//! `shims/` and `src/` and enforces invariants the compiler can't —
//! the hand-written rules behind the tree's determinism and memory-safety
//! claims:
//!
//! * **`unsafe-outside-shims`** — `unsafe` code may exist only under
//!   `shims/`, and every occurrence there must carry a `// SAFETY:`
//!   comment in the line-comment block directly above it.
//! * **`thread-spawn`** — raw `std::thread::spawn` / `thread::Builder`
//!   is confined to `crates/serve/src/pool.rs` (the one blessed spawn
//!   site) and the shims; everything else goes through the pool or the
//!   `crossbeam::sync::thread` facade so the model checker can see it.
//! * **`float-reduce`** — no ad-hoc `f64`/`f32` `.sum()` / sum-like
//!   `fold` outside the blessed fixed-chunk tree-reduction helpers in
//!   `crates/linalg/src/vector.rs`: ad-hoc reductions over par-chunk
//!   results reassociate and break bitwise digest parity. Serial,
//!   order-fixed folds are fine but must say so with a pragma.
//! * **`wall-clock`** — no `Instant::now` / `SystemTime` in
//!   digest-feeding crates (`crates/*` except the bench crate):
//!   wall-clock readings must never reach a digest.
//! * **`unbounded-retry`** — no bare `loop` in the fault-aware serving
//!   stack (`crates/serve`, `crates/check` non-test code): a retry
//!   around a faultable call must be bounded (a `for` over an attempt
//!   budget) so a permanently failed shard cannot wedge a worker.
//!   Queue-drain and other provably-terminating loops carry a reasoned
//!   pragma.
//! * **`adhoc-pool`** — `Pool::new(..)` / `Pool::default()` in
//!   `crates/cli` and `crates/linalg` is confined to
//!   `crates/linalg/src/parallel.rs` (the dispatch layer itself):
//!   every other site must accept a `Pool` through the `_on` entry
//!   points or borrow one from `WorkerPool::linalg_pool()`, so spectral
//!   solves never silently fall back to per-call scoped spawn pools.
//!   Compatibility wrappers that intentionally build a one-shot pool
//!   carry a reasoned pragma.
//! * **`fs-only-in-storage`** — `std::fs` is confined to
//!   `crates/storage/src/diskfile.rs` (the out-of-core tier) and the
//!   shims; everything else reaches bytes through `PageFile`/`PageStore`
//!   so checksums, accounting and fault injection cannot be bypassed.
//!   Non-serving sites with a legitimate need (the linter reading the
//!   tree, benches persisting artifacts) carry a reasoned pragma.
//! * **`forbid-unsafe`** — every `crates/*/src/lib.rs` carries
//!   `#![forbid(unsafe_code)]`.
//!
//! A finding is silenced by an explicit, reasoned pragma on the same
//! line or in the line-comment block directly above:
//! `// xtask:allow(<rule>): <why this is sound>`.
//! Pragmas with unknown rule names or missing reasons are themselves
//! violations. Test code (`#[cfg(test)]` regions, `tests/`, `benches/`,
//! `examples/`) is exempt from the determinism rules but not from the
//! `unsafe` rules.
//!
//! The scanner is AST-lite by design: comments and string literals are
//! stripped with a small state machine, then rules match on the
//! remaining code text per line. Obfuscated violations (e.g. renaming
//! `std::thread` on import) can evade it; clippy, rustdoc and review
//! cover that tail.

#![forbid(unsafe_code)]

// xtask:allow(fs-only-in-storage): the linter must read the tree it scans
use std::fs;
use std::path::{Path, PathBuf};

/// Every rule the pragma parser accepts.
const RULES: &[&str] = &[
    "unsafe-outside-shims",
    "thread-spawn",
    "float-reduce",
    "wall-clock",
    "unbounded-retry",
    "adhoc-pool",
    "fs-only-in-storage",
    "forbid-unsafe",
];

/// The one file allowed to call `std::thread::spawn`/`Builder` directly.
const BLESSED_SPAWN_SITE: &str = "crates/serve/src/pool.rs";
/// The blessed fixed-chunk tree-reduction helpers (deterministic at any
/// thread count); float reductions are expected to live here.
const BLESSED_FLOAT_FILE: &str = "crates/linalg/src/vector.rs";
/// Measurement-only crate: wall-clock readings are its whole point.
const BENCH_CRATE_PREFIX: &str = "crates/bench/";
/// The out-of-core tier — the one module allowed to touch `std::fs`.
const BLESSED_FS_FILE: &str = "crates/storage/src/diskfile.rs";
/// The deterministic dispatch layer — the one file in the pool-lint
/// scope allowed to construct `Pool` values directly.
const BLESSED_POOL_FILE: &str = "crates/linalg/src/parallel.rs";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = repo_root();
            let (violations, files) = lint_tree(&root);
            if violations.is_empty() {
                println!("xtask lint: clean ({files} files scanned)");
            } else {
                for v in &violations {
                    eprintln!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.message);
                }
                eprintln!(
                    "xtask lint: {} violation(s) in {files} files",
                    violations.len()
                );
                std::process::exit(1);
            }
        }
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint");
            std::process::exit(2);
        }
    }
}

fn repo_root() -> PathBuf {
    // crates/xtask/ -> crates/ -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels under the repo root")
        .to_path_buf()
}

struct Violation {
    path: String,
    line: usize,
    rule: &'static str,
    message: String,
}

fn lint_tree(root: &Path) -> (Vec<Violation>, usize) {
    let mut files = Vec::new();
    for top in ["crates", "shims", "src"] {
        collect_rs_files(&root.join(top), &mut files);
    }
    files.sort();
    let mut violations = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .expect("collected under root")
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(file)
            .unwrap_or_else(|e| panic!("xtask lint: cannot read {rel}: {e}"));
        lint_file(&rel, &source, &mut violations);
    }
    violations.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    (violations, files.len())
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name != "target" && name != ".git" {
                collect_rs_files(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn lint_file(rel: &str, source: &str, out: &mut Vec<Violation>) {
    let raw: Vec<&str> = source.lines().collect();
    let code = strip_comments_and_strings(source);
    let code: Vec<&str> = code.lines().collect();
    debug_assert_eq!(raw.len(), code.len(), "line mismatch in {rel}");
    let in_test = test_regions(&code);

    let in_shims = rel.starts_with("shims/");
    let in_test_tree = rel
        .split('/')
        .any(|c| c == "tests" || c == "benches" || c == "examples");
    let is_lib_rs = rel.starts_with("crates/") && rel.ends_with("/src/lib.rs");

    // forbid-unsafe: every implementation crate's lib.rs opts out of
    // unsafe entirely (the shims are the only unsafe boundary).
    if is_lib_rs && !source.contains("#![forbid(unsafe_code)]") {
        out.push(Violation {
            path: rel.to_string(),
            line: 1,
            rule: "forbid-unsafe",
            message: "crate lib.rs is missing #![forbid(unsafe_code)]".to_string(),
        });
    }

    for (idx, code_line) in code.iter().enumerate() {
        let line_no = idx + 1;
        let exempt_determinism = in_test_tree || in_test[idx];

        // Pragma hygiene: every xtask:allow comment must name a known
        // rule and give a reason (placeholders like `<rule>` in prose
        // and pragma-shaped string literals in code are not pragmas).
        for err in malformed_pragmas(raw[idx]) {
            out.push(Violation {
                path: rel.to_string(),
                line: line_no,
                rule: "forbid-unsafe", // pragma errors gate like hard errors
                message: err,
            });
        }

        if contains_word(code_line, "unsafe") {
            if !in_shims {
                out.push(Violation {
                    path: rel.to_string(),
                    line: line_no,
                    rule: "unsafe-outside-shims",
                    message: "`unsafe` is confined to shims/ (everything else is \
                              #![forbid(unsafe_code)])"
                        .to_string(),
                });
            } else if !has_safety_comment(&raw, idx) {
                out.push(Violation {
                    path: rel.to_string(),
                    line: line_no,
                    rule: "unsafe-outside-shims",
                    message: "`unsafe` without a `// SAFETY:` comment in the \
                              line-comment block directly above"
                        .to_string(),
                });
            }
        }

        if !in_shims && rel != BLESSED_SPAWN_SITE && !exempt_determinism {
            let spawns = code_line.contains("std::thread::spawn")
                || code_line.contains("stdthread::spawn")
                || code_line.contains("thread::Builder");
            if spawns && !allowed(&raw, idx, "thread-spawn") {
                out.push(Violation {
                    path: rel.to_string(),
                    line: line_no,
                    rule: "thread-spawn",
                    message: format!(
                        "raw OS-thread spawn outside {BLESSED_SPAWN_SITE} and shims/ — \
                         use the WorkerPool or the crossbeam::sync::thread facade"
                    ),
                });
            }
        }

        if !in_shims
            && rel != BLESSED_FLOAT_FILE
            && !exempt_determinism
            && is_float_reduce(code_line)
            && !allowed(&raw, idx, "float-reduce")
        {
            out.push(Violation {
                path: rel.to_string(),
                line: line_no,
                rule: "float-reduce",
                message: "ad-hoc float reduction outside the blessed fixed-chunk \
                          helpers (slpm_linalg::vector) — use dot/sum_kernel_chunked, \
                          or annotate why this fold is serial and order-fixed"
                    .to_string(),
            });
        }

        if (rel.starts_with("crates/serve/") || rel.starts_with("crates/check/"))
            && !exempt_determinism
            && contains_word(code_line, "loop")
            && !allowed(&raw, idx, "unbounded-retry")
        {
            out.push(Violation {
                path: rel.to_string(),
                line: line_no,
                rule: "unbounded-retry",
                message: "bare `loop` in the fault-aware serving stack — bound retries \
                          with an attempt budget (`for attempt in 0..max_attempts`), or \
                          annotate why this loop provably terminates"
                    .to_string(),
            });
        }

        if (rel.starts_with("crates/cli/") || rel.starts_with("crates/linalg/"))
            && rel != BLESSED_POOL_FILE
            && !exempt_determinism
            && is_adhoc_pool(code_line)
            && !allowed(&raw, idx, "adhoc-pool")
        {
            out.push(Violation {
                path: rel.to_string(),
                line: line_no,
                rule: "adhoc-pool",
                message: "ad-hoc Pool construction outside the dispatch layer — take a \
                          `&Pool` via an `_on` entry point (or WorkerPool::linalg_pool), \
                          or annotate why this compatibility site builds its own pool"
                    .to_string(),
            });
        }

        if !in_shims
            && rel != BLESSED_FS_FILE
            && !exempt_determinism
            && code_line.contains("std::fs")
            && !allowed(&raw, idx, "fs-only-in-storage")
        {
            out.push(Violation {
                path: rel.to_string(),
                line: line_no,
                rule: "fs-only-in-storage",
                message: format!(
                    "filesystem access outside {BLESSED_FS_FILE} — go through \
                     PageFile/PageStore so checksums, accounting and fault \
                     injection stay on the path, or annotate why this site \
                     must touch the filesystem"
                ),
            });
        }

        if rel.starts_with("crates/") && !rel.starts_with(BENCH_CRATE_PREFIX) && !exempt_determinism
        {
            let clock = code_line.contains("Instant::now") || code_line.contains("SystemTime");
            if clock && !allowed(&raw, idx, "wall-clock") {
                out.push(Violation {
                    path: rel.to_string(),
                    line: line_no,
                    rule: "wall-clock",
                    message: "wall-clock read in a digest-feeding crate — time must \
                              never influence results; annotate latency-only uses"
                        .to_string(),
                });
            }
        }
    }
}

/// Sum-like float reductions; max/min folds are order-insensitive over
/// the values the tree feeds them and stay exempt.
fn is_float_reduce(code_line: &str) -> bool {
    if code_line.contains(".sum::<f64>()") || code_line.contains(".sum::<f32>()") {
        return true;
    }
    let typed_sum = (code_line.contains(": f64") || code_line.contains(": f32"))
        && code_line.contains(".sum()");
    let sum_fold = (code_line.contains("fold(0.0") || code_line.contains("fold(0f64"))
        && !code_line.contains("max")
        && !code_line.contains("min");
    typed_sum || sum_fold
}

/// Ad-hoc pool construction: `Pool::new(` / `Pool::default()` at a word
/// boundary, so `WorkerPool::new(..)` (the blessed persistent pool) does
/// not match. `Pool::serial()` is always fine — it spawns nothing.
fn is_adhoc_pool(code_line: &str) -> bool {
    for pat in ["Pool::new(", "Pool::default()"] {
        let mut start = 0;
        while let Some(pos) = code_line[start..].find(pat) {
            let abs = start + pos;
            let before_ok = abs == 0
                || !code_line[..abs]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            if before_ok {
                return true;
            }
            start = abs + pat.len();
        }
    }
    false
}

/// True when line `idx` (or the line-comment block directly above it)
/// carries a well-formed `xtask:allow(<rule>)` pragma — reasons often
/// wrap across lines, so the whole contiguous comment block counts.
fn allowed(raw: &[&str], idx: usize, rule: &str) -> bool {
    let needle = format!("xtask:allow({rule})");
    if raw[idx].contains(&needle) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = raw[i].trim_start();
        if !t.starts_with("//") {
            break;
        }
        if t.contains(&needle) {
            return true;
        }
    }
    false
}

/// Validate every pragma on a raw line; returns error messages.
fn malformed_pragmas(raw_line: &str) -> Vec<String> {
    let mut errs = Vec::new();
    if !raw_line.trim_start().starts_with("//") {
        return errs; // pragmas are comments; string literals are not
    }
    let mut rest = raw_line;
    while let Some(pos) = rest.find("xtask:allow(") {
        rest = &rest[pos + "xtask:allow(".len()..];
        let Some(close) = rest.find(')') else {
            errs.push("unterminated xtask:allow pragma".to_string());
            break;
        };
        let rule = &rest[..close];
        rest = &rest[close + 1..];
        if rule.contains('<') || rule.contains('{') {
            continue; // documentation placeholder, not a pragma
        }
        if !RULES.contains(&rule) {
            errs.push(format!(
                "unknown rule {rule:?} in xtask:allow pragma (known: {RULES:?})"
            ));
            continue;
        }
        let reason = rest.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            errs.push(format!(
                "xtask:allow({rule}) needs a reason: `// xtask:allow({rule}): why`"
            ));
        }
    }
    errs
}

/// True when the line-comment block directly above `idx` (or the line
/// itself) contains `SAFETY:`.
fn has_safety_comment(raw: &[&str], idx: usize) -> bool {
    if raw[idx].contains("SAFETY:") {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = raw[i].trim_start();
        if t.starts_with("//") {
            if t.contains("SAFETY:") {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// Word-boundary containment on stripped code text.
fn contains_word(code_line: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code_line[start..].find(word) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !code_line[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = abs + word.len();
        let after_ok = after >= code_line.len()
            || !code_line[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = abs + word.len();
    }
    false
}

/// Mark each line inside a `#[cfg(test)]`-attributed brace block.
fn test_regions(code: &[&str]) -> Vec<bool> {
    let mut flags = vec![false; code.len()];
    let mut depth: i64 = 0;
    let mut pending_attr = false;
    // (depth the region closes at) for the innermost open test region.
    let mut region_close_depth: Option<i64> = None;
    for (idx, line) in code.iter().enumerate() {
        if region_close_depth.is_some() || pending_attr {
            flags[idx] = true;
        }
        if line.contains("#[cfg(test)]") {
            pending_attr = true;
            flags[idx] = true;
        }
        for ch in line.chars() {
            match ch {
                '{' => {
                    if pending_attr && region_close_depth.is_none() {
                        region_close_depth = Some(depth);
                        pending_attr = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if region_close_depth == Some(depth) {
                        region_close_depth = None;
                    }
                }
                _ => {}
            }
        }
    }
    flags
}

/// Replace comments and string/char literals with spaces, preserving
/// line structure, so rule patterns only see code. Handles nested block
/// comments, escapes, raw strings (`r"…"`, `r#"…"#`), and tells
/// lifetimes from char literals.
fn strip_comments_and_strings(source: &str) -> String {
    let bytes: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut i = 0;
    let n = bytes.len();
    while i < n {
        let c = bytes[i];
        match c {
            '/' if bytes.get(i + 1).copied() == Some('/') => {
                while i < n && bytes[i] != '\n' {
                    out.push(' ');
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1).copied() == Some('*') => {
                let mut depth = 1;
                out.push(' ');
                out.push(' ');
                i += 2;
                while i < n && depth > 0 {
                    if bytes[i] == '/' && bytes.get(i + 1).copied() == Some('*') {
                        depth += 1;
                        out.push(' ');
                        out.push(' ');
                        i += 2;
                    } else if bytes[i] == '*' && bytes.get(i + 1).copied() == Some('/') {
                        depth -= 1;
                        out.push(' ');
                        out.push(' ');
                        i += 2;
                    } else {
                        out.push(if bytes[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
            }
            'r' if bytes.get(i + 1).copied() == Some('"')
                || (bytes.get(i + 1).copied() == Some('#')) =>
            {
                // Possible raw string r"…" / r#"…"# (also br…, matched
                // via the 'b' arm falling through to here next round).
                let mut hashes = 0;
                while bytes.get(i + 1 + hashes) == Some(&'#') {
                    hashes += 1;
                }
                if bytes.get(i + 1 + hashes) == Some(&'"') {
                    out.push(' ');
                    i += 1;
                    for _ in 0..=hashes {
                        out.push(' ');
                        i += 1;
                    }
                    // Consume until `"` followed by `hashes` #s.
                    'raw: while i < n {
                        if bytes[i] == '"' {
                            let mut k = 1;
                            while k <= hashes && bytes.get(i + k) == Some(&'#') {
                                k += 1;
                            }
                            if k == hashes + 1 {
                                for _ in 0..k {
                                    out.push(' ');
                                    i += 1;
                                }
                                break 'raw;
                            }
                        }
                        out.push(if bytes[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            '"' => {
                out.push(' ');
                i += 1;
                while i < n {
                    if bytes[i] == '\\' {
                        out.push(' ');
                        i += 1;
                        if i < n {
                            out.push(if bytes[i] == '\n' { '\n' } else { ' ' });
                            i += 1;
                        }
                        continue;
                    }
                    if bytes[i] == '"' {
                        out.push(' ');
                        i += 1;
                        break;
                    }
                    out.push(if bytes[i] == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            '\'' => {
                // Lifetime (`'a`, `'static`) vs char literal (`'x'`,
                // `'\n'`): a lifetime is never closed by a quote.
                let is_char = match bytes.get(i + 1).copied() {
                    Some('\\') => true,
                    Some(_) => bytes.get(i + 2).copied() == Some('\''),
                    None => false,
                };
                if is_char {
                    out.push(' ');
                    i += 1;
                    while i < n {
                        if bytes[i] == '\\' {
                            out.push(' ');
                            out.push(' ');
                            i += 2;
                            continue;
                        }
                        if bytes[i] == '\'' {
                            out.push(' ');
                            i += 1;
                            break;
                        }
                        out.push(' ');
                        i += 1;
                    }
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripper_removes_comments_and_strings_keeping_lines() {
        let src =
            "let a = \"unsafe\"; // unsafe here\nlet b = 'x'; /* unsafe\nstill */ let c = 1;\n";
        let stripped = strip_comments_and_strings(src);
        assert_eq!(stripped.lines().count(), src.lines().count());
        assert!(!stripped.contains("unsafe"));
        assert!(stripped.contains("let c = 1;"));
    }

    #[test]
    fn stripper_handles_raw_strings_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let s = r#\"unsafe \" quote\"#; }";
        let stripped = strip_comments_and_strings(src);
        assert!(!stripped.contains("unsafe"));
        assert!(stripped.contains("fn f<'a>(x: &'a str)"));
    }

    #[test]
    fn test_region_tracking_covers_nested_braces() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n fn b() { if true {} }\n}\nfn c() {}\n";
        let code: Vec<&str> = src.lines().collect();
        let flags = test_regions(&code);
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn float_reduce_patterns() {
        assert!(is_float_reduce("let s = xs.iter().sum::<f64>();"));
        assert!(is_float_reduce("let s: f64 = xs.iter().sum();"));
        assert!(is_float_reduce("xs.iter().fold(0.0, |a, b| a + b)"));
        assert!(!is_float_reduce("xs.iter().fold(0.0, f64::max)"));
        assert!(!is_float_reduce("let n: usize = xs.iter().sum();"));
    }

    #[test]
    fn pragma_validation() {
        assert!(malformed_pragmas("// xtask:allow(wall-clock): latency only").is_empty());
        assert!(!malformed_pragmas("// xtask:allow(wall-clock)").is_empty());
        assert!(!malformed_pragmas("// xtask:allow(no-such-rule): x").is_empty());
    }

    #[test]
    fn unbounded_retry_flags_bare_loops_in_the_serving_stack() {
        let bare = "fn drain() {\n    loop {\n        step();\n    }\n}\n";
        let mut v = Vec::new();
        lint_file("crates/serve/src/engine.rs", bare, &mut v);
        assert_eq!(
            v.len(),
            1,
            "expected exactly one finding: {:?}",
            v[0].message
        );
        assert_eq!(v[0].rule, "unbounded-retry");

        // A reasoned pragma on the line above silences it.
        let blessed = "fn drain() {\n    // xtask:allow(unbounded-retry): drains a \
                       bounded queue\n    loop {\n        step();\n    }\n}\n";
        let mut v = Vec::new();
        lint_file("crates/serve/src/engine.rs", blessed, &mut v);
        assert!(
            v.is_empty(),
            "pragma should silence: {:?}",
            v.first().map(|x| &x.message)
        );

        // Outside the serving stack the rule does not apply.
        let mut v = Vec::new();
        lint_file("crates/linalg/src/vector.rs", bare, &mut v);
        assert!(v.is_empty());

        // `for` over an attempt budget is the bounded idiom — clean.
        let bounded = "fn retry() {\n    for attempt in 0..max_attempts {\n        \
                       step(attempt);\n    }\n}\n";
        let mut v = Vec::new();
        lint_file("crates/check/src/harness.rs", bounded, &mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn adhoc_pool_is_confined_to_the_dispatch_layer() {
        let bare = "fn solve() {\n    let pool = Pool::new(Some(4));\n}\n";
        let mut v = Vec::new();
        lint_file("crates/linalg/src/solver.rs", bare, &mut v);
        assert_eq!(v.len(), 1, "expected exactly one finding: {v:?}");
        assert_eq!(v[0].rule, "adhoc-pool");

        let default = "fn solve() {\n    let pool = Pool::default();\n}\n";
        let mut v = Vec::new();
        lint_file("crates/cli/src/commands.rs", default, &mut v);
        assert_eq!(v.len(), 1, "expected exactly one finding: {v:?}");
        assert_eq!(v[0].rule, "adhoc-pool");

        // The dispatch layer itself is blessed by path.
        let mut v = Vec::new();
        lint_file("crates/linalg/src/parallel.rs", bare, &mut v);
        assert!(v.is_empty());

        // WorkerPool::new is the persistent pool, not an ad-hoc one, and
        // Pool::serial spawns nothing.
        let fine = "fn run() {\n    let w = WorkerPool::new(4);\n    \
                    let s = Pool::serial();\n}\n";
        let mut v = Vec::new();
        lint_file("crates/cli/src/commands.rs", fine, &mut v);
        assert!(v.is_empty(), "false positive: {v:?}");

        // A reasoned pragma blesses a compatibility wrapper.
        let blessed = "fn compat() {\n    // xtask:allow(adhoc-pool): legacy entry \
                       point builds a one-shot pool\n    let pool = \
                       Pool::new(threads);\n}\n";
        let mut v = Vec::new();
        lint_file("crates/linalg/src/fiedler.rs", blessed, &mut v);
        assert!(
            v.is_empty(),
            "pragma should silence: {:?}",
            v.first().map(|x| &x.message)
        );

        // Outside the pool-lint scope the rule does not apply.
        let mut v = Vec::new();
        lint_file("crates/graph/src/coarsen.rs", bare, &mut v);
        assert!(v.is_empty());

        // Test code may build throwaway pools freely.
        let in_tests = "#[cfg(test)]\nmod tests {\n    fn t() { let p = Pool::new(Some(2)); }\n}\n";
        let mut v = Vec::new();
        lint_file("crates/linalg/src/pcg.rs", in_tests, &mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn fs_access_is_confined_to_the_storage_tier() {
        let bare = "fn save() {\n    std::fs::write(path, bytes).unwrap();\n}\n";
        let mut v = Vec::new();
        lint_file("crates/serve/src/engine.rs", bare, &mut v);
        assert_eq!(v.len(), 1, "expected exactly one finding: {v:?}");
        assert_eq!(v[0].rule, "fs-only-in-storage");

        // The out-of-core tier itself is blessed by path.
        let mut v = Vec::new();
        lint_file("crates/storage/src/diskfile.rs", bare, &mut v);
        assert!(v.is_empty());

        // A reasoned pragma silences a legitimate non-serving site.
        let blessed = "fn save() {\n    // xtask:allow(fs-only-in-storage): bench \
                       artifact\n    std::fs::write(path, bytes).unwrap();\n}\n";
        let mut v = Vec::new();
        lint_file("crates/bench/src/bin/serve_throughput.rs", blessed, &mut v);
        assert!(
            v.is_empty(),
            "pragma should silence: {:?}",
            v.first().map(|x| &x.message)
        );

        // Test code keeps its temp-file freedom.
        let in_tests = "#[cfg(test)]\nmod tests {\n    fn t() { \
                        std::fs::remove_file(p).unwrap(); }\n}\n";
        let mut v = Vec::new();
        lint_file("crates/serve/src/engine.rs", in_tests, &mut v);
        assert!(v.is_empty());
    }

    impl std::fmt::Debug for Violation {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.path, self.line, self.rule, self.message
            )
        }
    }

    #[test]
    fn full_tree_lint_is_clean() {
        // The repo's own gate, self-hosted as a unit test: the linter
        // must pass on the tree it ships in.
        let (violations, files) = lint_tree(&repo_root());
        let rendered: Vec<String> = violations
            .iter()
            .map(|v| format!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.message))
            .collect();
        assert!(
            violations.is_empty(),
            "xtask lint found violations:\n{}",
            rendered.join("\n")
        );
        assert!(files > 40, "suspiciously few files scanned: {files}");
    }
}
