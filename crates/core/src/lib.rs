//! # Spectral LPM
//!
//! A from-scratch Rust implementation of the **Spectral Locality-Preserving
//! Mapping** algorithm of Mokbel, Aref and Grama (ICDE 2003): an optimal
//! (in the spectral-relaxation sense) mapping from multi-dimensional point
//! sets to a one-dimensional order, built on the Fiedler vector of the
//! point set's neighbourhood graph rather than on fractal space-filling
//! curves.
//!
//! ## The algorithm (paper Figure 2)
//!
//! 1. Model the point set `P` as a graph `G(V, E)`: a vertex per point, an
//!    edge between points at Manhattan distance 1.
//! 2. Form the Laplacian `L = D − A`.
//! 3. Compute the second-smallest eigenvalue λ₂ and its eigenvector `v₂`
//!    (the Fiedler vector).
//! 4. Assign `v₂[i]` to point `i`.
//! 5. The linear order of `P` is the sort order of those values.
//!
//! ## Quick start
//!
//! ```
//! use slpm_graph::grid::{Connectivity, GridSpec};
//! use spectral_lpm::{SpectralConfig, SpectralMapper};
//!
//! // The paper's Figure 3: a 3×3 grid.
//! let spec = GridSpec::new(&[3, 3]);
//! let mapper = SpectralMapper::new(SpectralConfig::default());
//! let mapping = mapper.map_grid(&spec).unwrap();
//!
//! // λ₂ of the 3×3 grid graph is exactly 1 (Figure 3d).
//! assert!((mapping.fiedler.lambda2 - 1.0).abs() < 1e-6);
//! // The result is a permutation of the 9 vertices.
//! assert_eq!(mapping.order.len(), 9);
//! ```
//!
//! ## Extensibility (paper Section 4)
//!
//! * 8-connectivity or weighted neighbourhood graphs:
//!   [`SpectralConfig::connectivity`] / [`SpectralMapper::map_graph`];
//! * access-affinity edges ("whenever `p` is accessed, `q` follows"):
//!   [`affinity::AffinityEdge`] and [`SpectralMapper::map_graph_with_affinity`].
//!
//! ## Optimality (paper Theorems 1–3)
//!
//! The Fiedler vector minimises `Σ_{(i,j)∈E} w_ij (x_i − x_j)²` over unit
//! vectors orthogonal to 𝟙 (Fiedler 1973). [`objective`] provides both that
//! continuous objective and its integer (linear-arrangement) counterparts so
//! tests and benchmarks can verify the bound `λ₂ ≤ 2·OBJ(π)/(n·Var)` style
//! relations directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affinity;
pub mod diagnostics;
pub mod mapper;
pub mod objective;
pub mod order;
pub mod partition;
pub mod recursive;

pub use affinity::AffinityEdge;
pub use diagnostics::OrderReport;
pub use mapper::{MappingError, SpectralConfig, SpectralMapper, SpectralMapping};
pub use order::LinearOrder;
pub use partition::{spectral_bisection, Bisection};
pub use recursive::{
    multi_vector_order, multi_vector_order_on, rsb_order, rsb_order_on, RsbOptions,
};
