//! Linear orders (permutations) of a vertex/point set.
//!
//! Every locality-preserving mapping in this reproduction — spectral or
//! fractal — ultimately yields a [`LinearOrder`]: a bijection between
//! vertices `0..n` and positions `0..n`. The experiment layer consumes the
//! two lookup directions (`rank_of`, `vertex_at`) without caring where the
//! order came from.

use std::fmt;

/// Errors from order construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderError {
    /// The supplied ranks were not a permutation of `0..n`.
    NotAPermutation {
        /// First offending position or vertex.
        detail: String,
    },
    /// Value/key list length didn't match the expected vertex count.
    LengthMismatch {
        /// Expected number of vertices.
        expected: usize,
        /// Supplied length.
        found: usize,
    },
}

impl fmt::Display for OrderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrderError::NotAPermutation { detail } => {
                write!(f, "ranks do not form a permutation: {detail}")
            }
            OrderError::LengthMismatch { expected, found } => {
                write!(f, "length mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for OrderError {}

/// A linear order of `n` vertices: a permutation with O(1) lookups in both
/// directions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearOrder {
    /// `rank[v]` = position of vertex `v` in the order.
    rank: Vec<usize>,
    /// `perm[p]` = vertex at position `p`. Inverse of `rank`.
    perm: Vec<usize>,
}

impl LinearOrder {
    /// The identity order on `n` vertices.
    pub fn identity(n: usize) -> Self {
        let v: Vec<usize> = (0..n).collect();
        LinearOrder {
            rank: v.clone(),
            perm: v,
        }
    }

    /// Build from a rank vector (`rank[v]` = position of vertex `v`).
    pub fn from_ranks(rank: Vec<usize>) -> Result<Self, OrderError> {
        let n = rank.len();
        let mut perm = vec![usize::MAX; n];
        for (v, &p) in rank.iter().enumerate() {
            if p >= n {
                return Err(OrderError::NotAPermutation {
                    detail: format!("vertex {v} has rank {p} ≥ n = {n}"),
                });
            }
            if perm[p] != usize::MAX {
                return Err(OrderError::NotAPermutation {
                    detail: format!("rank {p} assigned to both {} and {v}", perm[p]),
                });
            }
            perm[p] = v;
        }
        Ok(LinearOrder { rank, perm })
    }

    /// Build by sorting vertices on real-valued keys — the paper's step 5:
    /// "the linear order S of P is the order of the assigned values".
    ///
    /// Ties are broken by vertex index so the result is deterministic (the
    /// paper does not specify tie-breaking; any consistent rule preserves
    /// the optimality argument).
    ///
    /// Returns an error if any key is NaN (uncomparable).
    pub fn from_keys(keys: &[f64]) -> Result<Self, OrderError> {
        if keys.iter().any(|k| k.is_nan()) {
            return Err(OrderError::NotAPermutation {
                detail: "NaN key".to_string(),
            });
        }
        let n = keys.len();
        let mut perm: Vec<usize> = (0..n).collect();
        perm.sort_by(|&a, &b| {
            keys[a]
                .partial_cmp(&keys[b])
                .expect("NaN ruled out above")
                .then(a.cmp(&b))
        });
        let mut rank = vec![0usize; n];
        for (p, &v) in perm.iter().enumerate() {
            rank[v] = p;
        }
        Ok(LinearOrder { rank, perm })
    }

    /// Like [`LinearOrder::from_keys`], but keys that differ by at most
    /// `tolerance` are treated as tied, so the vertex-index tie-break
    /// actually decides them. Plain `from_keys` only ties on *exact*
    /// equality, which lets eigensolver round-off (noise ~1e-10 on values
    /// that are equal in exact arithmetic, e.g. one grid row sharing one
    /// Fiedler value) scramble tied groups nondeterministically.
    ///
    /// Grouping walks the keys in sorted order, opening a group at the
    /// first ungrouped key and extending it while keys stay within
    /// `tolerance` **of the group's first key** (anchored, not chained —
    /// chaining would let a run of near-tolerance gaps merge keys whose
    /// total spread far exceeds the tolerance); each group is then ordered
    /// by vertex index.
    pub fn from_keys_snapped(keys: &[f64], tolerance: f64) -> Result<Self, OrderError> {
        let mut order = Self::from_keys(keys)?;
        let n = keys.len();
        let mut i = 0;
        while i < n {
            let anchor = keys[order.perm[i]];
            let mut j = i + 1;
            while j < n && keys[order.perm[j]] - anchor <= tolerance {
                j += 1;
            }
            order.perm[i..j].sort_unstable();
            i = j;
        }
        for (p, &v) in order.perm.iter().enumerate() {
            order.rank[v] = p;
        }
        Ok(order)
    }

    /// Build by sorting vertices on integer codes (e.g. space-filling-curve
    /// ranks). Codes need not be dense; ties broken by vertex index.
    pub fn from_codes(codes: &[u64]) -> Self {
        let n = codes.len();
        let mut perm: Vec<usize> = (0..n).collect();
        perm.sort_by_key(|&v| (codes[v], v));
        let mut rank = vec![0usize; n];
        for (p, &v) in perm.iter().enumerate() {
            rank[v] = p;
        }
        LinearOrder { rank, perm }
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.rank.len()
    }

    /// True when the order is empty.
    pub fn is_empty(&self) -> bool {
        self.rank.is_empty()
    }

    /// Position of vertex `v`.
    #[inline]
    pub fn rank_of(&self, v: usize) -> usize {
        self.rank[v]
    }

    /// Vertex at position `p`.
    #[inline]
    pub fn vertex_at(&self, p: usize) -> usize {
        self.perm[p]
    }

    /// The full rank vector (`rank[v]` = position).
    pub fn ranks(&self) -> &[usize] {
        &self.rank
    }

    /// The full permutation (`perm[p]` = vertex).
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// Absolute one-dimensional distance between two vertices in this order
    /// — the quantity Figure 5 measures.
    #[inline]
    pub fn distance(&self, u: usize, v: usize) -> usize {
        self.rank[u].abs_diff(self.rank[v])
    }

    /// The reversal of this order (equally optimal for every metric used in
    /// the paper; eigenvectors are sign-ambiguous so reversal is the
    /// canonical symmetry of spectral orders).
    pub fn reversed(&self) -> LinearOrder {
        let n = self.len();
        let rank: Vec<usize> = self.rank.iter().map(|&p| n - 1 - p).collect();
        let mut perm = vec![0usize; n];
        for (v, &p) in rank.iter().enumerate() {
            perm[p] = v;
        }
        LinearOrder { rank, perm }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_order() {
        let o = LinearOrder::identity(4);
        for v in 0..4 {
            assert_eq!(o.rank_of(v), v);
            assert_eq!(o.vertex_at(v), v);
        }
        assert_eq!(o.len(), 4);
        assert!(!o.is_empty());
        assert!(LinearOrder::identity(0).is_empty());
    }

    #[test]
    fn from_ranks_valid() {
        let o = LinearOrder::from_ranks(vec![2, 0, 1]).unwrap();
        assert_eq!(o.vertex_at(0), 1);
        assert_eq!(o.vertex_at(1), 2);
        assert_eq!(o.vertex_at(2), 0);
        assert_eq!(o.rank_of(0), 2);
    }

    #[test]
    fn from_ranks_rejects_bad_input() {
        assert!(LinearOrder::from_ranks(vec![0, 0]).is_err());
        assert!(LinearOrder::from_ranks(vec![0, 5]).is_err());
    }

    #[test]
    fn from_keys_sorts_with_tiebreak() {
        // Paper Figure 3d: X = (−0.01, −0.29, −0.57, 0.28, 0, −0.28, 0.57,
        // 0.29, 0.01) yields S = (2, 1, 5, 0, 4, 8, 3, 7, 6) — vertex v's
        // rank is the position of its value in the sorted value list.
        let x = [-0.01, -0.29, -0.57, 0.28, 0.0, -0.28, 0.57, 0.29, 0.01];
        let o = LinearOrder::from_keys(&x).unwrap();
        let expected_ranks = [3, 1, 0, 6, 4, 2, 8, 7, 5];
        assert_eq!(o.ranks(), &expected_ranks);
        // Equivalently, reading positions: S in the paper lists the visit
        // sequence (vertex ids by ascending value).
        assert_eq!(o.permutation(), &[2, 1, 5, 0, 4, 8, 3, 7, 6]);
    }

    #[test]
    fn from_keys_ties_broken_by_index() {
        let o = LinearOrder::from_keys(&[1.0, 0.0, 1.0, 0.0]).unwrap();
        assert_eq!(o.permutation(), &[1, 3, 0, 2]);
    }

    #[test]
    fn from_keys_rejects_nan() {
        assert!(LinearOrder::from_keys(&[0.0, f64::NAN]).is_err());
    }

    #[test]
    fn from_keys_snapped_ties_near_values_by_index() {
        // Vertices 1 and 3 tie at ~0 (within tolerance), 0 and 2 at ~1;
        // round-off noise on the keys must not override the index order.
        let keys = [1.0, 1e-9, 1.0 - 1e-9, 0.0];
        let plain = LinearOrder::from_keys(&keys).unwrap();
        assert_eq!(plain.permutation(), &[3, 1, 2, 0]); // noise decides
        let snapped = LinearOrder::from_keys_snapped(&keys, 1e-7).unwrap();
        assert_eq!(snapped.permutation(), &[1, 3, 0, 2]); // index decides
        for (p, &v) in snapped.permutation().iter().enumerate() {
            assert_eq!(snapped.rank_of(v), p, "rank array rebuilt");
        }
    }

    #[test]
    fn from_keys_snapped_groups_are_anchored_not_chained() {
        // Sorted keys are 0 (v1), 0.6t (v2), 1.2t (v0): consecutive gaps
        // are each 0.6·tol, so *chained* grouping would merge all three and
        // index order would emit [0, 1, 2]. Anchored grouping merges only
        // [0, 0.6t] (1.2t is > tol from the anchor 0), keeping v0 last.
        let t = 1e-3;
        let keys = [1.2 * t, 0.0, 0.6 * t];
        let o = LinearOrder::from_keys_snapped(&keys, t).unwrap();
        assert_eq!(o.permutation(), &[1, 2, 0]);

        // Strictly within one tolerance of the anchor: all three merge and
        // index order wins.
        let keys = [0.9 * t, 0.0, 0.6 * t];
        let o = LinearOrder::from_keys_snapped(&keys, t).unwrap();
        assert_eq!(o.permutation(), &[0, 1, 2]);
    }

    #[test]
    fn from_keys_snapped_zero_tolerance_matches_from_keys() {
        let keys = [0.25, -1.0, 0.5, 0.25, 3.0];
        let a = LinearOrder::from_keys(&keys).unwrap();
        let b = LinearOrder::from_keys_snapped(&keys, 0.0).unwrap();
        assert_eq!(a.permutation(), b.permutation());
    }

    #[test]
    fn from_codes_sparse_codes() {
        let o = LinearOrder::from_codes(&[100, 3, 77]);
        assert_eq!(o.permutation(), &[1, 2, 0]);
    }

    #[test]
    fn distance_is_symmetric() {
        let o = LinearOrder::from_ranks(vec![0, 3, 1, 2]).unwrap();
        assert_eq!(o.distance(0, 1), 3);
        assert_eq!(o.distance(1, 0), 3);
        assert_eq!(o.distance(2, 3), 1);
        assert_eq!(o.distance(2, 2), 0);
    }

    #[test]
    fn reversed_inverts_positions() {
        let o = LinearOrder::from_ranks(vec![0, 1, 2]).unwrap();
        let r = o.reversed();
        assert_eq!(r.ranks(), &[2, 1, 0]);
        assert_eq!(r.reversed(), o);
        // Distances are invariant under reversal.
        assert_eq!(o.distance(0, 2), r.distance(0, 2));
    }

    #[test]
    fn rank_and_perm_are_inverse() {
        let o = LinearOrder::from_keys(&[0.3, -0.5, 0.1, 0.9]).unwrap();
        for v in 0..4 {
            assert_eq!(o.vertex_at(o.rank_of(v)), v);
        }
        for p in 0..4 {
            assert_eq!(o.rank_of(o.vertex_at(p)), p);
        }
    }
}
