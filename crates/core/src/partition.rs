//! Spectral graph bisection — the optimality result the paper leans on.
//!
//! The paper cites Chan, Ciarlet & Szeto's proof that the **median cut of
//! the Fiedler vector** is the optimal spectral bisection. This module
//! implements that cut along with baseline bisections (coordinate cut,
//! rank interleaving) and the cut-weight metric, so the citation's content
//! is reproducible too — and because the mapper already produces Fiedler
//! vectors, it comes almost for free.

use crate::mapper::{MappingError, SpectralConfig};
use slpm_graph::Graph;
use slpm_linalg::fiedler::fiedler_pair;

/// A two-way vertex partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bisection {
    /// `side[v]` is `false` for part A, `true` for part B.
    pub side: Vec<bool>,
}

impl Bisection {
    /// Sizes of the two parts `(|A|, |B|)`.
    pub fn sizes(&self) -> (usize, usize) {
        let b = self.side.iter().filter(|&&s| s).count();
        (self.side.len() - b, b)
    }

    /// Total weight of edges crossing the cut.
    pub fn cut_weight(&self, g: &Graph) -> f64 {
        g.edges()
            .filter(|&(u, v, _)| self.side[u] != self.side[v])
            .map(|(_, _, w)| w)
            .sum()
    }

    /// |size(A) − size(B)| — 0 or 1 for a proper bisection.
    pub fn imbalance(&self) -> usize {
        let (a, b) = self.sizes();
        a.abs_diff(b)
    }
}

/// Median-cut spectral bisection (Chan–Ciarlet–Szeto): sort by Fiedler
/// component, put the lower half in part A.
pub fn spectral_bisection(g: &Graph, config: &SpectralConfig) -> Result<Bisection, MappingError> {
    g.require_connected()?;
    let pair = fiedler_pair(&g.laplacian(), &config.resolved_fiedler(g.num_vertices()))?;
    let order = crate::order::LinearOrder::from_keys(&pair.vector).expect("finite eigenvector");
    let n = g.num_vertices();
    let half = n / 2;
    let mut side = vec![false; n];
    for v in 0..n {
        side[v] = order.rank_of(v) >= half;
    }
    Ok(Bisection { side })
}

/// Baseline: split by any precomputed linear order's median (e.g. a
/// space-filling curve order).
pub fn order_bisection(order: &crate::order::LinearOrder) -> Bisection {
    let n = order.len();
    let half = n / 2;
    let side = (0..n).map(|v| order.rank_of(v) >= half).collect();
    Bisection { side }
}

/// Baseline: alternate vertices by id parity (a deliberately bad,
/// locality-blind cut for comparison).
pub fn parity_bisection(n: usize) -> Bisection {
    Bisection {
        side: (0..n).map(|v| v % 2 == 1).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpm_graph::grid::{Connectivity, GridSpec};

    #[test]
    fn sizes_and_imbalance() {
        let b = Bisection {
            side: vec![false, false, true],
        };
        assert_eq!(b.sizes(), (2, 1));
        assert_eq!(b.imbalance(), 1);
    }

    #[test]
    fn spectral_bisection_of_path_cuts_one_edge() {
        // The optimal bisection of a path cuts exactly one edge.
        let mut g = Graph::new(10);
        for i in 0..9 {
            g.add_edge(i, i + 1).unwrap();
        }
        let b = spectral_bisection(&g, &SpectralConfig::default()).unwrap();
        assert_eq!(b.imbalance(), 0);
        assert_eq!(b.cut_weight(&g), 1.0);
        // And it is the contiguous half split.
        let first_half: Vec<bool> = b.side[..5].to_vec();
        assert!(first_half.iter().all(|&s| s == first_half[0]));
    }

    #[test]
    fn spectral_bisection_of_grid_is_near_optimal() {
        // Optimal bisection of an n×n grid cuts n edges (a straight line).
        let spec = GridSpec::cube(8, 2);
        let g = spec.graph(Connectivity::Orthogonal);
        let b = spectral_bisection(&g, &SpectralConfig::default()).unwrap();
        assert_eq!(b.imbalance(), 0);
        let cut = b.cut_weight(&g);
        assert!(
            (8.0..=12.0).contains(&cut),
            "spectral cut {cut} not near the optimal 8"
        );
        // Far better than the parity cut (which cuts almost everything).
        let parity = parity_bisection(64).cut_weight(&g);
        assert!(cut < parity / 4.0, "cut {cut} vs parity {parity}");
    }

    #[test]
    fn order_bisection_from_hilbert() {
        use slpm_graph::grid::GridSpec;
        let spec = GridSpec::cube(4, 2);
        let g = spec.graph(Connectivity::Orthogonal);
        // Identity (sweep) order: median cut = top half vs bottom half,
        // cutting exactly one grid row boundary = 4 edges.
        let b = order_bisection(&crate::order::LinearOrder::identity(16));
        assert_eq!(b.imbalance(), 0);
        assert_eq!(b.cut_weight(&g), 4.0);
    }

    #[test]
    fn disconnected_rejected() {
        let g = Graph::new(4);
        assert!(spectral_bisection(&g, &SpectralConfig::default()).is_err());
    }

    #[test]
    fn odd_sized_graph_imbalance_one() {
        let mut g = Graph::new(5);
        for i in 0..4 {
            g.add_edge(i, i + 1).unwrap();
        }
        let b = spectral_bisection(&g, &SpectralConfig::default()).unwrap();
        assert_eq!(b.imbalance(), 1);
    }
}
