//! The Spectral LPM mapper — paper Figure 2, steps 1–6.

use crate::affinity::{apply_affinity, AffinityEdge};
use crate::order::LinearOrder;
use slpm_graph::grid::{Connectivity, GridSpec};
use slpm_graph::points::PointSet;
use slpm_graph::{Graph, GraphError};
use slpm_linalg::fiedler::{
    fiedler_pair_balanced, fiedler_pair_balanced_on, FiedlerMethod, FiedlerOptions, FiedlerPair,
};
use slpm_linalg::{LinalgError, Pool};
use std::fmt;

/// Errors from the mapping pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum MappingError {
    /// Graph construction / validation failed (e.g. disconnected input).
    Graph(GraphError),
    /// The eigensolver failed.
    Linalg(LinalgError),
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::Graph(e) => write!(f, "graph error: {e}"),
            MappingError::Linalg(e) => write!(f, "eigensolver error: {e}"),
        }
    }
}

impl std::error::Error for MappingError {}

impl From<GraphError> for MappingError {
    fn from(e: GraphError) -> Self {
        MappingError::Graph(e)
    }
}

impl From<LinalgError> for MappingError {
    fn from(e: LinalgError) -> Self {
        MappingError::Linalg(e)
    }
}

/// Configuration of the Spectral LPM pipeline.
#[derive(Debug, Clone, Default)]
pub struct SpectralConfig {
    /// Neighbourhood model for step 1 (4- vs 8-connectivity, Section 4).
    pub connectivity: Connectivity,
    /// Eigensolver options for step 3.
    pub fiedler: FiedlerOptions,
    /// When set, ignore `fiedler.method` and pick the eigensolver per input
    /// size via [`SpectralConfig::method_for_size`] — dense QL on tiny
    /// graphs, shift-invert Lanczos in the mid range, multilevel at scale.
    pub auto_method: bool,
    /// Worker threads for the eigensolver's parallel kernels: `Some(t)`
    /// pins the count, `None` defers to the per-solver knobs and
    /// ultimately to `slpm_linalg::parallel::default_threads` (the
    /// `SLPM_THREADS` env override, else the machine's available
    /// parallelism). Thread count never changes the computed order — the
    /// parallel kernels are bitwise identical to the serial path.
    pub threads: Option<usize>,
}

/// Largest vertex count still solved by the exact dense path under
/// automatic method selection.
pub const AUTO_DENSE_MAX: usize = 96;
/// Largest vertex count still solved by shift-invert Lanczos under
/// automatic method selection; beyond it the multilevel scheme wins.
pub const AUTO_SHIFT_INVERT_MAX: usize = 4096;

impl SpectralConfig {
    /// A configuration with [`SpectralConfig::auto_method`] enabled.
    pub fn auto() -> Self {
        SpectralConfig {
            auto_method: true,
            ..Default::default()
        }
    }

    /// The eigensolver automatic selection uses for an `n`-vertex graph:
    /// dense QL for `n ≤ `[`AUTO_DENSE_MAX`] (exact and instant), Lanczos
    /// shift-invert up to [`AUTO_SHIFT_INVERT_MAX`], multilevel beyond —
    /// the crossover points measured by the `pipeline_scale` benchmark.
    pub fn method_for_size(n: usize) -> FiedlerMethod {
        if n <= AUTO_DENSE_MAX {
            FiedlerMethod::Dense
        } else if n <= AUTO_SHIFT_INVERT_MAX {
            FiedlerMethod::ShiftInvert
        } else {
            FiedlerMethod::Multilevel
        }
    }

    /// The eigensolver options to use for an `n`-vertex solve: a copy of
    /// [`SpectralConfig::fiedler`], with the method overridden per
    /// [`SpectralConfig::method_for_size`] when
    /// [`SpectralConfig::auto_method`] is set. Every solve in this crate
    /// (mapper, bisection, recursive ordering, diagnostics) resolves its
    /// options through here so `auto_method` means the same thing
    /// everywhere — including per-subgraph sizes during recursion.
    pub fn resolved_fiedler(&self, n: usize) -> FiedlerOptions {
        let mut opts = self.fiedler.clone();
        if self.auto_method {
            opts.method = SpectralConfig::method_for_size(n);
        }
        if self.threads.is_some() {
            opts.threads = self.threads;
        }
        opts
    }
}

/// The Spectral Locality-Preserving Mapping algorithm.
///
/// Stateless apart from configuration; each `map_*` call runs the paper's
/// full pipeline on its input.
#[derive(Debug, Clone, Default)]
pub struct SpectralMapper {
    config: SpectralConfig,
}

/// Result of a spectral mapping: the linear order plus the eigen
/// diagnostics that certify it.
#[derive(Debug, Clone)]
pub struct SpectralMapping {
    /// The spectral linear order (step 5): `order.rank_of(v)` is the
    /// one-dimensional position of point/vertex `v`.
    pub order: LinearOrder,
    /// The Fiedler pair behind the order (λ₂, v₂, residual, method).
    pub fiedler: FiedlerPair,
    /// Number of graph edges the order was optimised over.
    pub num_edges: usize,
}

impl SpectralMapper {
    /// Create a mapper with the given configuration.
    pub fn new(config: SpectralConfig) -> Self {
        SpectralMapper { config }
    }

    /// Access the configuration.
    pub fn config(&self) -> &SpectralConfig {
        &self.config
    }

    /// Map every point of a grid (the experiments' setting).
    pub fn map_grid(&self, spec: &GridSpec) -> Result<SpectralMapping, MappingError> {
        let graph = spec.graph(self.config.connectivity);
        self.map_graph(&graph)
    }

    /// [`SpectralMapper::map_grid`] on a caller-supplied [`Pool`] — see
    /// [`SpectralMapper::map_graph_on`].
    pub fn map_grid_on(
        &self,
        spec: &GridSpec,
        pool: &Pool<'_>,
    ) -> Result<SpectralMapping, MappingError> {
        let graph = spec.graph(self.config.connectivity);
        self.map_graph_on(&graph, pool)
    }

    /// Map an arbitrary point set (paper step 1: Manhattan-distance-1
    /// edges, or Chebyshev under `Connectivity::Full`).
    pub fn map_points(&self, points: &PointSet) -> Result<SpectralMapping, MappingError> {
        let graph = points.neighbourhood_graph(self.config.connectivity);
        self.map_graph(&graph)
    }

    /// [`SpectralMapper::map_points`] on a caller-supplied [`Pool`] — see
    /// [`SpectralMapper::map_graph_on`].
    pub fn map_points_on(
        &self,
        points: &PointSet,
        pool: &Pool<'_>,
    ) -> Result<SpectralMapping, MappingError> {
        let graph = points.neighbourhood_graph(self.config.connectivity);
        self.map_graph_on(&graph, pool)
    }

    /// Map a pre-built graph — the fully general Section 4 form (weighted
    /// graphs, custom neighbourhood models).
    pub fn map_graph(&self, graph: &Graph) -> Result<SpectralMapping, MappingError> {
        self.map_graph_impl(graph, None)
    }

    /// [`SpectralMapper::map_graph`] on a caller-supplied [`Pool`]: every
    /// eigensolver kernel (inner PCG solves, multilevel coarsening and
    /// refinement, CSR matvec) schedules onto that persistent executor
    /// instead of paying a scoped thread spawn+join per kernel call. The
    /// thread knobs inside the configuration are ignored; the pool
    /// decides. The computed order is bitwise identical either way.
    pub fn map_graph_on(
        &self,
        graph: &Graph,
        pool: &Pool<'_>,
    ) -> Result<SpectralMapping, MappingError> {
        self.map_graph_impl(graph, Some(pool))
    }

    fn map_graph_impl(
        &self,
        graph: &Graph,
        pool: Option<&Pool<'_>>,
    ) -> Result<SpectralMapping, MappingError> {
        graph.require_connected()?;
        // Step 2: the Laplacian.
        let laplacian = graph.laplacian();
        // Step 3 — degeneracy-aware: on symmetric grids λ₂ has multiplicity
        // > 1 and the balanced entry point picks a canonical mixed
        // representative instead of an arbitrary (possibly axis-pure,
        // sweep-like) element of the eigenspace.
        let fiedler_opts = self.config.resolved_fiedler(graph.num_vertices());
        let fiedler = match pool {
            Some(pool) => fiedler_pair_balanced_on(&laplacian, &fiedler_opts, pool)?,
            None => fiedler_pair_balanced(&laplacian, &fiedler_opts)?,
        };
        // Steps 4–5: sort on the Fiedler values. Snap values that agree up
        // to solver round-off so ties (grid rows share one value in exact
        // arithmetic) are broken by the documented vertex-index rule, not
        // by noise.
        let max_abs = fiedler.vector.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let order = LinearOrder::from_keys_snapped(&fiedler.vector, max_abs * 1e-7)
            .expect("Fiedler vector is finite by construction");
        Ok(SpectralMapping {
            order,
            fiedler,
            num_edges: graph.num_edges(),
        })
    }

    /// Map a graph extended with access-affinity edges (Section 4).
    pub fn map_graph_with_affinity(
        &self,
        base: &Graph,
        affinity: &[AffinityEdge],
    ) -> Result<SpectralMapping, MappingError> {
        let graph = apply_affinity(base, affinity)?;
        self.map_graph(&graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective;
    use slpm_linalg::FiedlerMethod;

    fn mapper() -> SpectralMapper {
        SpectralMapper::new(SpectralConfig::default())
    }

    #[test]
    fn figure3_3x3_grid() {
        // Paper Figure 3: 3×3 grid, λ₂ = 1.
        let spec = GridSpec::new(&[3, 3]);
        let m = mapper().map_grid(&spec).unwrap();
        assert!(
            (m.fiedler.lambda2 - 1.0).abs() < 1e-7,
            "λ₂ = {}",
            m.fiedler.lambda2
        );
        assert_eq!(m.order.len(), 9);
        assert_eq!(m.num_edges, 12);
        assert!(m.fiedler.residual < 1e-6);
    }

    #[test]
    fn spectral_order_on_path_recovers_path() {
        // 1-D "grid": the order must be the path order or its reverse.
        let spec = GridSpec::new(&[8]);
        let m = mapper().map_grid(&spec).unwrap();
        let ranks = m.order.ranks();
        let forward: Vec<usize> = (0..8).collect();
        let backward: Vec<usize> = (0..8).rev().collect();
        assert!(
            ranks == forward.as_slice() || ranks == backward.as_slice(),
            "got {ranks:?}"
        );
    }

    #[test]
    fn order_objective_attains_lambda2_bound() {
        // The relaxation value of the spectral order's generating vector is
        // exactly λ₂; any integer order's normalised σ is ≥ λ₂. Non-square
        // grid so λ₂ is simple and the order is solver-independent (on a
        // square grid the degenerate eigenspace contains both sweep-like
        // and diagonal representatives with different 2-sum costs).
        let spec = GridSpec::new(&[5, 3]);
        let g = spec.graph(Connectivity::Orthogonal);
        let m = mapper().map_graph(&g).unwrap();
        let sigma_relax = objective::quadratic_form(&g, &m.fiedler.vector);
        assert!((sigma_relax - m.fiedler.lambda2).abs() < 1e-6);
        let sigma_spectral = objective::order_quadratic_form(&g, &m.order);
        assert!(sigma_spectral >= m.fiedler.lambda2 - 1e-9);
        // And the spectral integer order beats (or ties) the sweep order
        // on the 2-sum objective here.
        let sweep = LinearOrder::identity(15);
        assert!(
            objective::two_sum_cost(&g, &m.order) <= objective::two_sum_cost(&g, &sweep) + 1e-9
        );
    }

    #[test]
    fn disconnected_input_is_rejected() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1).unwrap();
        g.add_edge(2, 3).unwrap();
        let err = mapper().map_graph(&g).unwrap_err();
        assert!(matches!(
            err,
            MappingError::Graph(GraphError::Disconnected { .. })
        ));
    }

    #[test]
    fn eight_connectivity_differs_from_four() {
        // Figure 4: the spectral orders under 4- and 8-connectivity differ.
        let spec = GridSpec::new(&[4, 4]);
        let four = mapper().map_grid(&spec).unwrap();
        let eight = SpectralMapper::new(SpectralConfig {
            connectivity: Connectivity::Full,
            ..Default::default()
        })
        .map_grid(&spec)
        .unwrap();
        assert_ne!(four.order.ranks(), eight.order.ranks());
        assert!(eight.fiedler.lambda2 > four.fiedler.lambda2 - 1e-9);
    }

    #[test]
    fn affinity_edges_pull_points_together() {
        // Section 4's motivating scenario on a path: affinity between the
        // endpoints drags them closer in the new order than without it.
        let mut base = Graph::new(10);
        for i in 0..9 {
            base.add_edge(i, i + 1).unwrap();
        }
        let plain = mapper().map_graph(&base).unwrap();
        let strong = mapper()
            .map_graph_with_affinity(&base, &[AffinityEdge::weighted(0, 9, 4.0)])
            .unwrap();
        let d_plain = plain.order.distance(0, 9);
        let d_affine = strong.order.distance(0, 9);
        assert!(
            d_affine < d_plain,
            "affinity did not reduce distance: {d_affine} vs {d_plain}"
        );
    }

    #[test]
    fn map_points_matches_map_grid() {
        let spec = GridSpec::new(&[3, 4]);
        let pts = PointSet::from_grid(&spec);
        let a = mapper().map_grid(&spec).unwrap();
        let b = mapper().map_points(&pts).unwrap();
        assert_eq!(a.order.ranks(), b.order.ranks());
    }

    #[test]
    fn dense_and_iterative_methods_agree_on_order() {
        let spec = GridSpec::new(&[5, 3]); // non-square: λ₂ simple
        let dense = SpectralMapper::new(SpectralConfig {
            fiedler: FiedlerOptions {
                method: FiedlerMethod::Dense,
                ..Default::default()
            },
            ..Default::default()
        })
        .map_grid(&spec)
        .unwrap();
        let si = mapper().map_grid(&spec).unwrap();
        // λ₂ agrees tightly.
        assert!((dense.fiedler.lambda2 - si.fiedler.lambda2).abs() < 1e-7);
        // The Fiedler vectors agree up to sign (λ₂ is simple on a 5×3
        // grid). Note the *orders* may still differ at exactly-tied values
        // — rows of the grid share one Fiedler value and ties are broken by
        // solver round-off before the index tie-break kicks in — so the
        // vector, not the rank array, is the right thing to compare.
        let d = &dense.fiedler.vector;
        let s = &si.fiedler.vector;
        let same: f64 = d
            .iter()
            .zip(s)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        let flip: f64 = d
            .iter()
            .zip(s)
            .map(|(a, b)| (a + b).abs())
            .fold(0.0, f64::max);
        assert!(
            same.min(flip) < 1e-6,
            "vectors differ: {same:.2e}/{flip:.2e}"
        );
    }

    #[test]
    fn auto_method_selects_by_size() {
        assert_eq!(
            SpectralConfig::method_for_size(AUTO_DENSE_MAX),
            FiedlerMethod::Dense
        );
        assert_eq!(
            SpectralConfig::method_for_size(AUTO_DENSE_MAX + 1),
            FiedlerMethod::ShiftInvert
        );
        assert_eq!(
            SpectralConfig::method_for_size(AUTO_SHIFT_INVERT_MAX + 1),
            FiedlerMethod::Multilevel
        );
        // auto() actually routes a tiny grid through the dense path and
        // reports it in the diagnostics.
        let m = SpectralMapper::new(SpectralConfig::auto())
            .map_grid(&GridSpec::new(&[3, 3]))
            .unwrap();
        assert_eq!(m.fiedler.method, FiedlerMethod::Dense);
        assert!((m.fiedler.lambda2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multilevel_method_maps_grid() {
        // End-to-end pipeline through the multilevel solver on a grid big
        // enough to build a real hierarchy.
        let spec = GridSpec::new(&[24, 24]);
        let m = SpectralMapper::new(SpectralConfig {
            fiedler: FiedlerOptions {
                method: FiedlerMethod::Multilevel,
                ..Default::default()
            },
            ..Default::default()
        })
        .map_grid(&spec)
        .unwrap();
        assert_eq!(m.order.len(), 576);
        assert_eq!(m.fiedler.method, FiedlerMethod::Multilevel);
        let expect = 4.0 * (std::f64::consts::PI / 48.0).sin().powi(2);
        assert!(
            (m.fiedler.lambda2 - expect).abs() < 1e-6,
            "λ₂ {} vs {expect}",
            m.fiedler.lambda2
        );
    }

    #[test]
    fn mapping_is_deterministic() {
        let spec = GridSpec::new(&[4, 4]);
        let a = mapper().map_grid(&spec).unwrap();
        let b = mapper().map_grid(&spec).unwrap();
        assert_eq!(a.order.ranks(), b.order.ranks());
    }

    #[test]
    fn error_display_forwards() {
        let e = MappingError::Graph(GraphError::Disconnected { components: 2 });
        assert!(e.to_string().contains("disconnected"));
    }
}
