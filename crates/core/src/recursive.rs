//! Alternative spectral orderings: recursive spectral bisection and
//! multi-vector orders.
//!
//! The paper orders points by a *single* Fiedler vector. Two classic
//! refinements matter in practice and make good ablations:
//!
//! * **Recursive spectral bisection (RSB)** — split the vertex set at the
//!   Fiedler vector's median (the optimal-bisection result of Chan, Ciarlet
//!   & Szeto that the paper cites as \[1\]), lay out the two halves
//!   contiguously, and recurse within each half on its induced subgraph.
//!   This re-optimises *within* each half instead of trusting one global
//!   vector's fine structure.
//! * **Multi-vector order** — sort by `v₂`, break (near-)ties by `v₃`, then
//!   `v₄`, … On degenerate spaces (square grids!) λ₂ has multiplicity > 1
//!   and a single vector leaves whole hyperplanes tied, with the arbitrary
//!   index tie-break doing the real work; later eigenvectors resolve those
//!   ties spectrally.

use crate::mapper::{MappingError, SpectralConfig};
use crate::order::LinearOrder;
use slpm_graph::{traversal, Graph};
use slpm_linalg::fiedler::{fiedler_pair, smallest_nonzero_eigenpairs};

/// Options for recursive spectral bisection.
#[derive(Debug, Clone)]
pub struct RsbOptions {
    /// Stop recursing below this many vertices; the base case keeps the
    /// single-vector spectral order of the fragment.
    pub leaf_size: usize,
    /// Eigensolver configuration shared by all levels.
    pub config: SpectralConfig,
}

impl Default for RsbOptions {
    fn default() -> Self {
        RsbOptions {
            leaf_size: 8,
            config: SpectralConfig::default(),
        }
    }
}

/// Recursive-spectral-bisection order of a connected graph.
pub fn rsb_order(graph: &Graph, opts: &RsbOptions) -> Result<LinearOrder, MappingError> {
    graph.require_connected()?;
    let n = graph.num_vertices();
    let mut rank = vec![0usize; n];
    let vertices: Vec<usize> = (0..n).collect();
    let mut next_position = 0usize;
    place(graph, &vertices, opts, &mut rank, &mut next_position)?;
    debug_assert_eq!(next_position, n);
    Ok(LinearOrder::from_ranks(rank).expect("RSB assigns each position once"))
}

/// Recursively lay out `vertices` (ids in the *original* graph) starting at
/// `*next_position`.
fn place(
    original: &Graph,
    vertices: &[usize],
    opts: &RsbOptions,
    rank: &mut [usize],
    next_position: &mut usize,
) -> Result<(), MappingError> {
    if vertices.is_empty() {
        return Ok(());
    }
    let (sub, back) = original
        .induced_subgraph(vertices)
        .expect("vertex lists are deduplicated by construction");

    // Disconnected fragments (possible after a median cut): lay out each
    // component in discovery order.
    let comps = traversal::connected_components(&sub);
    let num_comps = comps.iter().copied().max().map_or(0, |m| m + 1);
    if num_comps > 1 {
        for c in 0..num_comps {
            let part: Vec<usize> = vertices
                .iter()
                .zip(comps.iter())
                .filter(|(_, &cc)| cc == c)
                .map(|(&v, _)| v)
                .collect();
            place(original, &part, opts, rank, next_position)?;
        }
        return Ok(());
    }

    if vertices.len() <= opts.leaf_size.max(2) {
        // Base case: single-vector spectral order of the fragment (or the
        // trivial order for fragments the eigensolver is too small for).
        let local = if sub.num_vertices() >= 2 && sub.num_edges() >= 1 {
            let pair = fiedler_pair(
                &sub.laplacian(),
                &opts.config.resolved_fiedler(sub.num_vertices()),
            )?;
            orient(LinearOrder::from_keys(&pair.vector).expect("finite eigenvector"))
        } else {
            LinearOrder::identity(sub.num_vertices())
        };
        for p in 0..local.len() {
            rank[back[local.vertex_at(p)]] = *next_position;
            *next_position += 1;
        }
        return Ok(());
    }

    // Median cut on the Fiedler vector (Chan–Ciarlet–Szeto optimal
    // bisection point).
    let pair = fiedler_pair(
        &sub.laplacian(),
        &opts.config.resolved_fiedler(sub.num_vertices()),
    )?;
    let local = orient(LinearOrder::from_keys(&pair.vector).expect("finite eigenvector"));
    let half = vertices.len() / 2;
    let low: Vec<usize> = (0..half).map(|p| back[local.vertex_at(p)]).collect();
    let high: Vec<usize> = (half..vertices.len())
        .map(|p| back[local.vertex_at(p)])
        .collect();
    place(original, &low, opts, rank, next_position)?;
    place(original, &high, opts, rank, next_position)
}

/// Orient a fragment's local order to follow the direction its vertices
/// arrived in (the parent's order): eigenvectors are sign-ambiguous, and
/// without this each recursion level could flip direction, creating a jump
/// at every junction between siblings.
fn orient(local: LinearOrder) -> LinearOrder {
    let n = local.len() as f64;
    let mean = (n - 1.0) / 2.0;
    // Correlation of local rank against incoming index (0, 1, 2, …).
    let corr: f64 = (0..local.len())
        .map(|i| (i as f64 - mean) * (local.rank_of(i) as f64 - mean))
        .sum();
    if corr < 0.0 {
        local.reversed()
    } else {
        local
    }
}

/// Multi-vector spectral order: sort by `v₂`, breaking ties (within
/// `tie_epsilon`) by `v₃`, then `v₄`, … using `num_vectors` eigenvectors.
pub fn multi_vector_order(
    graph: &Graph,
    num_vectors: usize,
    tie_epsilon: f64,
    config: &SpectralConfig,
) -> Result<LinearOrder, MappingError> {
    graph.require_connected()?;
    let pairs = smallest_nonzero_eigenpairs(
        &graph.laplacian(),
        num_vectors,
        &config.resolved_fiedler(graph.num_vertices()),
    )?;
    let n = graph.num_vertices();
    let mut perm: Vec<usize> = (0..n).collect();
    perm.sort_by(|&a, &b| {
        for (_, v) in &pairs {
            let d = v[a] - v[b];
            if d.abs() > tie_epsilon {
                return d.partial_cmp(&0.0).expect("finite components");
            }
        }
        a.cmp(&b)
    });
    let mut rank = vec![0usize; n];
    for (p, &v) in perm.iter().enumerate() {
        rank[v] = p;
    }
    Ok(LinearOrder::from_ranks(rank).expect("permutation by construction"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective;
    use slpm_graph::grid::{Connectivity, GridSpec};

    fn grid(side: usize) -> (GridSpec, Graph) {
        let spec = GridSpec::cube(side, 2);
        let g = spec.graph(Connectivity::Orthogonal);
        (spec, g)
    }

    #[test]
    fn rsb_is_a_permutation() {
        let (_, g) = grid(6);
        let order = rsb_order(&g, &RsbOptions::default()).unwrap();
        let mut seen = [false; 36];
        for v in 0..36 {
            let p = order.rank_of(v);
            assert!(!seen[p]);
            seen[p] = true;
        }
    }

    #[test]
    fn rsb_on_path_recovers_path() {
        let mut g = Graph::new(12);
        for i in 0..11 {
            g.add_edge(i, i + 1).unwrap();
        }
        let order = rsb_order(&g, &RsbOptions::default()).unwrap();
        let fwd: Vec<usize> = (0..12).collect();
        let bwd: Vec<usize> = (0..12).rev().collect();
        assert!(
            order.ranks() == fwd.as_slice() || order.ranks() == bwd.as_slice(),
            "got {:?}",
            order.ranks()
        );
    }

    #[test]
    fn rsb_rejects_disconnected() {
        let g = Graph::new(4);
        assert!(rsb_order(&g, &RsbOptions::default()).is_err());
    }

    #[test]
    fn rsb_quality_is_comparable_to_direct_spectral() {
        // RSB optimises *cuts* level by level, not the global 2-sum: the
        // contiguous layout of the two halves makes every cut edge span
        // ~n/2 positions, so its 2-sum is necessarily above the direct
        // spectral order's (which minimises the relaxation of exactly that
        // objective). It must still be within an order of magnitude, and
        // far below a pessimal scramble.
        let (_, g) = grid(8);
        let direct = crate::mapper::SpectralMapper::new(SpectralConfig::default())
            .map_graph(&g)
            .unwrap()
            .order;
        let rsb = rsb_order(&g, &RsbOptions::default()).unwrap();
        let c_direct = objective::two_sum_cost(&g, &direct);
        let c_rsb = objective::two_sum_cost(&g, &rsb);
        assert!(
            c_rsb < 8.0 * c_direct,
            "RSB 2-sum {c_rsb} vs direct {c_direct}"
        );
        // Bit-interleave scramble as the pessimal comparison.
        let scramble =
            LinearOrder::from_ranks((0..64).map(|v: usize| (v * 37) % 64).collect()).unwrap();
        assert!(c_rsb < objective::two_sum_cost(&g, &scramble));
    }

    #[test]
    fn multi_vector_resolves_square_grid_ties() {
        // On a square grid the single-vector order has massive value ties;
        // v₃ resolves them. The multi-vector order must be a permutation
        // and must differ from the single-vector order's index tie-break.
        let (_, g) = grid(4);
        let single = crate::mapper::SpectralMapper::new(SpectralConfig::default())
            .map_graph(&g)
            .unwrap()
            .order;
        let multi = multi_vector_order(&g, 3, 1e-8, &SpectralConfig::default()).unwrap();
        let mut seen = vec![false; 16];
        for v in 0..16 {
            seen[multi.rank_of(v)] = true;
        }
        assert!(seen.into_iter().all(|s| s));
        // They need not be equal; on degenerate grids they usually differ.
        let _ = single;
    }

    #[test]
    fn multi_vector_with_one_vector_matches_fiedler_order_on_path() {
        let mut g = Graph::new(9);
        for i in 0..8 {
            g.add_edge(i, i + 1).unwrap();
        }
        let single = crate::mapper::SpectralMapper::new(SpectralConfig::default())
            .map_graph(&g)
            .unwrap()
            .order;
        let multi = multi_vector_order(&g, 1, 1e-12, &SpectralConfig::default()).unwrap();
        assert_eq!(single.ranks(), multi.ranks());
    }

    #[test]
    fn rsb_leaf_size_one_is_fully_recursive() {
        let (_, g) = grid(4);
        let order = rsb_order(
            &g,
            &RsbOptions {
                leaf_size: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(order.len(), 16);
    }
}
