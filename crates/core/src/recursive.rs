//! Alternative spectral orderings: recursive spectral bisection and
//! multi-vector orders.
//!
//! The paper orders points by a *single* Fiedler vector. Two classic
//! refinements matter in practice and make good ablations:
//!
//! * **Recursive spectral bisection (RSB)** — split the vertex set at the
//!   Fiedler vector's median (the optimal-bisection result of Chan, Ciarlet
//!   & Szeto that the paper cites as \[1\]), lay out the two halves
//!   contiguously, and recurse within each half on its induced subgraph.
//!   This re-optimises *within* each half instead of trusting one global
//!   vector's fine structure.
//! * **Multi-vector order** — sort by `v₂`, break (near-)ties by `v₃`, then
//!   `v₄`, … On degenerate spaces (square grids!) λ₂ has multiplicity > 1
//!   and a single vector leaves whole hyperplanes tied, with the arbitrary
//!   index tie-break doing the real work; later eigenvectors resolve those
//!   ties spectrally.

use crate::mapper::{MappingError, SpectralConfig};
use crate::order::LinearOrder;
use slpm_graph::{traversal, Graph};
use slpm_linalg::fiedler::{fiedler_pair_on, smallest_nonzero_eigenpairs_on, FiedlerMethod};
use slpm_linalg::{multilevel, CsrMatrix, Hierarchy, MultilevelOptions, Pool};

/// Options for recursive spectral bisection.
#[derive(Debug, Clone)]
pub struct RsbOptions {
    /// Stop recursing below this many vertices; the base case keeps the
    /// single-vector spectral order of the fragment.
    pub leaf_size: usize,
    /// Eigensolver configuration shared by all levels.
    pub config: SpectralConfig,
    /// Reuse the root's multilevel coarsening hierarchy across recursion
    /// levels: each fragment whose solve goes through the multilevel
    /// method restricts the hierarchy built once for the whole graph
    /// ([`Hierarchy::restrict`]) to its vertex set instead of re-running
    /// heavy-edge matching from scratch. Off, every fragment re-coarsens —
    /// kept as the ablation baseline the `pipeline_scale` benchmark's
    /// `--bisection` stage compares against.
    pub reuse_hierarchy: bool,
}

impl Default for RsbOptions {
    fn default() -> Self {
        RsbOptions {
            leaf_size: 8,
            config: SpectralConfig::default(),
            reuse_hierarchy: true,
        }
    }
}

/// Root-level state shared by every recursion level when
/// [`RsbOptions::reuse_hierarchy`] is on.
struct ReuseCtx {
    /// Number of vertices of the root graph (the hierarchy's finest level).
    root_len: usize,
    /// The coarsening hierarchy of the whole graph, built once.
    hierarchy: Hierarchy,
    /// The floor [`Hierarchy::build`] was given — restrictions must use
    /// the same one so their stop conditions mirror a from-scratch build.
    floor: usize,
    /// The multilevel knobs of the root solve.
    ml: MultilevelOptions,
}

/// Recursive-spectral-bisection order of a connected graph.
pub fn rsb_order(graph: &Graph, opts: &RsbOptions) -> Result<LinearOrder, MappingError> {
    let pool = Pool::new(opts.config.threads.or(opts.config.fiedler.threads));
    rsb_order_on(graph, opts, &pool)
}

/// [`rsb_order`] on a caller-supplied [`Pool`]: every eigensolve of the
/// recursion — and every kernel inside those solves — schedules onto the
/// same persistent executor. The thread knobs inside `opts.config` are
/// ignored; the pool decides.
pub fn rsb_order_on(
    graph: &Graph,
    opts: &RsbOptions,
    pool: &Pool<'_>,
) -> Result<LinearOrder, MappingError> {
    graph.require_connected()?;
    let n = graph.num_vertices();
    let mut rank = vec![0usize; n];
    let vertices: Vec<usize> = (0..n).collect();
    let mut next_position = 0usize;
    // Build the root hierarchy once if the root solve will take the
    // multilevel path; fragments restrict it instead of re-coarsening.
    let reuse = if opts.reuse_hierarchy {
        let fo = opts.config.resolved_fiedler(n);
        if fo.method == FiedlerMethod::Multilevel {
            let ml = fo.multilevel.clone();
            let floor = rsb_block(&ml);
            let hierarchy = Hierarchy::build(&graph.laplacian(), floor, &ml, pool)?;
            Some(ReuseCtx {
                root_len: n,
                hierarchy,
                floor,
                ml,
            })
        } else {
            None
        }
    } else {
        None
    };
    place(
        graph,
        &vertices,
        opts,
        reuse.as_ref(),
        None,
        pool,
        &mut rank,
        &mut next_position,
    )?;
    debug_assert_eq!(next_position, n);
    Ok(LinearOrder::from_ranks(rank).expect("RSB assigns each position once"))
}

/// Residual tolerance floor for multilevel fragment solves (see
/// [`fragment_fiedler_vector`]): tight enough that the reuse and
/// re-coarsen hierarchies converge to the same snapped order, comfortably
/// above the round-off floor of the block refinement.
const RSB_FRAGMENT_TOLERANCE: f64 = 1e-11;

/// The block width (and therefore hierarchy floor) every RSB multilevel
/// solve uses: `k = 1` Fiedler pair plus the guard vectors, exactly what
/// `multilevel::smallest_nonzero_eigenpairs_on` computes internally.
fn rsb_block(ml: &MultilevelOptions) -> usize {
    (1 + ml.guard_vectors).min(ml.coarsest_size.max(3) - 1)
}

/// The Fiedler vector of a connected fragment, reusing the root hierarchy
/// when the fragment's solve resolves to the multilevel method and a
/// [`ReuseCtx`] is available. When the parent fragment's refined vector is
/// supplied as `warm` (restricted to this fragment), the solve first tries
/// [`multilevel::refine_warm_started_on`] — fine-level block refinement
/// seeded with the parent's solution, skipping the coarsest solve and the
/// walk-up — and only falls back to the restricted-hierarchy path if the
/// warm start fails to converge. Post-processing (centre, normalise,
/// canonical sign) mirrors `fiedler_pair_on` exactly so the reuse and
/// re-coarsen paths produce comparable vectors.
fn fragment_fiedler_vector(
    sub_laplacian: &CsrMatrix,
    vertices: &[usize],
    opts: &RsbOptions,
    reuse: Option<&ReuseCtx>,
    warm: Option<&[f64]>,
    pool: &Pool<'_>,
) -> Result<Vec<f64>, MappingError> {
    let mut fo = opts.config.resolved_fiedler(sub_laplacian.rows());
    if fo.method == FiedlerMethod::Multilevel {
        // RSB only consumes the *median membership* of each fragment
        // vector, but that membership must not depend on which hierarchy
        // (restricted vs freshly coarsened) refined the vector. At the
        // default 1e-9 a near-degenerate fragment leaves an eigenvector
        // mixture of order residual/(λ₃−λ₂) that can flip vertices across
        // the median; refining well below it shrinks the mixture under
        // the snap window of `fragment_order`.
        fo.tolerance = fo.tolerance.min(RSB_FRAGMENT_TOLERANCE);
        // Fragments at or below the multilevel coarsest size would take
        // the solver's exact-dense path: a full O(n³) eigendecomposition
        // per fragment, and RSB visits hundreds of them. Route those to
        // the same policy the auto mapper uses — exact dense only for
        // tiny fragments, Lanczos shift-invert otherwise (3–25× cheaper
        // than the full decomposition at 97–256 vertices). Both are
        // hierarchy-independent, so the reuse and re-coarsen
        // configurations stay bitwise identical on small fragments.
        let n = sub_laplacian.rows();
        let dense_cutoff = fo
            .multilevel
            .coarsest_size
            .max(rsb_block(&fo.multilevel) + 2);
        if n <= dense_cutoff {
            fo.method = if n <= crate::mapper::AUTO_DENSE_MAX {
                FiedlerMethod::Dense
            } else {
                FiedlerMethod::ShiftInvert
            };
        } else if let Some(ctx) = reuse {
            // Cheapest first: refine straight from the parent's vector.
            // Any failure (typically NoConvergence from a weak guess on a
            // near-degenerate half) falls back to the hierarchy walk-up —
            // deterministically, so reruns take the same path.
            let mut pairs = warm
                .and_then(|w| {
                    let warm_block = [w.to_vec()];
                    multilevel::refine_warm_started_on(
                        sub_laplacian,
                        &warm_block,
                        1,
                        fo.tolerance,
                        fo.seed,
                        &ctx.ml,
                        pool,
                    )
                    .ok()
                })
                .map(Ok)
                .unwrap_or_else(|| {
                    let restricted;
                    let hierarchy = if vertices.len() == ctx.root_len {
                        &ctx.hierarchy
                    } else {
                        restricted = ctx.hierarchy.restrict(
                            vertices,
                            sub_laplacian,
                            ctx.floor,
                            &ctx.ml,
                            pool,
                        )?;
                        &restricted
                    };
                    multilevel::smallest_nonzero_eigenpairs_on_hierarchy(
                        sub_laplacian,
                        hierarchy,
                        1,
                        fo.tolerance,
                        fo.seed,
                        &ctx.ml,
                        pool,
                    )
                })?;
            let (_, mut v) = pairs.swap_remove(0);
            slpm_linalg::vector::center(&mut v);
            if slpm_linalg::vector::normalize(&mut v) == 0.0 {
                return Err(MappingError::Linalg(
                    slpm_linalg::LinalgError::NonFiniteInput {
                        context: "rsb: fragment eigenvector collapsed",
                    },
                ));
            }
            slpm_linalg::vector::canonicalize_sign(&mut v);
            return Ok(v);
        }
    }
    Ok(fiedler_pair_on(sub_laplacian, &fo, pool)?.vector)
}

/// Snap a fragment's Fiedler values into a rank order the same way the
/// direct mapper does: values that agree up to solver round-off share a
/// key, so ties break by the documented vertex-index rule instead of by
/// noise — and the reuse/re-coarsen hierarchies (whose refined vectors
/// differ below the convergence tolerance) yield identical orders.
fn fragment_order(vector: &[f64]) -> LinearOrder {
    let max_abs = vector.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    LinearOrder::from_keys_snapped(vector, max_abs * 1e-7).expect("finite eigenvector")
}

/// Sign-stabilise a fragment vector before ordering. The solver's own
/// canonical sign keys off the first entry within `1e-9` of the maximum
/// magnitude — but fragment Fiedler vectors are near-antisymmetric, so
/// whole plateaus of *both* signs sit at ±max separated only by solver
/// round-off, and sub-tolerance differences between the reuse and
/// re-coarsen refinements can flip which plateau wins. A sign flip is not
/// absorbed by [`orient`]: reversing a snapped order keeps each tie group
/// ascending by vertex index, so `order(-v)` reversed is *not* `order(v)`.
/// Keying the sign off the first entry that clears a coarse threshold
/// (`1e-3` of the max, far above round-off, far below the plateau spacing)
/// is invariant to those perturbations, making the ordered direction a
/// stable function of the eigenvector's line rather than of solver noise.
fn stabilize_sign(v: &mut [f64]) {
    let max_abs = v.iter().fold(0.0f64, |m, x| m.max(x.abs()));
    if max_abs == 0.0 {
        return;
    }
    let threshold = max_abs * 1e-3;
    if let Some(first) = v.iter().find(|x| x.abs() >= threshold) {
        if *first < 0.0 {
            for x in v.iter_mut() {
                *x = -*x;
            }
        }
    }
}

/// Recursively lay out `vertices` (ids in the *original* graph) starting at
/// `*next_position`. `warm` carries the parent fragment's refined Fiedler
/// vector restricted to `vertices` (aligned index-for-index with it) when
/// hierarchy reuse is active; it seeds the fragment solve.
#[allow(clippy::too_many_arguments)]
fn place(
    original: &Graph,
    vertices: &[usize],
    opts: &RsbOptions,
    reuse: Option<&ReuseCtx>,
    warm: Option<Vec<f64>>,
    pool: &Pool<'_>,
    rank: &mut [usize],
    next_position: &mut usize,
) -> Result<(), MappingError> {
    if vertices.is_empty() {
        return Ok(());
    }
    let (sub, back) = original
        .induced_subgraph(vertices)
        .expect("vertex lists are deduplicated by construction");

    // Disconnected fragments (possible after a median cut): lay out each
    // component in discovery order.
    let comps = traversal::connected_components(&sub);
    let num_comps = comps.iter().copied().max().map_or(0, |m| m + 1);
    if num_comps > 1 {
        for c in 0..num_comps {
            let mut part = Vec::new();
            let mut part_warm = warm.as_ref().map(|_| Vec::new());
            for (i, (&v, &cc)) in vertices.iter().zip(comps.iter()).enumerate() {
                if cc == c {
                    part.push(v);
                    if let (Some(pw), Some(w)) = (part_warm.as_mut(), warm.as_ref()) {
                        pw.push(w[i]);
                    }
                }
            }
            place(
                original,
                &part,
                opts,
                reuse,
                part_warm,
                pool,
                rank,
                next_position,
            )?;
        }
        return Ok(());
    }

    if vertices.len() <= opts.leaf_size.max(2) {
        // Base case: single-vector spectral order of the fragment (or the
        // trivial order for fragments the eigensolver is too small for).
        let local = if sub.num_vertices() >= 2 && sub.num_edges() >= 1 {
            let mut v = fragment_fiedler_vector(
                &sub.laplacian(),
                vertices,
                opts,
                reuse,
                warm.as_deref(),
                pool,
            )?;
            stabilize_sign(&mut v);
            orient(fragment_order(&v))
        } else {
            LinearOrder::identity(sub.num_vertices())
        };
        for p in 0..local.len() {
            rank[back[local.vertex_at(p)]] = *next_position;
            *next_position += 1;
        }
        return Ok(());
    }

    // Median cut on the Fiedler vector (Chan–Ciarlet–Szeto optimal
    // bisection point).
    let mut v = fragment_fiedler_vector(
        &sub.laplacian(),
        vertices,
        opts,
        reuse,
        warm.as_deref(),
        pool,
    )?;
    stabilize_sign(&mut v);
    let local = orient(fragment_order(&v));
    let half = vertices.len() / 2;
    let low: Vec<usize> = (0..half).map(|p| back[local.vertex_at(p)]).collect();
    let high: Vec<usize> = (half..vertices.len())
        .map(|p| back[local.vertex_at(p)])
        .collect();
    // Seed each half with this fragment's vector (only useful — and only
    // consumed — when hierarchy reuse is on; the re-coarsen configuration
    // must measure the true from-scratch cost).
    let (low_warm, high_warm) = if reuse.is_some() {
        (
            Some((0..half).map(|p| v[local.vertex_at(p)]).collect()),
            Some(
                (half..vertices.len())
                    .map(|p| v[local.vertex_at(p)])
                    .collect(),
            ),
        )
    } else {
        (None, None)
    };
    place(
        original,
        &low,
        opts,
        reuse,
        low_warm,
        pool,
        rank,
        next_position,
    )?;
    place(
        original,
        &high,
        opts,
        reuse,
        high_warm,
        pool,
        rank,
        next_position,
    )
}

/// Orient a fragment's local order to follow the direction its vertices
/// arrived in (the parent's order): eigenvectors are sign-ambiguous, and
/// without this each recursion level could flip direction, creating a jump
/// at every junction between siblings.
fn orient(local: LinearOrder) -> LinearOrder {
    let n = local.len() as f64;
    let mean = (n - 1.0) / 2.0;
    // Correlation of local rank against incoming index (0, 1, 2, …).
    let corr: f64 = (0..local.len())
        .map(|i| (i as f64 - mean) * (local.rank_of(i) as f64 - mean))
        .sum();
    if corr < 0.0 {
        local.reversed()
    } else {
        local
    }
}

/// Multi-vector spectral order: sort by `v₂`, breaking ties (within
/// `tie_epsilon`) by `v₃`, then `v₄`, … using `num_vectors` eigenvectors.
pub fn multi_vector_order(
    graph: &Graph,
    num_vectors: usize,
    tie_epsilon: f64,
    config: &SpectralConfig,
) -> Result<LinearOrder, MappingError> {
    let pool = Pool::new(config.threads.or(config.fiedler.threads));
    multi_vector_order_on(graph, num_vectors, tie_epsilon, config, &pool)
}

/// [`multi_vector_order`] on a caller-supplied [`Pool`]. The thread knobs
/// inside `config` are ignored; the pool decides.
pub fn multi_vector_order_on(
    graph: &Graph,
    num_vectors: usize,
    tie_epsilon: f64,
    config: &SpectralConfig,
    pool: &Pool<'_>,
) -> Result<LinearOrder, MappingError> {
    graph.require_connected()?;
    let pairs = smallest_nonzero_eigenpairs_on(
        &graph.laplacian(),
        num_vectors,
        &config.resolved_fiedler(graph.num_vertices()),
        pool,
    )?;
    let n = graph.num_vertices();
    let mut perm: Vec<usize> = (0..n).collect();
    perm.sort_by(|&a, &b| {
        for (_, v) in &pairs {
            let d = v[a] - v[b];
            if d.abs() > tie_epsilon {
                return d.partial_cmp(&0.0).expect("finite components");
            }
        }
        a.cmp(&b)
    });
    let mut rank = vec![0usize; n];
    for (p, &v) in perm.iter().enumerate() {
        rank[v] = p;
    }
    Ok(LinearOrder::from_ranks(rank).expect("permutation by construction"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective;
    use slpm_graph::grid::{Connectivity, GridSpec};

    fn grid(side: usize) -> (GridSpec, Graph) {
        let spec = GridSpec::cube(side, 2);
        let g = spec.graph(Connectivity::Orthogonal);
        (spec, g)
    }

    #[test]
    fn rsb_is_a_permutation() {
        let (_, g) = grid(6);
        let order = rsb_order(&g, &RsbOptions::default()).unwrap();
        let mut seen = [false; 36];
        for v in 0..36 {
            let p = order.rank_of(v);
            assert!(!seen[p]);
            seen[p] = true;
        }
    }

    #[test]
    fn rsb_on_path_recovers_path() {
        let mut g = Graph::new(12);
        for i in 0..11 {
            g.add_edge(i, i + 1).unwrap();
        }
        let order = rsb_order(&g, &RsbOptions::default()).unwrap();
        let fwd: Vec<usize> = (0..12).collect();
        let bwd: Vec<usize> = (0..12).rev().collect();
        assert!(
            order.ranks() == fwd.as_slice() || order.ranks() == bwd.as_slice(),
            "got {:?}",
            order.ranks()
        );
    }

    #[test]
    fn rsb_rejects_disconnected() {
        let g = Graph::new(4);
        assert!(rsb_order(&g, &RsbOptions::default()).is_err());
    }

    #[test]
    fn rsb_quality_is_comparable_to_direct_spectral() {
        // RSB optimises *cuts* level by level, not the global 2-sum: the
        // contiguous layout of the two halves makes every cut edge span
        // ~n/2 positions, so its 2-sum is necessarily above the direct
        // spectral order's (which minimises the relaxation of exactly that
        // objective). It must still be within an order of magnitude, and
        // far below a pessimal scramble.
        let (_, g) = grid(8);
        let direct = crate::mapper::SpectralMapper::new(SpectralConfig::default())
            .map_graph(&g)
            .unwrap()
            .order;
        let rsb = rsb_order(&g, &RsbOptions::default()).unwrap();
        let c_direct = objective::two_sum_cost(&g, &direct);
        let c_rsb = objective::two_sum_cost(&g, &rsb);
        assert!(
            c_rsb < 8.0 * c_direct,
            "RSB 2-sum {c_rsb} vs direct {c_direct}"
        );
        // Bit-interleave scramble as the pessimal comparison.
        let scramble =
            LinearOrder::from_ranks((0..64).map(|v: usize| (v * 37) % 64).collect()).unwrap();
        assert!(c_rsb < objective::two_sum_cost(&g, &scramble));
    }

    #[test]
    fn multi_vector_resolves_square_grid_ties() {
        // On a square grid the single-vector order has massive value ties;
        // v₃ resolves them. The multi-vector order must be a permutation
        // and must differ from the single-vector order's index tie-break.
        let (_, g) = grid(4);
        let single = crate::mapper::SpectralMapper::new(SpectralConfig::default())
            .map_graph(&g)
            .unwrap()
            .order;
        let multi = multi_vector_order(&g, 3, 1e-8, &SpectralConfig::default()).unwrap();
        let mut seen = vec![false; 16];
        for v in 0..16 {
            seen[multi.rank_of(v)] = true;
        }
        assert!(seen.into_iter().all(|s| s));
        // They need not be equal; on degenerate grids they usually differ.
        let _ = single;
    }

    #[test]
    fn multi_vector_with_one_vector_matches_fiedler_order_on_path() {
        let mut g = Graph::new(9);
        for i in 0..8 {
            g.add_edge(i, i + 1).unwrap();
        }
        let single = crate::mapper::SpectralMapper::new(SpectralConfig::default())
            .map_graph(&g)
            .unwrap()
            .order;
        let multi = multi_vector_order(&g, 1, 1e-12, &SpectralConfig::default()).unwrap();
        assert_eq!(single.ranks(), multi.ranks());
    }

    #[test]
    fn rsb_hierarchy_reuse_matches_recoarsening() {
        // Restricting the root hierarchy to each half must produce the
        // exact order that re-coarsening every fragment from scratch does
        // (the eigenvectors differ below the convergence tolerance; the
        // snapped keys absorb that). Non-square grid, big enough that the
        // root and the first recursion levels genuinely build hierarchies
        // (default coarsest_size is 256).
        use slpm_linalg::{FiedlerMethod, FiedlerOptions};
        let spec = GridSpec::new(&[36, 24]);
        let g = spec.graph(Connectivity::Orthogonal);
        let config = SpectralConfig {
            fiedler: FiedlerOptions {
                method: FiedlerMethod::Multilevel,
                ..Default::default()
            },
            ..Default::default()
        };
        let reuse = rsb_order(
            &g,
            &RsbOptions {
                leaf_size: 8,
                config: config.clone(),
                reuse_hierarchy: true,
            },
        )
        .unwrap();
        let scratch = rsb_order(
            &g,
            &RsbOptions {
                leaf_size: 8,
                config,
                reuse_hierarchy: false,
            },
        )
        .unwrap();
        assert_eq!(reuse.ranks(), scratch.ranks());
    }

    #[test]
    fn rsb_leaf_size_one_is_fully_recursive() {
        let (_, g) = grid(4);
        let order = rsb_order(
            &g,
            &RsbOptions {
                leaf_size: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(order.len(), 16);
    }
}
