//! Access-affinity edges — the paper's Section 4 extensibility hook.
//!
//! > "Assume that we need to map points in the multi-dimensional space into
//! > disk pages, and we know (from experience) that whenever point p is
//! > accessed, there is a very high probability that point q will be
//! > accessed soon afterwards. To force mapping p and q into nearby
//! > locations […] we add an edge (p, q) to the graph G."
//!
//! An [`AffinityEdge`] is exactly that: a vertex pair plus a weight
//! expressing how strongly the pair should be co-located. Applying a set of
//! affinity edges to a base neighbourhood graph yields the extended graph
//! the mapper diagonalises; the optimality proof is unaffected because it
//! holds for *whatever* graph is chosen.

use slpm_graph::{Graph, GraphError};

/// A correlation-derived edge to superimpose on the neighbourhood graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffinityEdge {
    /// First vertex (point index).
    pub u: usize,
    /// Second vertex (point index).
    pub v: usize,
    /// Co-location priority; 1.0 makes the pair look like grid neighbours,
    /// larger values pull them closer than grid neighbours.
    pub weight: f64,
}

impl AffinityEdge {
    /// Unit-weight affinity edge — the paper's "treat as Manhattan
    /// distance 1" semantics.
    pub fn unit(u: usize, v: usize) -> Self {
        AffinityEdge { u, v, weight: 1.0 }
    }

    /// Weighted affinity edge.
    pub fn weighted(u: usize, v: usize, weight: f64) -> Self {
        AffinityEdge { u, v, weight }
    }
}

/// Superimpose affinity edges on a copy of `base`. Weights add to any
/// existing edge weight (repeating an observation strengthens the tie).
pub fn apply_affinity(base: &Graph, edges: &[AffinityEdge]) -> Result<Graph, GraphError> {
    let mut g = base.clone();
    for e in edges {
        g.add_weighted_edge(e.u, e.v, e.weight)?;
    }
    Ok(g)
}

/// Derive affinity edges from an access trace: every consecutive pair of
/// accesses within `window` steps contributes weight `1/distance-in-trace`
/// to that pair's affinity. This is the "from experience" statistics
/// gathering the paper alludes to, made concrete for the examples and
/// benchmarks.
pub fn affinity_from_trace(
    num_vertices: usize,
    trace: &[usize],
    window: usize,
) -> Vec<AffinityEdge> {
    use std::collections::BTreeMap;
    let mut acc: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    for (i, &a) in trace.iter().enumerate() {
        for (gap, &b) in trace.iter().enumerate().skip(i + 1).take(window) {
            let d = gap - i;
            if a == b || a >= num_vertices || b >= num_vertices {
                continue;
            }
            let key = (a.min(b), a.max(b));
            *acc.entry(key).or_insert(0.0) += 1.0 / d as f64;
        }
    }
    acc.into_iter()
        .map(|((u, v), weight)| AffinityEdge { u, v, weight })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1).unwrap();
        }
        g
    }

    #[test]
    fn apply_affinity_adds_edges() {
        let base = path(4);
        let g = apply_affinity(&base, &[AffinityEdge::unit(0, 3)]).unwrap();
        assert!(g.has_edge(0, 3));
        assert_eq!(g.num_edges(), base.num_edges() + 1);
        // Base graph untouched.
        assert!(!base.has_edge(0, 3));
    }

    #[test]
    fn affinity_strengthens_existing_edge() {
        let base = path(3);
        let g = apply_affinity(&base, &[AffinityEdge::weighted(0, 1, 2.5)]).unwrap();
        assert_eq!(g.edge_weight(0, 1), 3.5);
    }

    #[test]
    fn apply_affinity_validates() {
        let base = path(3);
        assert!(apply_affinity(&base, &[AffinityEdge::unit(0, 9)]).is_err());
        assert!(apply_affinity(&base, &[AffinityEdge::weighted(0, 1, -1.0)]).is_err());
    }

    #[test]
    fn trace_derivation_counts_cooccurrence() {
        // Trace 0,1,0,1 with window 1: pairs (0,1) three times at gap 1.
        let edges = affinity_from_trace(2, &[0, 1, 0, 1], 1);
        assert_eq!(edges.len(), 1);
        assert_eq!((edges[0].u, edges[0].v), (0, 1));
        assert!((edges[0].weight - 3.0).abs() < 1e-12);
    }

    #[test]
    fn trace_window_weights_decay() {
        // Trace 0,2,1 with window 2: (0,2) at gap 1 → 1.0; (0,1) at gap 2 →
        // 0.5; (2,1) at gap 1 → 1.0.
        let edges = affinity_from_trace(3, &[0, 2, 1], 2);
        let w = |u: usize, v: usize| {
            edges
                .iter()
                .find(|e| (e.u, e.v) == (u.min(v), u.max(v)))
                .map(|e| e.weight)
        };
        assert_eq!(w(0, 2), Some(1.0));
        assert_eq!(w(0, 1), Some(0.5));
        assert_eq!(w(1, 2), Some(1.0));
    }

    #[test]
    fn trace_ignores_self_and_out_of_range() {
        let edges = affinity_from_trace(2, &[0, 0, 7, 1], 3);
        // Only the (0,1) pairs survive.
        assert!(edges.iter().all(|e| (e.u, e.v) == (0, 1)));
    }
}
