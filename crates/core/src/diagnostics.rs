//! One-stop quality report for a linear order on a graph.
//!
//! Collects every arrangement metric the repository uses — the relaxation
//! bound λ₂, the 2-sum, the linear arrangement cost, the bandwidth, and
//! adjacent-pair statistics — into a single struct with a renderer, so the
//! CLI, the examples and ad-hoc analysis all print the same report.

use crate::mapper::{MappingError, SpectralConfig};
use crate::objective;
use crate::order::LinearOrder;
use slpm_graph::Graph;
use slpm_linalg::fiedler::fiedler_pair;

/// Quality metrics of one order on one graph.
#[derive(Debug, Clone)]
pub struct OrderReport {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of edges.
    pub num_edges: usize,
    /// λ₂ of the graph (the lower bound every order's σ must respect).
    pub lambda2: f64,
    /// σ(G, normalized ranks) — the relaxed 2-sum of this order.
    pub sigma: f64,
    /// Integer 2-sum cost `Σ w (π_i − π_j)²`.
    pub two_sum: f64,
    /// Linear arrangement cost `Σ w |π_i − π_j|` (minLA objective).
    pub linear_arrangement: f64,
    /// Bandwidth `max |π_i − π_j|` over edges.
    pub bandwidth: usize,
    /// Mean edge stretch `mean |π_i − π_j|`.
    pub mean_stretch: f64,
}

impl OrderReport {
    /// Compute the report. Requires a connected graph (for λ₂).
    pub fn compute(
        g: &Graph,
        order: &LinearOrder,
        config: &SpectralConfig,
    ) -> Result<OrderReport, MappingError> {
        assert_eq!(g.num_vertices(), order.len(), "graph/order size mismatch");
        g.require_connected()?;
        let pair = fiedler_pair(&g.laplacian(), &config.resolved_fiedler(g.num_vertices()))?;
        let la = objective::linear_arrangement_cost(g, order);
        let edges = g.num_edges().max(1);
        Ok(OrderReport {
            num_vertices: g.num_vertices(),
            num_edges: g.num_edges(),
            lambda2: pair.lambda2,
            sigma: objective::order_quadratic_form(g, order),
            two_sum: objective::two_sum_cost(g, order),
            linear_arrangement: la,
            bandwidth: objective::bandwidth(g, order),
            mean_stretch: la / edges as f64,
        })
    }

    /// σ / λ₂ ≥ 1: how far the integer order sits above the relaxation
    /// optimum (1 = the relaxation bound itself).
    pub fn optimality_gap(&self) -> f64 {
        self.sigma / self.lambda2
    }

    /// Render for terminal output.
    pub fn render(&self, title: &str) -> String {
        format!(
            "{title}: n={} m={}\n  lambda2={:.6}  sigma={:.6}  gap={:.2}x\n  \
             2-sum={:.1}  minLA={:.1}  bandwidth={}  mean stretch={:.2}\n",
            self.num_vertices,
            self.num_edges,
            self.lambda2,
            self.sigma,
            self.optimality_gap(),
            self.two_sum,
            self.linear_arrangement,
            self.bandwidth,
            self.mean_stretch
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::SpectralMapper;
    use slpm_graph::grid::{Connectivity, GridSpec};

    fn grid_and_graph() -> (GridSpec, Graph) {
        let spec = GridSpec::cube(4, 2);
        let g = spec.graph(Connectivity::Orthogonal);
        (spec, g)
    }

    #[test]
    fn report_respects_theorem_bound() {
        let (_, g) = grid_and_graph();
        let mapping = SpectralMapper::new(SpectralConfig::default())
            .map_graph(&g)
            .unwrap();
        let report = OrderReport::compute(&g, &mapping.order, &SpectralConfig::default()).unwrap();
        assert!(report.sigma >= report.lambda2 - 1e-9);
        assert!(report.optimality_gap() >= 1.0 - 1e-9);
        assert_eq!(report.num_vertices, 16);
        assert_eq!(report.num_edges, 24);
        assert!(report.bandwidth >= 1);
        assert!(report.mean_stretch >= 1.0);
    }

    #[test]
    fn identity_on_path_is_perfect() {
        let mut g = Graph::new(6);
        for i in 0..5 {
            g.add_edge(i, i + 1).unwrap();
        }
        let report =
            OrderReport::compute(&g, &LinearOrder::identity(6), &SpectralConfig::default())
                .unwrap();
        assert_eq!(report.bandwidth, 1);
        assert_eq!(report.two_sum, 5.0);
        assert_eq!(report.linear_arrangement, 5.0);
        assert_eq!(report.mean_stretch, 1.0);
    }

    #[test]
    fn spectral_gap_smaller_than_scramble_gap() {
        let (_, g) = grid_and_graph();
        let spectral = SpectralMapper::new(SpectralConfig::default())
            .map_graph(&g)
            .unwrap()
            .order;
        let scramble =
            LinearOrder::from_ranks((0..16).map(|v: usize| (v * 5) % 16).collect()).unwrap();
        let rs = OrderReport::compute(&g, &spectral, &SpectralConfig::default()).unwrap();
        let rb = OrderReport::compute(&g, &scramble, &SpectralConfig::default()).unwrap();
        assert!(rs.optimality_gap() < rb.optimality_gap());
    }

    #[test]
    fn render_contains_metrics() {
        let (_, g) = grid_and_graph();
        let report =
            OrderReport::compute(&g, &LinearOrder::identity(16), &SpectralConfig::default())
                .unwrap();
        let s = report.render("sweep");
        assert!(s.contains("lambda2"));
        assert!(s.contains("bandwidth"));
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn size_mismatch_panics() {
        let (_, g) = grid_and_graph();
        let _ = OrderReport::compute(&g, &LinearOrder::identity(4), &SpectralConfig::default());
    }
}
