//! Objective functions from the paper's optimality theorems.
//!
//! Theorem 1 states that a vector `x` provides the globally optimal
//! locality-preserving mapping when it minimises
//!
//! ```text
//! σ(G, x) = Σ_{(i,j) ∈ E} w_ij (x_i − x_j)²
//! ```
//!
//! subject to `Σ x_i² = 1` and `Σ x_i = 0`; Theorems 2–3 identify the
//! minimiser with the Fiedler pair: `min σ = λ₂`, attained at `v₂`.
//!
//! This module computes σ for arbitrary real vectors *and* for integer
//! linear orders, so tests and benchmarks can check the chain
//!
//! ```text
//! λ₂  =  σ(G, v₂)  ≤  σ(G, normalize(π))   for every order π,
//! ```
//!
//! i.e. the spectral order's relaxation is below every discrete
//! arrangement's normalised cost — the precise sense of "optimal" the paper
//! proves.

use crate::order::LinearOrder;
use slpm_graph::Graph;

/// The quadratic form `σ(G, x) = Σ_{(i,j)∈E} w_ij (x_i − x_j)²`
/// (equivalently `xᵀ L x`).
///
/// # Panics
/// Panics if `x.len() != g.num_vertices()` — callers construct both from
/// the same vertex set.
pub fn quadratic_form(g: &Graph, x: &[f64]) -> f64 {
    assert_eq!(x.len(), g.num_vertices(), "vector/graph dimension mismatch");
    let mut acc = 0.0;
    for (u, v, w) in g.edges() {
        let d = x[u] - x[v];
        acc += w * d * d;
    }
    acc
}

/// Centre and scale an arbitrary key vector to the theorem's feasible set
/// (`Σx = 0`, `Σx² = 1`). Returns `None` when the input is constant (no
/// direction information).
pub fn normalize_to_feasible(x: &[f64]) -> Option<Vec<f64>> {
    let n = x.len();
    if n == 0 {
        return None;
    }
    // xtask:allow(float-reduce): serial left-to-right fold over one slice
    let mean = x.iter().sum::<f64>() / n as f64;
    let mut y: Vec<f64> = x.iter().map(|&v| v - mean).collect();
    // xtask:allow(float-reduce): serial left-to-right fold over one slice
    let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm == 0.0 {
        return None;
    }
    for v in &mut y {
        *v /= norm;
    }
    Some(y)
}

/// σ evaluated on an integer linear order, after projecting the positions
/// `0, 1, …, n−1` onto the feasible set. This is the natural way to compare
/// a discrete arrangement against the λ₂ lower bound.
pub fn order_quadratic_form(g: &Graph, order: &LinearOrder) -> f64 {
    let pos: Vec<f64> = order.ranks().iter().map(|&r| r as f64).collect();
    let feasible =
        normalize_to_feasible(&pos).expect("orders with ≥ 2 vertices have non-constant positions");
    quadratic_form(g, &feasible)
}

/// The un-normalised quadratic arrangement cost
/// `Σ_{(i,j)∈E} w_ij (π_i − π_j)²` — the "minimum-2-sum" objective from the
/// linear-arrangement literature the paper cites (Juvan & Mohar 1992).
pub fn two_sum_cost(g: &Graph, order: &LinearOrder) -> f64 {
    let mut acc = 0.0;
    for (u, v, w) in g.edges() {
        let d = order.distance(u, v) as f64;
        acc += w * d * d;
    }
    acc
}

/// The linear arrangement cost `Σ_{(i,j)∈E} w_ij |π_i − π_j|` (minLA).
/// Reported alongside the 2-sum in benchmarks; the spectral order is a
/// good heuristic for it but provably optimal only for the 2-sum
/// relaxation.
pub fn linear_arrangement_cost(g: &Graph, order: &LinearOrder) -> f64 {
    let mut acc = 0.0;
    for (u, v, w) in g.edges() {
        acc += w * order.distance(u, v) as f64;
    }
    acc
}

/// Maximum stretch `max_{(i,j)∈E} |π_i − π_j|` — bandwidth of the
/// arrangement; the per-edge worst case that fractal boundary effects blow
/// up (Figure 1's 14/9/5 values are exactly edge stretches).
pub fn bandwidth(g: &Graph, order: &LinearOrder) -> usize {
    g.edges()
        .map(|(u, v, _)| order.distance(u, v))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpm_graph::grid::{Connectivity, GridSpec};

    fn path(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1).unwrap();
        }
        g
    }

    #[test]
    fn quadratic_form_is_laplacian_form() {
        let g = path(4);
        let x = [1.0, 2.0, 4.0, 8.0];
        // Direct: (1−2)² + (2−4)² + (4−8)² = 1 + 4 + 16 = 21.
        assert_eq!(quadratic_form(&g, &x), 21.0);
        // Agrees with xᵀLx.
        let lx = g.laplacian().matvec(&x).unwrap();
        let quad: f64 = x.iter().zip(lx.iter()).map(|(a, b)| a * b).sum();
        assert!((quad - 21.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_edges_scale_the_form() {
        let mut g = Graph::new(2);
        g.add_weighted_edge(0, 1, 3.0).unwrap();
        assert_eq!(quadratic_form(&g, &[0.0, 2.0]), 12.0);
    }

    #[test]
    fn normalize_to_feasible_properties() {
        let y = normalize_to_feasible(&[1.0, 2.0, 3.0]).unwrap();
        let sum: f64 = y.iter().sum();
        let norm2: f64 = y.iter().map(|v| v * v).sum();
        assert!(sum.abs() < 1e-12);
        assert!((norm2 - 1.0).abs() < 1e-12);
        assert!(normalize_to_feasible(&[5.0, 5.0]).is_none());
        assert!(normalize_to_feasible(&[]).is_none());
    }

    #[test]
    fn identity_order_on_path_is_optimal_2sum() {
        // On a path, the identity arrangement has every edge at distance 1:
        // 2-sum = n−1, which is the minimum possible.
        let g = path(5);
        let id = LinearOrder::identity(5);
        assert_eq!(two_sum_cost(&g, &id), 4.0);
        assert_eq!(linear_arrangement_cost(&g, &id), 4.0);
        assert_eq!(bandwidth(&g, &id), 1);
        // A bad order costs strictly more.
        let bad = LinearOrder::from_ranks(vec![0, 4, 1, 3, 2]).unwrap();
        assert!(two_sum_cost(&g, &bad) > 4.0);
    }

    #[test]
    fn lambda2_lower_bounds_every_order() {
        // Theorems 1–3: λ₂ ≤ σ(G, normalized ranks of π) for every π.
        let spec = GridSpec::new(&[3, 3]);
        let g = spec.graph(Connectivity::Orthogonal);
        let lambda2 = 1.0; // known for the 3×3 grid (paper Figure 3d)
                           // Try several arbitrary orders including identity and a scramble.
        let orders = [
            LinearOrder::identity(9),
            LinearOrder::from_ranks(vec![8, 7, 6, 5, 4, 3, 2, 1, 0]).unwrap(),
            LinearOrder::from_ranks(vec![4, 0, 8, 2, 6, 1, 7, 3, 5]).unwrap(),
        ];
        for o in &orders {
            let sigma = order_quadratic_form(&g, o);
            assert!(
                sigma >= lambda2 - 1e-9,
                "order {:?} has σ = {sigma} < λ₂",
                o.ranks()
            );
        }
    }

    #[test]
    fn bandwidth_of_empty_graph_is_zero() {
        let g = Graph::new(3);
        assert_eq!(bandwidth(&g, &LinearOrder::identity(3)), 0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn quadratic_form_length_checked() {
        quadratic_form(&path(3), &[1.0]);
    }
}
