//! Parity between the multilevel and dense-QL spectral orders.
//!
//! The multilevel solver is only a faster road to the same answer: on
//! reference grids its `LinearOrder` must be **identical** to the exact
//! dense path's (both go through the degeneracy-balanced canonical
//! representative and the documented tie-snapping rule, so agreement is
//! exact, not merely approximate), and the min-2-sum objective must match
//! within 1% (trivially, given identical orders — asserted separately so a
//! future tie-rule change degrades this test gracefully instead of
//! silently).

use slpm_graph::grid::{Connectivity, GridSpec};
use slpm_linalg::{FiedlerMethod, FiedlerOptions};
use spectral_lpm::{objective, SpectralConfig, SpectralMapper};

fn mapper(method: FiedlerMethod, connectivity: Connectivity) -> SpectralMapper {
    SpectralMapper::new(SpectralConfig {
        connectivity,
        fiedler: FiedlerOptions {
            method,
            // Tight residual target so the multilevel representative agrees
            // with the dense eigenspace beyond the tie-snapping window.
            tolerance: 1e-11,
            ..Default::default()
        },
        ..Default::default()
    })
}

/// Reference grids. The 32×32 case spends most of its time in the dense
/// O(n³) *reference* solve, which is painfully slow without optimisation,
/// so unoptimised (debug) runs stop at 31×17; `--release` (CI tier-1 builds
/// release first; run `cargo test --release` to reproduce locally) covers
/// the full satellite range up to 32×32.
#[cfg(debug_assertions)]
const GRIDS: &[[usize; 2]] = &[[8, 8], [16, 16], [31, 17]];
#[cfg(not(debug_assertions))]
const GRIDS: &[[usize; 2]] = &[[8, 8], [16, 16], [31, 17], [32, 32]];

fn assert_parity(connectivity: Connectivity) {
    for &dims in GRIDS {
        let spec = GridSpec::new(&dims);
        let dense = mapper(FiedlerMethod::Dense, connectivity)
            .map_grid(&spec)
            .unwrap();
        let ml = mapper(FiedlerMethod::Multilevel, connectivity)
            .map_grid(&spec)
            .unwrap();
        assert_eq!(
            dense.order.ranks(),
            ml.order.ranks(),
            "order mismatch on {dims:?} ({connectivity:?}); λ₂ dense {} vs multilevel {}",
            dense.fiedler.lambda2,
            ml.fiedler.lambda2
        );
        let graph = spec.graph(connectivity);
        let sigma_dense = objective::two_sum_cost(&graph, &dense.order);
        let sigma_ml = objective::two_sum_cost(&graph, &ml.order);
        assert!(
            (sigma_ml - sigma_dense).abs() <= 0.01 * sigma_dense,
            "2-sum off by >1% on {dims:?}: {sigma_ml} vs {sigma_dense}"
        );
    }
}

#[test]
fn multilevel_matches_dense_order_4_connected() {
    assert_parity(Connectivity::Orthogonal);
}

#[test]
fn multilevel_matches_dense_order_8_connected() {
    assert_parity(Connectivity::Full);
}
