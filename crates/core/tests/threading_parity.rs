//! Thread-count invariance of the spectral order.
//!
//! The parallel kernels under the multilevel Fiedler pipeline use
//! fixed-chunk deterministic reductions (`slpm_linalg::parallel`), so the
//! computed `LinearOrder` — and therefore every downstream metric — must
//! be **identical** between a serial run and a `threads = 4` run, on both
//! neighbourhood models. This is the end-to-end companion of the
//! kernel-level bitwise tests in `slpm_linalg`: if it ever fails, a
//! parallel code path has picked up a thread-count-dependent summation
//! order.

use slpm_graph::grid::{Connectivity, GridSpec};
use slpm_linalg::{FiedlerMethod, FiedlerOptions};
use spectral_lpm::{objective, SpectralConfig, SpectralMapper};

fn mapper(connectivity: Connectivity, threads: usize) -> SpectralMapper {
    SpectralMapper::new(SpectralConfig {
        connectivity,
        fiedler: FiedlerOptions {
            method: FiedlerMethod::Multilevel,
            ..Default::default()
        },
        threads: Some(threads),
        ..Default::default()
    })
}

/// Grids forcing a real coarsening hierarchy (default coarsest size 256).
/// The 132×132 case crosses the pool's spawn threshold so worker threads
/// genuinely run; it is release-only because a debug multilevel solve at
/// 17k vertices is painfully slow (the kernel-level bitwise tests in
/// `slpm_linalg` cover genuine spawning in debug builds too).
#[cfg(debug_assertions)]
const GRIDS: &[[usize; 2]] = &[[24, 24], [40, 33]];
#[cfg(not(debug_assertions))]
const GRIDS: &[[usize; 2]] = &[[24, 24], [40, 33], [132, 132]];

fn assert_thread_parity(connectivity: Connectivity) {
    for &dims in GRIDS {
        let spec = GridSpec::new(&dims);
        let serial = mapper(connectivity, 1).map_grid(&spec).unwrap();
        let threaded = mapper(connectivity, 4).map_grid(&spec).unwrap();
        assert_eq!(
            serial.order.ranks(),
            threaded.order.ranks(),
            "order differs serial vs 4 threads on {dims:?} ({connectivity:?})"
        );
        assert_eq!(
            serial.fiedler.lambda2.to_bits(),
            threaded.fiedler.lambda2.to_bits(),
            "λ₂ bits differ on {dims:?} ({connectivity:?})"
        );
        assert_eq!(
            serial.fiedler.vector, threaded.fiedler.vector,
            "Fiedler vector differs on {dims:?} ({connectivity:?})"
        );
        let graph = spec.graph(connectivity);
        let sigma_serial = objective::two_sum_cost(&graph, &serial.order);
        let sigma_threaded = objective::two_sum_cost(&graph, &threaded.order);
        assert_eq!(
            sigma_serial.to_bits(),
            sigma_threaded.to_bits(),
            "2-sum differs on {dims:?} ({connectivity:?})"
        );
    }
}

#[test]
fn threaded_order_matches_serial_4_connected() {
    assert_thread_parity(Connectivity::Orthogonal);
}

#[test]
fn threaded_order_matches_serial_8_connected() {
    assert_thread_parity(Connectivity::Full);
}
