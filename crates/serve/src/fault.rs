//! The deterministic fault plane: seeded, reproducible failure injection
//! for the serving stack.
//!
//! A [`FaultPlan`] describes *what breaks and when* in terms of the
//! engine's own deterministic counters — never wall-clock time or thread
//! identity. Every fault is keyed on a shard's **admitted-unit sequence
//! number** (the Nth replay unit admitted to that shard, counted under
//! the shard-gate lock in admission order) or on a page's **Nth
//! admission-time access**, so the set of faulted units is a pure
//! function of `(plan, admitted workload, engine geometry)` — identical
//! for every thread count and schedule. The engine *resolves* each
//! unit's fault at admission and *manifests* it at the replay seam
//! (injected panics really unwind through `catch_unwind`; failed
//! attempts really pay the bounded retry/backoff loop), which is what
//! makes faulted runs digest-reproducible while still exercising the
//! real recovery machinery.
//!
//! Four fault shapes (mirroring how disks and replicas actually fail):
//!
//! * [`Fault::Stall`] — a run of units on one shard each take an extra
//!   `stall_us` simulated microseconds per attempt; a stall at or beyond
//!   the recovery timeout fails the attempt (a *timeout*, not an error).
//! * [`Fault::PanicUnit`] — one unit's failing attempts unwind as real
//!   panics through the runner's catch seam.
//! * [`Fault::FailShard`] — page reads on one shard error from a given
//!   unit onward: transiently (each unit's first `attempts` tries fail,
//!   then succeed — a retry recovers it) or permanently (every attempt
//!   fails — the unit degrades and the breaker counts it). By default a
//!   failure is pinned to the shard's *current incarnation*: once the
//!   breaker trips and the engine swaps in a rebuilt slice, the fault no
//!   longer applies (the "node restart fixed it" case). `every_incarnation`
//!   faults survive rebuilds (the "data center burned down" case).
//! * [`Fault::PageError`] — one specific page's Nth access fails its
//!   first read attempt (an isolated medium error a retry absorbs).
//!
//! The plan's textual form (CLI `--fault-plan`, bench fault sweeps) is a
//! comma-separated list of events — see [`FaultPlan::parse`].

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// One injected fault event.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Units `from_unit .. from_unit + units` on `shard` each take an
    /// extra `stall_us` simulated microseconds per replay attempt.
    Stall {
        /// Target shard.
        shard: usize,
        /// First affected admitted-unit sequence number (0-based).
        from_unit: u64,
        /// How many consecutive admitted units stall.
        units: u64,
        /// Simulated stall per attempt (µs). At or beyond the recovery
        /// timeout the attempt *fails* (counted as a timeout).
        stall_us: f64,
    },
    /// Admitted unit `unit` on `shard` panics on every attempt; the
    /// panic unwinds through the runner's `catch_unwind` seam and the
    /// unit degrades once retries are exhausted.
    PanicUnit {
        /// Target shard.
        shard: usize,
        /// Admitted-unit sequence number (0-based).
        unit: u64,
    },
    /// Page reads on `shard` fail from admitted unit `from_unit` onward.
    FailShard {
        /// Target shard.
        shard: usize,
        /// First affected admitted-unit sequence number (0-based).
        from_unit: u64,
        /// Transient (retries recover) or permanent (unit degrades).
        kind: FaultKind,
        /// `false`: the fault dies with the shard's first incarnation —
        /// a rebuilt slice (post-trip epoch swap) serves cleanly.
        /// `true`: every incarnation fails; the shard is gone for good.
        every_incarnation: bool,
    },
    /// The `access`-th admission-time access (0-based) of global page
    /// `page` fails its first read attempt; one retry recovers it.
    PageError {
        /// Global page id.
        page: usize,
        /// Which access (0-based, counted at admission) errors.
        access: u64,
    },
}

/// How a [`Fault::FailShard`] fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Each affected unit's first `attempts` tries fail, then succeed —
    /// bounded retry absorbs it when `attempts < max_attempts`.
    Transient {
        /// Failing attempts per unit.
        attempts: u32,
    },
    /// Every attempt fails; affected units degrade.
    Permanent,
}

/// A set of injected faults, installed into an engine via
/// `ServeEngine::inject_faults`. Resolution order is deterministic:
/// stall microseconds add up across overlapping stalls, failing-attempt
/// counts take the maximum of overlapping failures.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The fault events, applied independently.
    pub faults: Vec<Fault>,
}

/// What the plan resolved for one admitted unit (the stamp carried from
/// admission to the replay seam).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitFault {
    /// Leading attempts that fail (`u32::MAX` = all of them).
    pub fail_attempts: u32,
    /// Simulated stall per attempt (µs).
    pub stall_us: f64,
    /// Failing attempts manifest as real panics through the catch seam.
    pub panics: bool,
    /// Page whose read the failing attempts manifest through: the replay
    /// seam arms the shard's store so this page's next read returns a
    /// *real* `StorageError` — the `pagerr:P@N` plan travelling the same
    /// typed path a device error would. `usize::MAX` = no page fault.
    pub fail_page: usize,
}

impl UnitFault {
    /// The no-fault stamp.
    pub const NONE: UnitFault = UnitFault {
        fail_attempts: 0,
        stall_us: 0.0,
        panics: false,
        fail_page: usize::MAX,
    };

    /// True when this stamp changes nothing.
    pub fn is_none(&self) -> bool {
        self.fail_attempts == 0 && self.stall_us == 0.0 && !self.panics
    }

    /// Attempts that fail once the recovery timeout is applied: a stall
    /// at or beyond `timeout_us` times out *every* attempt.
    pub fn effective_fail_attempts(&self, timeout_us: f64) -> u32 {
        if self.stall_us >= timeout_us && self.stall_us > 0.0 {
            u32::MAX
        } else {
            self.fail_attempts
        }
    }

    /// True when no bounded retry loop of `max_attempts` tries can make
    /// this unit succeed — the unit will degrade.
    pub fn will_degrade(&self, timeout_us: f64, max_attempts: u32) -> bool {
        self.effective_fail_attempts(timeout_us) >= max_attempts
    }
}

/// A malformed `--fault-plan` spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultParseError {
    /// The offending event text.
    pub event: String,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault event '{}': {}", self.event, self.reason)
    }
}

impl Error for FaultParseError {}

impl FaultPlan {
    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Parse the compact textual form: a comma-separated list of events.
    ///
    /// * `kill:S@N` — shard `S` fails permanently from its `N`th
    ///   admitted unit, first incarnation only (a rebuild heals it).
    /// * `kill!:S@N` — as above, but every incarnation fails (the shard
    ///   is gone for good; rebuilt slices fail their probes too).
    /// * `flaky:S@N+A` — from unit `N` on shard `S`, each unit's first
    ///   `A` attempts fail then succeed (`flaky:S@N` defaults `A` to 1).
    /// * `stall:S@N+K=U` — `K` units starting at `N` on shard `S` stall
    ///   `U` simulated µs per attempt (`+K` defaults to 1 unit).
    /// * `panic:S@N` — unit `N` on shard `S` panics on every attempt.
    /// * `pagerr:P@N` — global page `P`'s `N`th access errors once.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultParseError> {
        let mut faults = Vec::new();
        for event in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            faults.push(parse_event(event)?);
        }
        Ok(FaultPlan { faults })
    }

    /// A small pseudo-random plan for property tests: a deterministic
    /// function of `(seed, shards)` mixing every fault shape. Unit
    /// indices stay small so short workloads actually hit them.
    pub fn seeded(seed: u64, shards: usize) -> FaultPlan {
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            // splitmix64: reproducible anywhere, no rand dependency.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let shards = shards.max(1) as u64;
        let events = 1 + (next() % 4) as usize;
        let mut faults = Vec::with_capacity(events);
        for _ in 0..events {
            let shard = (next() % shards) as usize;
            let from_unit = next() % 12;
            faults.push(match next() % 5 {
                0 => Fault::Stall {
                    shard,
                    from_unit,
                    units: 1 + next() % 4,
                    stall_us: (1 + next() % 2_000) as f64,
                },
                1 => Fault::PanicUnit {
                    shard,
                    unit: from_unit,
                },
                2 => Fault::FailShard {
                    shard,
                    from_unit,
                    kind: FaultKind::Transient {
                        attempts: 1 + (next() % 2) as u32,
                    },
                    every_incarnation: false,
                },
                3 => Fault::FailShard {
                    shard,
                    from_unit,
                    kind: FaultKind::Permanent,
                    every_incarnation: next() % 2 == 0,
                },
                _ => Fault::PageError {
                    page: (next() % 16) as usize,
                    access: next() % 8,
                },
            });
        }
        FaultPlan { faults }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Stall {
                shard,
                from_unit,
                units,
                stall_us,
            } => write!(f, "stall:{shard}@{from_unit}+{units}={stall_us}"),
            Fault::PanicUnit { shard, unit } => write!(f, "panic:{shard}@{unit}"),
            Fault::FailShard {
                shard,
                from_unit,
                kind: FaultKind::Permanent,
                every_incarnation,
            } => {
                let bang = if *every_incarnation { "!" } else { "" };
                write!(f, "kill{bang}:{shard}@{from_unit}")
            }
            Fault::FailShard {
                shard,
                from_unit,
                kind: FaultKind::Transient { attempts },
                ..
            } => write!(f, "flaky:{shard}@{from_unit}+{attempts}"),
            Fault::PageError { page, access } => write!(f, "pagerr:{page}@{access}"),
        }
    }
}

impl fmt::Display for FaultPlan {
    /// Events re-joined with commas — round-trips through
    /// [`FaultPlan::parse`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{fault}")?;
        }
        Ok(())
    }
}

fn parse_event(event: &str) -> Result<Fault, FaultParseError> {
    let err = |reason: &str| FaultParseError {
        event: event.to_string(),
        reason: reason.to_string(),
    };
    let (name, rest) = event.split_once(':').ok_or_else(|| err("missing ':'"))?;
    let (target, at) = rest.split_once('@').ok_or_else(|| err("missing '@'"))?;
    let target: usize = target.parse().map_err(|_| err("bad target id"))?;
    let parse_u64 = |s: &str, what: &str| -> Result<u64, FaultParseError> {
        s.parse()
            .map_err(|_| err(&format!("bad {what} '{s}' (want an unsigned integer)")))
    };
    Ok(match name {
        "kill" | "kill!" => Fault::FailShard {
            shard: target,
            from_unit: parse_u64(at, "unit")?,
            kind: FaultKind::Permanent,
            every_incarnation: name == "kill!",
        },
        "flaky" => {
            let (unit, attempts) = match at.split_once('+') {
                Some((u, a)) => (parse_u64(u, "unit")?, parse_u64(a, "attempt count")? as u32),
                None => (parse_u64(at, "unit")?, 1),
            };
            if attempts == 0 {
                return Err(err("flaky attempt count must be >= 1"));
            }
            Fault::FailShard {
                shard: target,
                from_unit: unit,
                kind: FaultKind::Transient { attempts },
                every_incarnation: false,
            }
        }
        "stall" => {
            let (head, stall) = at
                .split_once('=')
                .ok_or_else(|| err("missing '=stall_us'"))?;
            let (unit, units) = match head.split_once('+') {
                Some((u, k)) => (parse_u64(u, "unit")?, parse_u64(k, "unit count")?),
                None => (parse_u64(head, "unit")?, 1),
            };
            let stall_us: f64 = stall.parse().map_err(|_| err("bad stall_us"))?;
            if units == 0 {
                return Err(err("stall unit count must be >= 1"));
            }
            if stall_us.is_nan() || stall_us <= 0.0 {
                return Err(err("stall_us must be > 0"));
            }
            Fault::Stall {
                shard: target,
                from_unit: unit,
                units,
                stall_us,
            }
        }
        "panic" => Fault::PanicUnit {
            shard: target,
            unit: parse_u64(at, "unit")?,
        },
        "pagerr" => Fault::PageError {
            page: target,
            access: parse_u64(at, "access")?,
        },
        other => return Err(err(&format!("unknown fault kind '{other}'"))),
    })
}

/// The plan plus its deterministic cursors: per-shard admitted-unit
/// counters and per-page admission-time access counters. Lives under the
/// engine's fleet lock; every stamp advances the cursors in admission
/// order, which is what makes resolution schedule-invariant.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    /// Units admitted per shard so far.
    unit_seq: Vec<u64>,
    /// Admission-time access counts per global page.
    page_access: HashMap<usize, u64>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, shards: usize) -> Self {
        FaultState {
            plan,
            unit_seq: vec![0; shards],
            page_access: HashMap::new(),
        }
    }

    /// Resolve the fault stamp of the next admitted unit on `shard`
    /// (running on incarnation `incarnation`), touching `pages`.
    /// Advances every cursor exactly once per call.
    pub(crate) fn stamp(&mut self, shard: usize, incarnation: u32, pages: &[usize]) -> UnitFault {
        let seq = self.unit_seq[shard];
        self.unit_seq[shard] += 1;
        let mut stamp = UnitFault::NONE;
        for fault in &self.plan.faults {
            match *fault {
                Fault::Stall {
                    shard: s,
                    from_unit,
                    units,
                    stall_us,
                } => {
                    if s == shard && seq >= from_unit && seq - from_unit < units {
                        stamp.stall_us += stall_us;
                    }
                }
                Fault::PanicUnit { shard: s, unit } => {
                    if s == shard && seq == unit {
                        stamp.fail_attempts = u32::MAX;
                        stamp.panics = true;
                    }
                }
                Fault::FailShard {
                    shard: s,
                    from_unit,
                    kind,
                    every_incarnation,
                } => {
                    if s == shard && seq >= from_unit && (every_incarnation || incarnation == 0) {
                        let fails = match kind {
                            FaultKind::Transient { attempts } => attempts,
                            FaultKind::Permanent => u32::MAX,
                        };
                        stamp.fail_attempts = stamp.fail_attempts.max(fails);
                    }
                }
                Fault::PageError { .. } => {}
            }
        }
        // Page-level errors: count every touched page's access, and fail
        // the first attempt when any of them hits its faulted access.
        for &page in pages {
            let hit = self
                .plan
                .faults
                .iter()
                .any(|f| matches!(*f, Fault::PageError { page: p, access } if p == page && access == *self.page_access.get(&page).unwrap_or(&0)));
            *self.page_access.entry(page).or_insert(0) += 1;
            if hit {
                stamp.fail_attempts = stamp.fail_attempts.max(1);
                stamp.fail_page = page;
            }
        }
        stamp
    }
}

/// Identity of a replay unit that failed outside the fault plan's
/// model — the query and shard a degraded-coverage report names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct UnitFailure {
    /// Query index within the batch (submission order).
    pub query: usize,
    /// Shard the unit was routed to.
    pub shard: usize,
}

/// A batch failed in a way recovery does not model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Replay units panicked outside any injected fault (a routing bug,
    /// a poisoned shard lock, …). Carries the identity of every failed
    /// unit; the affected slices are rebuilt at the next admission, so
    /// one poisoned lock does not wedge the engine forever.
    ReplayPanicked {
        /// The failed units, ascending by (query, shard).
        failures: Vec<UnitFailure>,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::ReplayPanicked { failures } => {
                write!(
                    f,
                    "{} replay unit(s) panicked during this batch:",
                    failures.len()
                )?;
                for (i, u) in failures.iter().enumerate() {
                    let sep = if i == 0 { " " } else { ", " };
                    write!(f, "{sep}query {} on shard {}", u.query, u.shard)?;
                }
                Ok(())
            }
        }
    }
}

impl Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_event_kind() {
        let spec = "kill:2@10,kill!:0@3,flaky:1@5+2,stall:3@4+2=500,panic:0@7,pagerr:12@1";
        let plan = FaultPlan::parse(spec).expect("spec parses");
        assert_eq!(plan.faults.len(), 6);
        assert_eq!(
            plan.faults[0],
            Fault::FailShard {
                shard: 2,
                from_unit: 10,
                kind: FaultKind::Permanent,
                every_incarnation: false,
            }
        );
        assert_eq!(
            plan.faults[1],
            Fault::FailShard {
                shard: 0,
                from_unit: 3,
                kind: FaultKind::Permanent,
                every_incarnation: true,
            }
        );
        assert_eq!(
            plan.faults[3],
            Fault::Stall {
                shard: 3,
                from_unit: 4,
                units: 2,
                stall_us: 500.0,
            }
        );
        // Display round-trips through parse.
        let again = FaultPlan::parse(&plan.to_string()).expect("display re-parses");
        assert_eq!(plan, again);
        // Defaults: flaky without +A fails one attempt, stall without +K
        // hits one unit.
        let short = FaultPlan::parse("flaky:0@2,stall:1@3=50").expect("defaults parse");
        assert_eq!(
            short.faults[0],
            Fault::FailShard {
                shard: 0,
                from_unit: 2,
                kind: FaultKind::Transient { attempts: 1 },
                every_incarnation: false,
            }
        );
        assert_eq!(
            short.faults[1],
            Fault::Stall {
                shard: 1,
                from_unit: 3,
                units: 1,
                stall_us: 50.0,
            }
        );
        // Empty spec is an empty plan.
        assert!(FaultPlan::parse("").expect("empty ok").is_empty());
    }

    #[test]
    fn parse_rejects_malformed_events_with_reasons() {
        for (spec, needle) in [
            ("explode:0@1", "unknown fault kind"),
            ("kill:0", "missing '@'"),
            ("kill", "missing ':'"),
            ("kill:x@1", "bad target id"),
            ("kill:0@x", "bad unit"),
            ("stall:0@1", "missing '=stall_us'"),
            ("stall:0@1=0", "stall_us must be > 0"),
            ("stall:0@1+0=5", "unit count must be >= 1"),
            ("flaky:0@1+0", "attempt count must be >= 1"),
        ] {
            let e = FaultPlan::parse(spec).expect_err(spec);
            assert!(e.to_string().contains(needle), "{spec}: {e}");
        }
    }

    #[test]
    fn stamps_are_deterministic_and_cursor_driven() {
        let plan = FaultPlan::parse("kill:1@2,stall:1@0+2=100,pagerr:5@1").expect("parses");
        let mut state = FaultState::new(plan.clone(), 2);
        // Shard 1, unit 0: stalled, not killed, page 5 first access clean.
        let s0 = state.stamp(1, 0, &[5]);
        assert_eq!(s0.stall_us, 100.0);
        assert_eq!(s0.fail_attempts, 0);
        // Shard 1, unit 1: stalled, and page 5's access #1 errors once —
        // the stamp carries the page so replay can arm a real read error.
        let s1 = state.stamp(1, 0, &[5, 6]);
        assert_eq!(s1.stall_us, 100.0);
        assert_eq!(s1.fail_attempts, 1);
        assert_eq!(s1.fail_page, 5);
        assert_eq!(s0.fail_page, usize::MAX);
        // Shard 1, unit 2: the kill starts; incarnation 0 fails outright.
        let s2 = state.stamp(1, 0, &[]);
        assert_eq!(s2.fail_attempts, u32::MAX);
        // …but a rebuilt incarnation serves cleanly (kill is not `kill!`).
        let s3 = state.stamp(1, 1, &[]);
        assert_eq!(s3.fail_attempts, 0);
        // Shard 0 never matches.
        assert!(state.stamp(0, 0, &[7]).is_none());
        // Two fresh cursor states replay identically.
        let mut a = FaultState::new(plan.clone(), 2);
        let mut b = FaultState::new(plan, 2);
        for (shard, pages) in [(1usize, vec![5]), (0, vec![1, 2]), (1, vec![5])] {
            assert_eq!(a.stamp(shard, 0, &pages), b.stamp(shard, 0, &pages));
        }
    }

    #[test]
    fn will_degrade_accounts_for_timeouts_and_retry_budget() {
        let clean = UnitFault::NONE;
        assert!(!clean.will_degrade(1_000.0, 3));
        let flaky = UnitFault {
            fail_attempts: 2,
            ..UnitFault::NONE
        };
        assert!(!flaky.will_degrade(1_000.0, 3)); // 3rd attempt succeeds
        assert!(flaky.will_degrade(1_000.0, 2)); // budget exhausted
        let stalled = UnitFault {
            stall_us: 1_000.0,
            ..UnitFault::NONE
        };
        assert!(stalled.will_degrade(1_000.0, 3)); // every attempt times out
        let slow = UnitFault {
            stall_us: 999.0,
            ..UnitFault::NONE
        };
        assert!(!slow.will_degrade(1_000.0, 3)); // slow but inside budget
    }

    #[test]
    fn seeded_plans_are_reproducible_and_vary_by_seed() {
        let a = FaultPlan::seeded(7, 4);
        let b = FaultPlan::seeded(7, 4);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = FaultPlan::seeded(8, 4);
        let d = FaultPlan::seeded(9, 4);
        // At least one nearby seed differs (they are hash-mixed).
        assert!(a != c || a != d);
    }

    #[test]
    fn serve_error_names_every_failed_unit() {
        let err = ServeError::ReplayPanicked {
            failures: vec![
                UnitFailure { query: 0, shard: 1 },
                UnitFailure { query: 3, shard: 0 },
            ],
        };
        let msg = err.to_string();
        assert!(msg.contains("2 replay unit(s) panicked during this batch"));
        assert!(msg.contains("query 0 on shard 1"));
        assert!(msg.contains("query 3 on shard 0"));
    }
}
