//! Streaming admission with SLO accounting: the open-loop serving layer.
//!
//! [`stream_serve`] drains an offered query sequence — timestamped by an
//! [`ArrivalConfig`] — through a
//! [`ServeEngine`]: arrivals are **micro-batched** under a batching-delay
//! window, each micro-batch is planned once
//! ([`ServeEngine::plan_batch`]), an **admission policy** decides per
//! query whether it runs (shed) or when (block) against a bounded
//! per-shard queue depth, and every admitted query's
//! admission-to-completion latency lands in an [`SloReport`]
//! (p50/p99/p999 against a target, violation fraction, shed counts per
//! workload class, maximum queue depth).
//!
//! **Two clocks.** All admission decisions and SLO latencies live on the
//! *simulated* clock: arrival times come from the arrival process, and
//! service times come from a deterministic [`ServiceModel`] applied to
//! each query's routed page/run counts (the same seek-vs-transfer shape
//! as [`slpm_storage::IoModel`]). The sequence of admitted queries, every
//! shed/block decision, every latency quantile and the SLO gate are
//! therefore pure functions of `(workload, arrival, knobs)` — bitwise
//! reproducible on any machine, which is what lets CI gate on "p99 under
//! target at this rate" without flaking. Real execution still happens:
//! each admitted micro-batch is submitted to the engine (through the
//! bounded-admission seam under [`AdmissionPolicy::Block`], so the
//! backpressure protocol is genuinely exercised), and wall-clock
//! throughput is reported separately as an observable that never enters
//! digests or gates.
//!
//! **Shed vs. block.** [`AdmissionPolicy::Shed`] drops a query at its
//! dispatch instant when any shard it routes to is at the depth bound —
//! offered load above capacity turns into counted rejections and the
//! admitted traffic keeps meeting its SLO. [`AdmissionPolicy::Block`]
//! never drops: the submission loop stalls until every target shard has
//! space, so backpressure propagates upstream and shows up as queueing
//! delay in the latency tail instead. Same bound, opposite failure mode
//! — the classic serving trade-off, now measurable.
//!
//! **Digest parity.** Admitted queries replay through the engine in
//! offered order, so [`StreamReport::digest`] equals
//! [`digest_outcomes`] of a one-shot
//! [`ServeEngine::run`] over exactly the admitted sequence (the
//! split-invariance the engine already guarantees). When nothing is shed
//! that is the whole offered workload — the parity flag the
//! `stream_throughput` bench and CI's `stream-smoke` job assert.

use crate::arrival::ArrivalConfig;
use crate::engine::{
    digest_outcomes, digest_with_coverage, BatchHandle, CoverageReport, DegradedUnit,
    LatencySummary, Query, QueryOutcome, ServeEngine,
};
use crate::fault::{ServeError, UnitFailure};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::time::Instant;

/// What happens to a query whose target shards are at the depth bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Drop it at dispatch time and count the rejection per class; the
    /// admitted traffic keeps its latency profile.
    Shed,
    /// Stall the submission loop until space frees; nothing is dropped,
    /// and the wait surfaces as queueing delay in the latency tail.
    Block,
}

impl AdmissionPolicy {
    /// Parse a policy name (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s.to_ascii_lowercase().as_str() {
            "shed" | "drop" => AdmissionPolicy::Shed,
            "block" | "wait" => AdmissionPolicy::Block,
            _ => return None,
        })
    }
}

impl fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AdmissionPolicy::Shed => "shed",
            AdmissionPolicy::Block => "block",
        })
    }
}

/// Deterministic per-unit service model on the simulated clock: a
/// (query, shard) replay unit with `p` routed pages in `r` sequential
/// runs takes `per_unit_us + r·per_seek_us + p·per_page_us` simulated
/// microseconds. The same seek-versus-transfer shape as
/// [`slpm_storage::IoModel`], scaled to time — so everything the paper
/// says about run counts shows up directly in simulated latency.
///
/// **Calibration.** The defaults are measured against the repo's own
/// out-of-core tier, [`slpm_storage::diskfile`]: one
/// `PageFile::read_page` is exactly one seek plus one page transfer
/// (checksum verify + copy), and one `read_run` is one seek amortised
/// over the run's transfers — precisely the quantities this model
/// charges for. The `calibrate_disk_tier` harness in that module
/// (`cargo test -p slpm_storage --release -- --ignored
/// calibrate_disk_tier --nocapture`) measures ~7–8 µs per 4 KiB page
/// and ~1–2 µs of per-seek overhead on a page-cache-warm file, so the
/// defaults round to 8 and 2. Note the tier inverts spinning-disk
/// intuition: with the kernel absorbing positioning, the software
/// transfer path (checksum + copy) dominates and seeks are cheap —
/// which is why run-length locality is reported separately rather than
/// assumed to dominate latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceModel {
    /// Cost per routed page (transfer: checksum verify + frame copy).
    pub per_page_us: f64,
    /// Cost per sequential run (seek: repositioning a read).
    pub per_seek_us: f64,
    /// Fixed dispatch overhead per replay unit.
    pub per_unit_us: f64,
}

impl Default for ServiceModel {
    fn default() -> Self {
        // Measured by diskfile's `calibrate_disk_tier` harness (see the
        // struct docs); rounded to stay stable across runs.
        ServiceModel {
            per_page_us: 8.0,
            per_seek_us: 2.0,
            per_unit_us: 2.0,
        }
    }
}

impl ServiceModel {
    /// Simulated service time of one replay unit.
    fn unit_us(&self, pages: usize, runs: usize) -> f64 {
        self.per_unit_us + runs as f64 * self.per_seek_us + pages as f64 * self.per_page_us
    }
}

/// Knobs of one streaming run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// The offered-traffic process.
    pub arrival: ArrivalConfig,
    /// Micro-batch window: a dispatch waits this long (simulated µs)
    /// after its first member arrives, collecting later arrivals.
    pub batch_delay_us: f64,
    /// Hard cap on micro-batch size (a full batch dispatches early).
    pub max_batch: usize,
    /// Per-shard bound on queued replay units — the backpressure knob.
    pub queue_depth: usize,
    /// What happens at the bound.
    pub policy: AdmissionPolicy,
    /// Latency target (simulated µs) the SLO report scores against.
    pub slo_us: f64,
    /// Service-time model for the simulated shards.
    pub service: ServiceModel,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            arrival: ArrivalConfig::new(crate::arrival::ArrivalShape::Deterministic, 10_000.0, 42),
            batch_delay_us: 200.0,
            max_batch: 32,
            queue_depth: 64,
            policy: AdmissionPolicy::Shed,
            slo_us: 2_000.0,
            service: ServiceModel::default(),
        }
    }
}

/// The SLO scorecard of one streaming run — every field is computed on
/// the simulated clock, so it is machine-independent.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// The latency target scored against (simulated µs).
    pub target_us: f64,
    /// Median admission-to-completion latency.
    pub p50_us: f64,
    /// 99th-percentile latency.
    pub p99_us: f64,
    /// 99.9th-percentile latency.
    pub p999_us: f64,
    /// Worst admitted-query latency.
    pub max_us: f64,
    /// Admitted queries over the target.
    pub violations: usize,
    /// `100 * violations / admitted` (`0.0` when nothing was admitted).
    pub violation_pct: f64,
    /// Deepest any shard's simulated queue got (in replay units).
    pub max_queue_depth: usize,
    /// Queries shed at the bound (total).
    pub shed: usize,
    /// Shed counts grouped by workload class label.
    pub shed_by_class: Vec<(String, usize)>,
    /// Micro-batches that had to stall under [`AdmissionPolicy::Block`].
    pub blocked_batches: usize,
    /// Total stall time across those micro-batches (simulated µs).
    pub blocked_us: f64,
    /// Queries the arrival process offered.
    pub offered: usize,
    /// Queries actually admitted and executed.
    pub admitted: usize,
    /// Admitted queries with at least one degraded (unserved) unit under
    /// the active fault plan (`0` on a healthy fleet).
    pub degraded: usize,
    /// p99 latency over the fault-free admitted queries only — what
    /// surviving-shard traffic experienced (equals `p99_us` when nothing
    /// degraded).
    pub fault_free_p99_us: f64,
    /// `p99_us <= target_us` — the gate CI asserts at calibrated rates.
    pub slo_met: bool,
}

/// The merged result of one streaming run.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Outcomes of the admitted queries, in admitted (offered) order.
    pub outcomes: Vec<QueryOutcome>,
    /// For each outcome, the index of its query in the offered sequence.
    pub admitted_idx: Vec<usize>,
    /// [`digest_outcomes`] over the
    /// admitted outcomes — equals a one-shot batch run of the same
    /// sequence (the streamed-vs-batch parity invariant).
    pub digest: u64,
    /// The simulated-clock SLO scorecard.
    pub slo: SloReport,
    /// Micro-batches dispatched.
    pub micro_batches: usize,
    /// Simulated time at which the last admitted unit completed (µs).
    pub sim_makespan_us: f64,
    /// Wall-clock seconds the real execution took — an observable for
    /// throughput reporting only, never part of digests or gates.
    pub elapsed_seconds: f64,
    /// Coverage accounting over the admitted sequence: `query` indices
    /// are positions in [`StreamReport::outcomes`] (admitted order); map
    /// through [`StreamReport::admitted_idx`] for offered positions.
    pub coverage: CoverageReport,
    /// Total breaker trips across the fleet by the end of the run.
    pub trips: usize,
    /// The engine's slice epoch after the run (`> 0` once any shard was
    /// rebuilt by failover).
    pub epoch: u64,
}

impl StreamReport {
    /// Real executed throughput (admitted queries per wall-clock second).
    pub fn queries_per_second(&self) -> f64 {
        if self.elapsed_seconds > 0.0 {
            self.outcomes.len() as f64 / self.elapsed_seconds
        } else {
            0.0
        }
    }

    /// The digest folded with the degraded coverage — schedule-invariant
    /// for a fixed fault plan, and equal to [`StreamReport::digest`] on a
    /// clean run. See [`digest_with_coverage`].
    pub fn degraded_digest(&self) -> u64 {
        digest_with_coverage(self.digest, &self.coverage.degraded_units)
    }
}

/// One simulated shard: completion times of its queued/running units,
/// ascending. Mirrors the engine's one-runner-per-shard FIFO: units
/// start when the previous one finishes, never earlier than `now`.
#[derive(Default)]
struct SimShard {
    busy: VecDeque<f64>,
}

impl SimShard {
    /// Retire units finished by `now`.
    fn drain(&mut self, now: f64) {
        while self.busy.front().is_some_and(|&done| done <= now) {
            self.busy.pop_front();
        }
    }

    /// Depth after retiring everything finished by `now`.
    fn depth(&mut self, now: f64) -> usize {
        self.drain(now);
        self.busy.len()
    }

    /// Enqueue one unit at `now`; returns its completion time.
    fn push(&mut self, now: f64, service_us: f64) -> f64 {
        let start = self.busy.back().copied().unwrap_or(now).max(now);
        let done = start + service_us;
        self.busy.push_back(done);
        done
    }

    /// Earliest completion (`None` when idle).
    fn next_completion(&self) -> Option<f64> {
        self.busy.front().copied()
    }
}

/// Drive `queries` (one class label per query) through `engine` as an
/// open-loop stream under `cfg`. See the module docs for the full
/// semantics; in short: micro-batch on the simulated clock, plan once,
/// shed or block at the per-shard depth bound, execute admitted queries
/// on the real engine, and score simulated admission-to-completion
/// latencies against the SLO target.
///
/// Simulated fault penalties (stalls, timeouts, retry backoff) are added
/// to the affected queries' reported latencies **after** admission: shed
/// and block decisions are untouched by the fault plan, so the admitted
/// sequence — and with it every fault-free query's outcome — is bitwise
/// identical between a faulted and an unfaulted run.
///
/// # Errors
/// [`ServeError::ReplayPanicked`] when a replay unit panicked outside
/// the fault plan (injected faults degrade instead; see the coverage
/// report). Every in-flight micro-batch is drained before the error
/// returns.
///
/// # Panics
/// Panics when `labels.len() != queries.len()`, or on nonsensical knobs
/// (zero `max_batch` / `queue_depth` are clamped to 1 instead).
pub fn stream_serve(
    engine: &ServeEngine<'_>,
    queries: &[Query],
    labels: &[&'static str],
    cfg: &StreamConfig,
) -> Result<StreamReport, ServeError> {
    assert_eq!(labels.len(), queries.len(), "one class label per query");
    // xtask:allow(wall-clock): throughput observable only, excluded from digests
    let wall_start = Instant::now();
    let n = queries.len();
    let max_batch = cfg.max_batch.max(1);
    let depth_bound = cfg.queue_depth.max(1);
    let times = cfg.arrival.times_us(n);
    let shards = engine.config().shards;

    let mut sim: Vec<SimShard> = (0..shards).map(|_| SimShard::default()).collect();
    let mut handles: Vec<BatchHandle> = Vec::new();
    let mut admitted_idx: Vec<usize> = Vec::new();
    let mut latencies_us: Vec<f64> = Vec::new();
    let mut shed_by_class: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut shed = 0usize;
    let mut blocked_batches = 0usize;
    let mut blocked_us = 0.0f64;
    let mut max_queue_depth = 0usize;
    let mut micro_batches = 0usize;
    let mut sim_makespan_us = 0.0f64;
    // The submission loop is serial: it cannot start collecting the next
    // micro-batch before the previous dispatch (and any block-mode stall)
    // finished.
    let mut driver_free = 0.0f64;

    let mut i = 0usize;
    while i < n {
        // Collect one micro-batch: it opens when its first query is
        // picked up, closes after the batching delay, and dispatches
        // early if `max_batch` arrivals land inside the window.
        let open = times[i].max(driver_free);
        let close = open + cfg.batch_delay_us.max(0.0);
        let mut end = i + 1;
        while end < n && end - i < max_batch && times[end] <= close {
            end += 1;
        }
        let mut dispatch = if end - i == max_batch {
            times[end - 1].max(open)
        } else {
            close
        };
        let scheduled_dispatch = dispatch;
        micro_batches += 1;

        let planned = engine.plan_batch(&queries[i..end]);
        // Per-member shard loads, charged against the simulated queues.
        let loads: Vec<Vec<(usize, usize, usize)>> =
            (0..planned.len()).map(|m| planned.shard_loads(m)).collect();

        let mut keep = vec![true; planned.len()];
        for (m, load) in loads.iter().enumerate() {
            let qidx = i + m;
            match cfg.policy {
                AdmissionPolicy::Shed => {
                    let fits = load
                        .iter()
                        .all(|&(s, _, _)| sim[s].depth(dispatch) < depth_bound);
                    if !fits {
                        keep[m] = false;
                        shed += 1;
                        *shed_by_class.entry(labels[qidx]).or_insert(0) += 1;
                        continue;
                    }
                }
                AdmissionPolicy::Block => {
                    // Stall the driver until every target shard has
                    // space: advance simulated time to the earliest
                    // completion among the full ones, retire it, retry.
                    let stall_from = dispatch;
                    // xtask:allow(unbounded-retry): simulated-clock drain, not a
                    // retry loop — each pass retires a completion, and the queue
                    // is finite, so it terminates
                    loop {
                        let mut free_at: Option<f64> = None;
                        for &(s, _, _) in load {
                            if sim[s].depth(dispatch) >= depth_bound {
                                if let Some(done) = sim[s].next_completion() {
                                    free_at = Some(free_at.map_or(done, |f: f64| f.min(done)));
                                }
                            }
                        }
                        match free_at {
                            None => break,
                            Some(t) => dispatch = dispatch.max(t),
                        }
                    }
                    if dispatch > stall_from {
                        blocked_us += dispatch - stall_from;
                    }
                }
            }
            // Admit: one simulated unit per target shard, completing when
            // its slowest slice does.
            let mut done_at = dispatch;
            for &(s, pages, runs) in load {
                let done = sim[s].push(dispatch, cfg.service.unit_us(pages, runs));
                done_at = done_at.max(done);
                max_queue_depth = max_queue_depth.max(sim[s].busy.len());
            }
            admitted_idx.push(qidx);
            latencies_us.push(done_at - times[qidx]);
            sim_makespan_us = sim_makespan_us.max(done_at);
        }

        // A stalled dispatch counts once, however many members waited.
        if dispatch > scheduled_dispatch {
            blocked_batches += 1;
        }

        // Execute the admitted members on the real engine. Block mode
        // goes through the bounded-admission seam so the engine's
        // backpressure protocol (condvar gating on per-shard depth) is
        // genuinely exercised, not just simulated.
        let selected = if keep.iter().all(|&k| k) {
            planned
        } else {
            planned.select(&keep)
        };
        if !selected.is_empty() {
            handles.push(match cfg.policy {
                AdmissionPolicy::Shed => engine.submit_planned(selected),
                AdmissionPolicy::Block => engine.submit_planned_bounded(selected, depth_bound),
            });
        }
        driver_free = dispatch;
        i = end;
    }

    // Merge the real outcomes in admitted order; the digest over the
    // concatenation equals a one-shot batch run of the admitted sequence
    // by the engine's split-invariance. Micro-batches renumber their
    // queries from 0, so coverage/failure indices are offset to admitted
    // positions. All handles are drained even when one errors.
    let mut outcomes: Vec<QueryOutcome> = Vec::with_capacity(admitted_idx.len());
    let mut degraded: Vec<DegradedUnit> = Vec::new();
    let mut failures: Vec<UnitFailure> = Vec::new();
    let mut next_base = 0usize;
    for handle in handles {
        let base = next_base;
        next_base += handle.queries();
        match handle.wait() {
            Ok(report) => {
                degraded.extend(report.coverage.degraded_units.into_iter().map(|mut d| {
                    d.query += base;
                    d
                }));
                outcomes.extend(report.outcomes);
            }
            Err(ServeError::ReplayPanicked { failures: sub }) => {
                failures.extend(sub.into_iter().map(|mut f| {
                    f.query += base;
                    f
                }));
            }
        }
    }
    if !failures.is_empty() {
        failures.sort_unstable();
        return Err(ServeError::ReplayPanicked { failures });
    }
    debug_assert_eq!(outcomes.len(), admitted_idx.len());
    let digest = digest_outcomes(&outcomes);
    let coverage = CoverageReport::new(outcomes.len(), degraded);

    // Fault penalties land on reported latency only, after every shed /
    // block decision was made — admitted traffic is fault-plan-invariant.
    for (latency, outcome) in latencies_us.iter_mut().zip(&outcomes) {
        *latency += outcome.fault_us;
    }
    let fault_free: Vec<f64> = latencies_us
        .iter()
        .zip(&outcomes)
        .filter(|(_, o)| o.degraded_pages == 0)
        .map(|(&l, _)| l)
        .collect();
    let fault_free_p99_us = LatencySummary::new(fault_free).quantile(0.99);

    let summary = LatencySummary::new(latencies_us);
    let (p50_us, p99_us, p999_us) = summary.p50_p99_p999();
    let (violations, violation_frac) = summary.violations(cfg.slo_us);
    let violation_pct = violation_frac * 100.0;
    let slo = SloReport {
        target_us: cfg.slo_us,
        p50_us,
        p99_us,
        p999_us,
        max_us: summary.max(),
        violations,
        violation_pct,
        max_queue_depth,
        shed,
        shed_by_class: shed_by_class
            .into_iter()
            .map(|(label, count)| (label.to_string(), count))
            .collect(),
        blocked_batches,
        blocked_us,
        offered: n,
        admitted: outcomes.len(),
        degraded: coverage.degraded_queries(),
        fault_free_p99_us,
        slo_met: p99_us <= cfg.slo_us,
    };
    let trips = engine
        .health_snapshot()
        .iter()
        .map(|b| b.trips as usize)
        .sum();
    Ok(StreamReport {
        outcomes,
        admitted_idx,
        digest,
        slo,
        micro_batches,
        sim_makespan_us,
        elapsed_seconds: wall_start.elapsed().as_secs_f64(),
        coverage,
        trips,
        epoch: engine.epoch(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalShape;
    use crate::engine::EngineConfig;
    use crate::testing::with_watchdog;
    use crate::workload::{grid_points, mixed_workload_labeled, WorkloadConfig};
    use slpm_graph::grid::GridSpec;
    use spectral_lpm::LinearOrder;

    fn fixture() -> (Vec<Vec<i64>>, LinearOrder, Vec<Query>, Vec<&'static str>) {
        let spec = GridSpec::cube(16, 2);
        let points = grid_points(&spec);
        let order = LinearOrder::identity(points.len());
        let labeled = mixed_workload_labeled(
            &spec,
            &WorkloadConfig {
                queries: 96,
                ..Default::default()
            },
        );
        let (queries, labels) = labeled.into_iter().unzip();
        (points, order, queries, labels)
    }

    fn engine_cfg(shards: usize, threads: usize) -> EngineConfig {
        EngineConfig {
            records_per_page: 4,
            fanout: 4,
            buffer_pages: 16,
            shards,
            threads,
            ..Default::default()
        }
    }

    #[test]
    fn uncontended_stream_admits_everything_and_matches_batch_digest() {
        with_watchdog(std::time::Duration::from_secs(60), "stream parity", || {
            let (points, order, queries, labels) = fixture();
            for (shards, threads) in [(1usize, 1usize), (2, 2), (4, 2)] {
                let engine = ServeEngine::new(&points, &order, engine_cfg(shards, threads));
                let cfg = StreamConfig {
                    arrival: ArrivalConfig::new(ArrivalShape::Deterministic, 2_000.0, 42),
                    queue_depth: 1_000_000,
                    slo_us: 1e9,
                    ..Default::default()
                };
                let report =
                    stream_serve(&engine, &queries, &labels, &cfg).expect("no replay panic");
                assert_eq!(report.slo.offered, queries.len());
                assert_eq!(report.slo.admitted, queries.len());
                assert_eq!(report.slo.shed, 0);
                assert_eq!(report.admitted_idx, (0..queries.len()).collect::<Vec<_>>());
                // The parity invariant: streamed digest == one-shot batch.
                let batch = engine.run(&queries).expect("no replay panic");
                assert_eq!(report.digest, batch.digest, "S={shards} T={threads}");
                assert!(report.slo.slo_met);
                assert!(report.micro_batches >= queries.len() / cfg.max_batch);
                assert!(report.sim_makespan_us > 0.0);
                assert!(engine.queue_depths().iter().all(|&d| d == 0));
            }
        });
    }

    #[test]
    fn stream_is_deterministic_on_the_simulated_clock() {
        with_watchdog(
            std::time::Duration::from_secs(60),
            "stream determinism",
            || {
                let (points, order, queries, labels) = fixture();
                let cfg = StreamConfig {
                    arrival: ArrivalConfig::new(ArrivalShape::Poisson, 50_000.0, 7),
                    queue_depth: 2,
                    batch_delay_us: 50.0,
                    ..Default::default()
                };
                // Two runs on differently scheduled engines: every simulated
                // observable must be bitwise identical.
                let a = {
                    let engine = ServeEngine::new(&points, &order, engine_cfg(2, 2));
                    stream_serve(&engine, &queries, &labels, &cfg).expect("no replay panic")
                };
                let b = {
                    let engine = ServeEngine::new(&points, &order, engine_cfg(2, 4));
                    stream_serve(&engine, &queries, &labels, &cfg).expect("no replay panic")
                };
                assert_eq!(a.slo, b.slo);
                assert_eq!(a.admitted_idx, b.admitted_idx);
                assert_eq!(a.digest, b.digest);
                assert_eq!(a.micro_batches, b.micro_batches);
                assert_eq!(a.sim_makespan_us, b.sim_makespan_us);
            },
        );
    }

    #[test]
    fn overload_sheds_and_counts_per_class() {
        with_watchdog(std::time::Duration::from_secs(60), "stream shed", || {
            let (points, order, queries, labels) = fixture();
            let engine = ServeEngine::new(&points, &order, engine_cfg(2, 2));
            // Offered far above simulated capacity with a tiny bound:
            // something must shed, and the books must balance.
            let cfg = StreamConfig {
                arrival: ArrivalConfig::new(ArrivalShape::Bursty, 400_000.0, 42),
                queue_depth: 1,
                batch_delay_us: 10.0,
                policy: AdmissionPolicy::Shed,
                ..Default::default()
            };
            let report = stream_serve(&engine, &queries, &labels, &cfg).expect("no replay panic");
            assert!(report.slo.shed > 0, "overload must shed: {:?}", report.slo);
            assert_eq!(report.slo.admitted + report.slo.shed, report.slo.offered);
            let by_class: usize = report.slo.shed_by_class.iter().map(|(_, c)| c).sum();
            assert_eq!(by_class, report.slo.shed);
            assert!(report.slo.max_queue_depth <= 1);
            // The admitted subsequence still matches its one-shot run.
            let admitted: Vec<Query> = report
                .admitted_idx
                .iter()
                .map(|&q| queries[q].clone())
                .collect();
            assert_eq!(
                report.digest,
                engine.run(&admitted).expect("no replay panic").digest
            );
        });
    }

    #[test]
    fn block_policy_admits_everything_but_pays_in_latency() {
        with_watchdog(std::time::Duration::from_secs(60), "stream block", || {
            let (points, order, queries, labels) = fixture();
            let engine = ServeEngine::new(&points, &order, engine_cfg(2, 2));
            let overload = ArrivalConfig::new(ArrivalShape::Deterministic, 400_000.0, 42);
            let blocked = stream_serve(
                &engine,
                &queries,
                &labels,
                &StreamConfig {
                    arrival: overload,
                    queue_depth: 1,
                    batch_delay_us: 10.0,
                    policy: AdmissionPolicy::Block,
                    ..Default::default()
                },
            )
            .expect("no replay panic");
            assert_eq!(blocked.slo.admitted, blocked.slo.offered);
            assert_eq!(blocked.slo.shed, 0);
            assert!(blocked.slo.blocked_batches > 0, "{:?}", blocked.slo);
            assert!(blocked.slo.blocked_us > 0.0);
            // Nothing dropped → full-workload digest parity.
            assert_eq!(
                blocked.digest,
                engine.run(&queries).expect("no replay panic").digest
            );
            // An empty offered stream degenerates cleanly.
            let empty =
                stream_serve(&engine, &[], &[], &StreamConfig::default()).expect("no replay panic");
            assert_eq!(empty.slo.admitted, 0);
            assert_eq!(empty.micro_batches, 0);
            assert_eq!(empty.slo.p999_us, 0.0);
            // The same workload with ample headroom has a lower p99:
            // blocking converts overload into tail latency.
            let headroom = stream_serve(
                &engine,
                &queries,
                &labels,
                &StreamConfig {
                    arrival: ArrivalConfig::new(ArrivalShape::Deterministic, 1_000.0, 42),
                    queue_depth: 1_000_000,
                    policy: AdmissionPolicy::Block,
                    ..Default::default()
                },
            )
            .expect("no replay panic");
            assert!(
                headroom.slo.p99_us < blocked.slo.p99_us,
                "headroom p99 {} vs blocked p99 {}",
                headroom.slo.p99_us,
                blocked.slo.p99_us
            );
        });
    }

    #[test]
    fn policy_parse_and_display_round_trip() {
        for p in [AdmissionPolicy::Shed, AdmissionPolicy::Block] {
            assert_eq!(AdmissionPolicy::parse(&p.to_string()), Some(p));
        }
        assert_eq!(AdmissionPolicy::parse("DROP"), Some(AdmissionPolicy::Shed));
        assert_eq!(AdmissionPolicy::parse("wait"), Some(AdmissionPolicy::Block));
        assert_eq!(AdmissionPolicy::parse("retry"), None);
    }
}
