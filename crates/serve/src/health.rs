//! Shard health: bounded retry/backoff, circuit breakers, and the
//! rebuild requests behind epoch-swapped failover.
//!
//! **The breaker rides the admission clock.** Transitions are driven by
//! the deterministic sequence of units admitted to a shard — never by
//! wall-clock time or runner scheduling. At admission the engine already
//! knows (from the fault stamp and the retry budget) whether a unit can
//! possibly succeed, so the breaker consumes that verdict in admission
//! order: `Closed` counts consecutive doomed units and **trips** at the
//! threshold (requesting an epoch swap and bumping the shard's
//! incarnation); `Open` fast-fails admitted units for `probe_cooldown`
//! units, then the next unit **probes** (`HalfOpen`): a succeeding probe
//! closes the breaker, a failing one re-opens it. Manifestation — the
//! actual bounded retry loop, backoff accrual, injected panics — still
//! happens physically at the replay seam; only the *decisions* are made
//! at admission, which is what keeps degraded coverage and digests
//! schedule-invariant.
//!
//! **Timeouts and backoff are simulated.** A replay attempt that stalls
//! to [`RecoveryConfig::timeout_us`] is abandoned there (the attempt
//! fails, charging the timeout); failed attempts wait
//! `backoff_us · 2^attempt` simulated microseconds before the next try.
//! The accumulated penalty lands in each query's `fault_us` and is
//! charged to its streaming latency — deterministic arithmetic, no
//! sleeping.

use crate::fault::UnitFault;
use std::fmt;

/// Retry, timeout and breaker knobs (all on the simulated clock).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Per-attempt timeout (simulated µs): an attempt stalling this long
    /// is abandoned and counted failed. Must be > 0.
    pub timeout_us: f64,
    /// Total attempts per unit (1 = no retry). Must be ≥ 1.
    pub max_attempts: u32,
    /// Base backoff between attempts (simulated µs), doubling per retry.
    /// Must be > 0.
    pub backoff_us: f64,
    /// Consecutive doomed units that trip a shard's breaker. Must be ≥ 1.
    pub breaker_threshold: u32,
    /// Admitted units an open breaker fast-fails before probing.
    pub probe_cooldown: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            timeout_us: 10_000.0,
            max_attempts: 3,
            backoff_us: 100.0,
            breaker_threshold: 3,
            probe_cooldown: 4,
        }
    }
}

impl RecoveryConfig {
    /// Reject nonsensical knobs with a message naming the offender.
    pub fn validate(&self) -> Result<(), String> {
        if self.timeout_us.is_nan() || self.timeout_us <= 0.0 {
            return Err(format!("timeout_us must be > 0 (got {})", self.timeout_us));
        }
        if self.max_attempts == 0 {
            return Err("max_attempts must be >= 1 (0 would retry nothing)".to_string());
        }
        if self.backoff_us.is_nan() || self.backoff_us <= 0.0 {
            return Err(format!("backoff_us must be > 0 (got {})", self.backoff_us));
        }
        if self.breaker_threshold == 0 {
            return Err("breaker_threshold must be >= 1".to_string());
        }
        Ok(())
    }

    /// Simulated penalty of one *failed* attempt: the stall (capped at
    /// the timeout) plus the exponential backoff before the next try.
    pub(crate) fn failed_attempt_us(&self, stall_us: f64, attempt: u32, last: bool) -> f64 {
        let stall = stall_us.min(self.timeout_us);
        if last {
            stall
        } else {
            stall + self.backoff_us * (1u64 << attempt.min(20)) as f64
        }
    }
}

/// Circuit-breaker state of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Serving normally; consecutive doomed units count toward a trip.
    Closed,
    /// Tripped: admitted units fast-fail (degrade without retries) until
    /// the probe cooldown elapses.
    Open,
    /// Cooldown over: the next admitted unit is a probe.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// What admission decided for one unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitDisposition {
    /// Run the bounded retry loop at the replay seam (the unit may still
    /// degrade there if its stamp dooms every attempt).
    Execute,
    /// Breaker open: degrade immediately, no attempts, no penalty.
    FastFail,
}

/// One shard's breaker plus its rebuild bookkeeping.
#[derive(Debug, Clone)]
pub struct ShardBreaker {
    state: BreakerState,
    consecutive_failures: u32,
    trips: u32,
    /// Bumped at every trip; fault stamps match against it, so rebuilt
    /// slices escape incarnation-pinned faults.
    incarnation: u32,
    cooldown_left: u32,
    /// A trip (or an un-modeled panic) happened since the last swap; the
    /// engine rebuilds this shard's slice at the next admission boundary.
    rebuild_pending: bool,
}

impl Default for ShardBreaker {
    fn default() -> Self {
        ShardBreaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            trips: 0,
            incarnation: 0,
            cooldown_left: 0,
            rebuild_pending: false,
        }
    }
}

impl ShardBreaker {
    /// Feed one admitted unit through the state machine. `doomed` is the
    /// admission-time verdict: no retry budget can make this unit
    /// succeed. Returns how the replay seam should treat it.
    pub(crate) fn on_unit(&mut self, doomed: bool, cfg: &RecoveryConfig) -> UnitDisposition {
        match self.state {
            BreakerState::Closed => {
                if doomed {
                    self.consecutive_failures += 1;
                    if self.consecutive_failures >= cfg.breaker_threshold {
                        self.trip(cfg);
                    }
                } else {
                    self.consecutive_failures = 0;
                }
                UnitDisposition::Execute
            }
            BreakerState::Open => {
                if self.cooldown_left > 0 {
                    self.cooldown_left -= 1;
                    UnitDisposition::FastFail
                } else {
                    self.state = BreakerState::HalfOpen;
                    self.probe(doomed, cfg)
                }
            }
            BreakerState::HalfOpen => self.probe(doomed, cfg),
        }
    }

    /// Resolve a probe unit: success closes the breaker, failure
    /// re-opens it (another cooldown, but no new trip/incarnation — the
    /// slice was already rebuilt; a persistent fault keeps it open).
    fn probe(&mut self, doomed: bool, cfg: &RecoveryConfig) -> UnitDisposition {
        if doomed {
            self.state = BreakerState::Open;
            self.cooldown_left = cfg.probe_cooldown;
        } else {
            self.state = BreakerState::Closed;
            self.consecutive_failures = 0;
        }
        UnitDisposition::Execute
    }

    /// Trip: open the breaker, request a slice rebuild, and bump the
    /// incarnation so units stamped after this point target the rebuilt
    /// slice's fault identity.
    fn trip(&mut self, cfg: &RecoveryConfig) {
        self.state = BreakerState::Open;
        self.trips += 1;
        self.incarnation += 1;
        self.cooldown_left = cfg.probe_cooldown;
        self.consecutive_failures = 0;
        self.rebuild_pending = true;
    }

    /// An un-modeled replay panic (outside the fault plan) was observed
    /// at the replay seam: the slice (and possibly its poisoned lock) is
    /// rebuilt at the next admission boundary. Does not touch the
    /// deterministic state machine — real bugs are not schedulable.
    pub(crate) fn note_unexpected_panic(&mut self) {
        self.rebuild_pending = true;
    }

    /// Take the pending-rebuild flag (true at most once per request).
    pub(crate) fn take_rebuild(&mut self) -> bool {
        std::mem::take(&mut self.rebuild_pending)
    }

    /// Incarnation the *next* stamped unit targets.
    pub(crate) fn incarnation(&self) -> u32 {
        self.incarnation
    }

    /// Immutable snapshot for reporting.
    pub(crate) fn snapshot(&self, shard: usize) -> BreakerSnapshot {
        BreakerSnapshot {
            shard,
            state: self.state,
            consecutive_failures: self.consecutive_failures,
            trips: self.trips,
            incarnation: self.incarnation,
        }
    }
}

/// A point-in-time view of one shard's breaker, for CLI/bench reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerSnapshot {
    /// Shard id.
    pub shard: usize,
    /// Current breaker state.
    pub state: BreakerState,
    /// Consecutive doomed units counted so far (closed state only).
    pub consecutive_failures: u32,
    /// Times this shard's breaker has tripped.
    pub trips: u32,
    /// Current slice incarnation (0 = the original build).
    pub incarnation: u32,
}

/// The admission-time verdict for one unit, combining the fault stamp
/// with the breaker decision — what the engine enqueues.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum UnitDirective {
    /// No fault stamped; replay normally.
    Serve,
    /// Run the bounded retry loop with this stamp.
    Faulted(UnitFault),
    /// Breaker open: record the unit as degraded without touching the
    /// shard.
    FastFail,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RecoveryConfig {
        RecoveryConfig {
            breaker_threshold: 2,
            probe_cooldown: 2,
            ..Default::default()
        }
    }

    #[test]
    fn validate_rejects_each_nonsensical_knob() {
        assert!(RecoveryConfig::default().validate().is_ok());
        for (bad, needle) in [
            (
                RecoveryConfig {
                    timeout_us: 0.0,
                    ..Default::default()
                },
                "timeout_us",
            ),
            (
                RecoveryConfig {
                    max_attempts: 0,
                    ..Default::default()
                },
                "max_attempts",
            ),
            (
                RecoveryConfig {
                    backoff_us: -1.0,
                    ..Default::default()
                },
                "backoff_us",
            ),
            (
                RecoveryConfig {
                    breaker_threshold: 0,
                    ..Default::default()
                },
                "breaker_threshold",
            ),
        ] {
            let err = bad.validate().expect_err("must reject");
            assert!(err.contains(needle), "{err}");
        }
    }

    #[test]
    fn breaker_trips_opens_probes_and_closes() {
        let cfg = cfg();
        let mut b = ShardBreaker::default();
        // Two consecutive doomed units trip (threshold 2).
        assert_eq!(b.on_unit(true, &cfg), UnitDisposition::Execute);
        assert_eq!(b.snapshot(0).state, BreakerState::Closed);
        assert_eq!(b.on_unit(true, &cfg), UnitDisposition::Execute);
        let snap = b.snapshot(0);
        assert_eq!(snap.state, BreakerState::Open);
        assert_eq!(snap.trips, 1);
        assert_eq!(snap.incarnation, 1);
        assert!(b.take_rebuild());
        assert!(!b.take_rebuild(), "rebuild request is one-shot");
        // Cooldown: two fast-fails.
        assert_eq!(b.on_unit(false, &cfg), UnitDisposition::FastFail);
        assert_eq!(b.on_unit(false, &cfg), UnitDisposition::FastFail);
        // Probe succeeds → closed, serving again.
        assert_eq!(b.on_unit(false, &cfg), UnitDisposition::Execute);
        assert_eq!(b.snapshot(0).state, BreakerState::Closed);
        assert_eq!(b.snapshot(0).trips, 1);
    }

    #[test]
    fn failed_probe_reopens_without_a_new_incarnation() {
        let cfg = RecoveryConfig {
            breaker_threshold: 1,
            probe_cooldown: 1,
            ..Default::default()
        };
        let mut b = ShardBreaker::default();
        assert_eq!(b.on_unit(true, &cfg), UnitDisposition::Execute); // trip
        assert_eq!(b.snapshot(0).incarnation, 1);
        assert_eq!(b.on_unit(true, &cfg), UnitDisposition::FastFail); // cooldown
        assert_eq!(b.on_unit(true, &cfg), UnitDisposition::Execute); // probe fails
        let snap = b.snapshot(0);
        assert_eq!(snap.state, BreakerState::Open);
        assert_eq!(snap.trips, 1, "re-open is not a new trip");
        assert_eq!(snap.incarnation, 1, "no new incarnation on failed probe");
        // A later successful probe still closes it.
        assert_eq!(b.on_unit(false, &cfg), UnitDisposition::FastFail);
        assert_eq!(b.on_unit(false, &cfg), UnitDisposition::Execute);
        assert_eq!(b.snapshot(0).state, BreakerState::Closed);
    }

    #[test]
    fn interleaved_successes_reset_the_consecutive_count() {
        let cfg = cfg();
        let mut b = ShardBreaker::default();
        for _ in 0..8 {
            assert_eq!(b.on_unit(true, &cfg), UnitDisposition::Execute);
            assert_eq!(b.on_unit(false, &cfg), UnitDisposition::Execute);
        }
        assert_eq!(b.snapshot(0).state, BreakerState::Closed);
        assert_eq!(b.snapshot(0).trips, 0);
    }

    #[test]
    fn unexpected_panic_requests_rebuild_without_tripping() {
        let mut b = ShardBreaker::default();
        b.note_unexpected_panic();
        assert!(b.take_rebuild());
        let snap = b.snapshot(3);
        assert_eq!(snap.shard, 3);
        assert_eq!(snap.state, BreakerState::Closed);
        assert_eq!(snap.trips, 0);
        assert_eq!(snap.incarnation, 0);
    }

    #[test]
    fn failed_attempt_penalty_caps_stall_and_doubles_backoff() {
        let cfg = RecoveryConfig {
            timeout_us: 100.0,
            backoff_us: 10.0,
            ..Default::default()
        };
        // Stall capped at the timeout; backoff doubles per attempt.
        assert_eq!(cfg.failed_attempt_us(500.0, 0, false), 100.0 + 10.0);
        assert_eq!(cfg.failed_attempt_us(500.0, 1, false), 100.0 + 20.0);
        assert_eq!(cfg.failed_attempt_us(40.0, 2, false), 40.0 + 40.0);
        // The final attempt pays no backoff (there is no next try).
        assert_eq!(cfg.failed_attempt_us(500.0, 2, true), 100.0);
    }
}
