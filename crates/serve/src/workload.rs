//! Reproducible mixed workloads for the serving layer.
//!
//! Builds batches of range and kNN queries from
//! [`slpm_querysim::workloads::sample_boxes`] — the same seeded generator
//! the evaluation figures use — so a workload is a pure function of
//! `(grid, count, seed)`: two processes, machines, or shard/thread
//! configurations replay byte-for-byte the same queries.

use crate::engine::Query;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slpm_graph::grid::GridSpec;
use slpm_querysim::workloads::{sample_boxes, RangeBox};
use slpm_storage::Mbr;

/// Shape of a generated workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Number of queries in the batch.
    pub queries: usize,
    /// Seed for the box sampler.
    pub seed: u64,
    /// Every `knn_every`-th query becomes a kNN probe at the box centre
    /// (`0` disables kNN entirely).
    pub knn_every: usize,
    /// Neighbours per kNN probe.
    pub k: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            queries: 1000,
            seed: 42,
            knn_every: 4,
            // Deliberately larger than the 9 points a unit-radius L∞ ball
            // holds in 2-D, so iterative planners (the expanding ball)
            // genuinely pay multi-round expansion on the default
            // workload instead of terminating on the first probe.
            k: 16,
        }
    }
}

/// The grid's points as integer coordinates, id = row-major index — the
/// point set every engine over a [`GridSpec`] serves.
pub fn grid_points(spec: &GridSpec) -> Vec<Vec<i64>> {
    spec.iter_points()
        .map(|c| c.iter().map(|&x| x as i64).collect())
        .collect()
}

/// Convert a grid-coordinate box to the store's integer MBR.
fn to_mbr(b: &RangeBox) -> Mbr {
    Mbr {
        lo: b.lo.iter().map(|&x| x as i64).collect(),
        hi: b.hi.iter().map(|&x| x as i64).collect(),
    }
}

/// The selectivity-class labels of [`mixed_workload_labeled`], in class
/// order (the fourth label marks kNN probes).
pub const CLASS_LABELS: [&str; 4] = ["range-1/32", "range-1/16", "range-1/8", "knn"];

/// Generate a reproducible mixed batch: three selectivity classes of
/// range boxes (sides ≈ 1/32, 1/16 and 1/8 of the smallest grid extent)
/// interleaved round-robin, with every `knn_every`-th query replaced by a
/// kNN probe anchored at its box's centre.
pub fn mixed_workload(spec: &GridSpec, cfg: &WorkloadConfig) -> Vec<Query> {
    mixed_workload_labeled(spec, cfg)
        .into_iter()
        .map(|(q, _)| q)
        .collect()
}

/// [`mixed_workload`] with each query tagged by its [`CLASS_LABELS`]
/// selectivity class — the key the bench groups per-class latency
/// quantiles by.
pub fn mixed_workload_labeled(spec: &GridSpec, cfg: &WorkloadConfig) -> Vec<(Query, &'static str)> {
    let min_extent = spec.dims().iter().copied().min().expect("non-empty grid");
    let classes: Vec<usize> = [32, 16, 8]
        .iter()
        .map(|&frac| (min_extent / frac).max(1))
        .collect();
    let per_class = cfg.queries.div_ceil(classes.len());
    // One seeded stream per class; interleaving consumes them round-robin
    // so the batch mixes selectivities the way live traffic would.
    let streams: Vec<Vec<RangeBox>> = classes
        .iter()
        .enumerate()
        .map(|(c, &side)| {
            let sides = vec![side; spec.ndim()];
            sample_boxes(spec, &sides, per_class, cfg.seed.wrapping_add(c as u64))
        })
        .collect();
    (0..cfg.queries)
        .map(|i| {
            let class = i % classes.len();
            let b = &streams[class][i / classes.len()];
            let knn_due = cfg.knn_every > 0 && (i + 1) % cfg.knn_every == 0;
            if knn_due && cfg.k > 0 {
                let center: Vec<i64> =
                    b.lo.iter()
                        .zip(b.hi.iter())
                        .map(|(&l, &h)| ((l + h) / 2) as i64)
                        .collect();
                (Query::Knn { center, k: cfg.k }, CLASS_LABELS[3])
            } else {
                (Query::Range(to_mbr(b)), CLASS_LABELS[class])
            }
        })
        .collect()
}

/// Shape of a hot-spot (Zipf) workload: most traffic hammers a few small
/// regions of the grid, the skew the ROADMAP's "workload skew" item asks
/// for — under contiguous partitioning it concentrates on few shards
/// (visible as a high [`crate::engine::BatchReport::shard_balance`]),
/// where round-robin declustering spreads it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfConfig {
    /// Number of queries in the batch.
    pub queries: usize,
    /// Seed for hotspot placement and query sampling.
    pub seed: u64,
    /// Every `knn_every`-th query becomes a kNN probe (0 disables).
    pub knn_every: usize,
    /// Neighbours per kNN probe.
    pub k: usize,
    /// Number of hot-spot centres scattered over the grid.
    pub hotspots: usize,
    /// Zipf exponent `s`: hotspot `i` (0-based popularity rank) is drawn
    /// with probability ∝ `1 / (i + 1)^s`. `0.0` is uniform; the classic
    /// web-traffic skew is near `1.0`.
    pub exponent: f64,
}

impl Default for ZipfConfig {
    fn default() -> Self {
        ZipfConfig {
            queries: 1000,
            seed: 42,
            knn_every: 4,
            k: 8,
            hotspots: 8,
            exponent: 1.2,
        }
    }
}

/// Generate a reproducible hot-spot batch: `hotspots` seeded centres,
/// each query drawn from a Zipf distribution over them and boxed (same
/// three selectivity-class sides as [`mixed_workload`], rotating) with a
/// jitter of up to one box side around its hotspot, clamped to the grid.
/// Every `knn_every`-th query becomes a kNN probe at its box centre.
pub fn zipf_workload(spec: &GridSpec, cfg: &ZipfConfig) -> Vec<Query> {
    assert!(cfg.hotspots >= 1, "need at least one hotspot");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let ndim = spec.ndim();
    let centers: Vec<Vec<i64>> = (0..cfg.hotspots)
        .map(|_| {
            (0..ndim)
                .map(|d| rng.gen_range(0..spec.dim(d)) as i64)
                .collect()
        })
        .collect();
    // Zipf inverse-CDF over the hotspot popularity ranks.
    let weights: Vec<f64> = (0..cfg.hotspots)
        .map(|i| 1.0 / ((i + 1) as f64).powf(cfg.exponent))
        .collect();
    // xtask:allow(float-reduce): serial fold over a fixed-order weight table
    let total: f64 = weights.iter().sum();
    let min_extent = spec.dims().iter().copied().min().expect("non-empty grid");
    let class_sides: Vec<i64> = [32usize, 16, 8]
        .iter()
        .map(|&frac| (min_extent / frac).max(1) as i64)
        .collect();
    (0..cfg.queries)
        .map(|i| {
            let mut u = rng.gen_range(0.0..total);
            let mut hotspot = cfg.hotspots - 1;
            for (h, &w) in weights.iter().enumerate() {
                if u < w {
                    hotspot = h;
                    break;
                }
                u -= w;
            }
            let side = class_sides[i % class_sides.len()];
            let center = &centers[hotspot];
            let (lo, hi): (Vec<i64>, Vec<i64>) = (0..ndim)
                .map(|d| {
                    let extent = spec.dim(d) as i64;
                    let jitter = rng.gen_range(-side..=side);
                    let lo = (center[d] + jitter - side / 2).clamp(0, (extent - side).max(0));
                    (lo, (lo + side - 1).min(extent - 1))
                })
                .unzip();
            let knn_due = cfg.knn_every > 0 && (i + 1) % cfg.knn_every == 0;
            if knn_due && cfg.k > 0 {
                let center: Vec<i64> = lo.iter().zip(&hi).map(|(&l, &h)| (l + h) / 2).collect();
                Query::Knn { center, k: cfg.k }
            } else {
                Query::Range(Mbr { lo, hi })
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_reproducible() {
        let spec = GridSpec::cube(64, 2);
        let cfg = WorkloadConfig {
            queries: 100,
            ..Default::default()
        };
        let a = mixed_workload(&spec, &cfg);
        let b = mixed_workload(&spec, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        let other = mixed_workload(&spec, &WorkloadConfig { seed: 7, ..cfg });
        assert_ne!(a, other);
    }

    #[test]
    fn workload_mixes_ranges_and_knn() {
        let spec = GridSpec::cube(64, 2);
        let cfg = WorkloadConfig {
            queries: 40,
            knn_every: 4,
            ..Default::default()
        };
        let batch = mixed_workload(&spec, &cfg);
        let knn = batch
            .iter()
            .filter(|q| matches!(q, Query::Knn { .. }))
            .count();
        assert_eq!(knn, 10);
        // Boxes stay inside the grid; kNN centres too.
        for q in &batch {
            match q {
                Query::Range(m) => {
                    assert!(m.lo.iter().all(|&x| x >= 0));
                    assert!(m.hi.iter().all(|&x| x < 64));
                }
                Query::Knn { center, k } => {
                    assert!(center.iter().all(|&x| (0..64).contains(&x)));
                    assert_eq!(*k, 16);
                }
            }
        }
    }

    #[test]
    fn knn_disabled_yields_pure_ranges() {
        let spec = GridSpec::cube(32, 2);
        let cfg = WorkloadConfig {
            queries: 30,
            knn_every: 0,
            ..Default::default()
        };
        assert!(mixed_workload(&spec, &cfg)
            .iter()
            .all(|q| matches!(q, Query::Range(_))));
    }

    #[test]
    fn labeled_workload_matches_and_tags_classes() {
        let spec = GridSpec::cube(64, 2);
        let cfg = WorkloadConfig {
            queries: 60,
            ..Default::default()
        };
        let labeled = mixed_workload_labeled(&spec, &cfg);
        let plain = mixed_workload(&spec, &cfg);
        assert_eq!(
            labeled.iter().map(|(q, _)| q.clone()).collect::<Vec<_>>(),
            plain
        );
        for (q, label) in &labeled {
            match q {
                Query::Knn { .. } => assert_eq!(*label, "knn"),
                Query::Range(_) => assert!(label.starts_with("range-"), "label {label}"),
            }
        }
        // All four classes appear in a batch this size.
        for label in CLASS_LABELS {
            assert!(labeled.iter().any(|(_, l)| *l == label), "missing {label}");
        }
    }

    #[test]
    fn zipf_workload_is_reproducible_and_in_bounds() {
        let spec = GridSpec::cube(64, 2);
        let cfg = ZipfConfig {
            queries: 200,
            ..Default::default()
        };
        let a = zipf_workload(&spec, &cfg);
        let b = zipf_workload(&spec, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        assert_ne!(a, zipf_workload(&spec, &ZipfConfig { seed: 7, ..cfg }));
        let knn = a.iter().filter(|q| matches!(q, Query::Knn { .. })).count();
        assert_eq!(knn, 50);
        for q in &a {
            match q {
                Query::Range(m) => {
                    assert!(m.lo.iter().all(|&x| x >= 0));
                    assert!(m.hi.iter().all(|&x| x < 64));
                    assert!(m.lo.iter().zip(&m.hi).all(|(l, h)| l <= h));
                }
                Query::Knn { center, k } => {
                    assert!(center.iter().all(|&x| (0..64).contains(&x)));
                    assert_eq!(*k, 8);
                }
            }
        }
    }

    #[test]
    fn zipf_workload_concentrates_on_the_top_hotspot() {
        // With a strong exponent, far more queries land near hotspot 0
        // than near the median hotspot: count queries whose box centre is
        // closest to each hotspot centre.
        let spec = GridSpec::cube(256, 2);
        let cfg = ZipfConfig {
            queries: 600,
            knn_every: 0,
            hotspots: 8,
            exponent: 1.5,
            ..Default::default()
        };
        // Recompute the hotspot centres the generator derives (same RNG
        // stream prefix).
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let centers: Vec<Vec<i64>> = (0..cfg.hotspots)
            .map(|_| (0..2).map(|_| rng.gen_range(0..256usize) as i64).collect())
            .collect();
        let mut counts = vec![0usize; cfg.hotspots];
        for q in zipf_workload(&spec, &cfg) {
            let Query::Range(m) = q else { unreachable!() };
            let qc: Vec<i64> = m.lo.iter().zip(&m.hi).map(|(&l, &h)| (l + h) / 2).collect();
            let nearest = (0..cfg.hotspots)
                .min_by_key(|&h| {
                    centers[h]
                        .iter()
                        .zip(&qc)
                        .map(|(&c, &x)| (c - x).abs())
                        .max()
                        .unwrap_or(0)
                })
                .unwrap();
            counts[nearest] += 1;
        }
        let median = {
            let mut sorted = counts.clone();
            sorted.sort_unstable();
            sorted[cfg.hotspots / 2]
        };
        assert!(counts[0] > 2 * median.max(1), "no skew: counts {counts:?}");
    }

    #[test]
    fn zipf_hot_traffic_skews_contiguous_shards() {
        // The point of the metric: hot-spot traffic on contiguous
        // partitioning loads shards unevenly.
        use crate::engine::{EngineConfig, ServeEngine};
        use spectral_lpm::LinearOrder;
        let spec = GridSpec::cube(32, 2);
        let points = grid_points(&spec);
        let order = LinearOrder::identity(points.len());
        let engine = ServeEngine::new(
            &points,
            &order,
            EngineConfig {
                records_per_page: 4,
                fanout: 4,
                shards: 8,
                ..Default::default()
            },
        );
        let batch = zipf_workload(
            &spec,
            &ZipfConfig {
                queries: 120,
                hotspots: 2,
                exponent: 2.0,
                knn_every: 0,
                ..Default::default()
            },
        );
        let report = engine.run(&batch).expect("no replay panic");
        assert!(report.total_pages() > 0);
        assert!(
            report.shard_balance() > 1.5,
            "expected skew, balance {}",
            report.shard_balance()
        );
    }

    #[test]
    fn grid_points_are_row_major() {
        let spec = GridSpec::new(&[2, 3]);
        let pts = grid_points(&spec);
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0], vec![0, 0]);
        assert_eq!(pts[5], vec![1, 2]);
        for (i, p) in pts.iter().enumerate() {
            let coords: Vec<usize> = p.iter().map(|&x| x as usize).collect();
            assert_eq!(spec.index_of(&coords), i);
        }
    }

    #[test]
    fn tiny_grid_degenerates_gracefully() {
        let spec = GridSpec::cube(4, 2);
        let cfg = WorkloadConfig {
            queries: 10,
            ..Default::default()
        };
        let batch = mixed_workload(&spec, &cfg);
        assert_eq!(batch.len(), 10);
    }
}
