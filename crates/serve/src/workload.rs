//! Reproducible mixed workloads for the serving layer.
//!
//! Builds batches of range and kNN queries from
//! [`slpm_querysim::workloads::sample_boxes`] — the same seeded generator
//! the evaluation figures use — so a workload is a pure function of
//! `(grid, count, seed)`: two processes, machines, or shard/thread
//! configurations replay byte-for-byte the same queries.

use crate::engine::Query;
use slpm_graph::grid::GridSpec;
use slpm_querysim::workloads::{sample_boxes, RangeBox};
use slpm_storage::Mbr;

/// Shape of a generated workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Number of queries in the batch.
    pub queries: usize,
    /// Seed for the box sampler.
    pub seed: u64,
    /// Every `knn_every`-th query becomes a kNN probe at the box centre
    /// (`0` disables kNN entirely).
    pub knn_every: usize,
    /// Neighbours per kNN probe.
    pub k: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            queries: 1000,
            seed: 42,
            knn_every: 4,
            k: 8,
        }
    }
}

/// The grid's points as integer coordinates, id = row-major index — the
/// point set every engine over a [`GridSpec`] serves.
pub fn grid_points(spec: &GridSpec) -> Vec<Vec<i64>> {
    spec.iter_points()
        .map(|c| c.iter().map(|&x| x as i64).collect())
        .collect()
}

/// Convert a grid-coordinate box to the store's integer MBR.
fn to_mbr(b: &RangeBox) -> Mbr {
    Mbr {
        lo: b.lo.iter().map(|&x| x as i64).collect(),
        hi: b.hi.iter().map(|&x| x as i64).collect(),
    }
}

/// Generate a reproducible mixed batch: three selectivity classes of
/// range boxes (sides ≈ 1/32, 1/16 and 1/8 of the smallest grid extent)
/// interleaved round-robin, with every `knn_every`-th query replaced by a
/// kNN probe anchored at its box's centre.
pub fn mixed_workload(spec: &GridSpec, cfg: &WorkloadConfig) -> Vec<Query> {
    let min_extent = spec.dims().iter().copied().min().expect("non-empty grid");
    let classes: Vec<usize> = [32, 16, 8]
        .iter()
        .map(|&frac| (min_extent / frac).max(1))
        .collect();
    let per_class = cfg.queries.div_ceil(classes.len());
    // One seeded stream per class; interleaving consumes them round-robin
    // so the batch mixes selectivities the way live traffic would.
    let streams: Vec<Vec<RangeBox>> = classes
        .iter()
        .enumerate()
        .map(|(c, &side)| {
            let sides = vec![side; spec.ndim()];
            sample_boxes(spec, &sides, per_class, cfg.seed.wrapping_add(c as u64))
        })
        .collect();
    (0..cfg.queries)
        .map(|i| {
            let class = i % classes.len();
            let b = &streams[class][i / classes.len()];
            let knn_due = cfg.knn_every > 0 && (i + 1) % cfg.knn_every == 0;
            if knn_due && cfg.k > 0 {
                let center: Vec<i64> =
                    b.lo.iter()
                        .zip(b.hi.iter())
                        .map(|(&l, &h)| ((l + h) / 2) as i64)
                        .collect();
                Query::Knn { center, k: cfg.k }
            } else {
                Query::Range(to_mbr(b))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_reproducible() {
        let spec = GridSpec::cube(64, 2);
        let cfg = WorkloadConfig {
            queries: 100,
            ..Default::default()
        };
        let a = mixed_workload(&spec, &cfg);
        let b = mixed_workload(&spec, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        let other = mixed_workload(&spec, &WorkloadConfig { seed: 7, ..cfg });
        assert_ne!(a, other);
    }

    #[test]
    fn workload_mixes_ranges_and_knn() {
        let spec = GridSpec::cube(64, 2);
        let cfg = WorkloadConfig {
            queries: 40,
            knn_every: 4,
            ..Default::default()
        };
        let batch = mixed_workload(&spec, &cfg);
        let knn = batch
            .iter()
            .filter(|q| matches!(q, Query::Knn { .. }))
            .count();
        assert_eq!(knn, 10);
        // Boxes stay inside the grid; kNN centres too.
        for q in &batch {
            match q {
                Query::Range(m) => {
                    assert!(m.lo.iter().all(|&x| x >= 0));
                    assert!(m.hi.iter().all(|&x| x < 64));
                }
                Query::Knn { center, k } => {
                    assert!(center.iter().all(|&x| (0..64).contains(&x)));
                    assert_eq!(*k, 8);
                }
            }
        }
    }

    #[test]
    fn knn_disabled_yields_pure_ranges() {
        let spec = GridSpec::cube(32, 2);
        let cfg = WorkloadConfig {
            queries: 30,
            knn_every: 0,
            ..Default::default()
        };
        assert!(mixed_workload(&spec, &cfg)
            .iter()
            .all(|q| matches!(q, Query::Range(_))));
    }

    #[test]
    fn grid_points_are_row_major() {
        let spec = GridSpec::new(&[2, 3]);
        let pts = grid_points(&spec);
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0], vec![0, 0]);
        assert_eq!(pts[5], vec![1, 2]);
        for (i, p) in pts.iter().enumerate() {
            let coords: Vec<usize> = p.iter().map(|&x| x as usize).collect();
            assert_eq!(spec.index_of(&coords), i);
        }
    }

    #[test]
    fn tiny_grid_degenerates_gracefully() {
        let spec = GridSpec::cube(4, 2);
        let cfg = WorkloadConfig {
            queries: 10,
            ..Default::default()
        };
        let batch = mixed_workload(&spec, &cfg);
        assert_eq!(batch.len(), 10);
    }
}
