//! A persistent worker pool: long-lived threads fed by an MPMC channel.
//!
//! The parallel kernels in `slpm_linalg::parallel` spawn *scoped* threads
//! per call; spawning costs a few tens of microseconds, which dominates
//! below ~64k work items — exactly the regime query serving lives in (a
//! batch fans out into a handful of per-shard replay tasks and per-chunk
//! planning tasks, each far smaller than an eigensolve). [`WorkerPool`]
//! amortises that cost: threads are spawned **once**, park on a shared
//! [`crossbeam::channel`] receiver (the MPMC clone-able receiver is why
//! the shim grew channel support), and execute boxed jobs until the pool
//! is dropped.
//!
//! Scheduling never influences results: [`WorkerPool::run_batch`] returns
//! results **in task order** regardless of which worker ran what when, so
//! any deterministic set of tasks yields a deterministic batch result for
//! every thread count.

use crossbeam::channel::{self, Receiver, Sender};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A unit of work shipped to a worker thread.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of long-lived worker threads.
///
/// Dropping the pool closes the job channel and joins every worker.
pub struct WorkerPool {
    /// `None` only during drop (taken to disconnect the channel).
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    /// Jobs submitted via [`WorkerPool::submit`] that panicked (batch
    /// tasks re-raise their panics in the caller instead).
    panicked: Arc<AtomicUsize>,
}

impl WorkerPool {
    /// Spawn a pool of `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver): (Sender<Job>, Receiver<Job>) = channel::unbounded();
        let panicked = Arc::new(AtomicUsize::new(0));
        let workers = (0..threads)
            .map(|i| {
                let rx = receiver.clone();
                let panicked = Arc::clone(&panicked);
                std::thread::Builder::new()
                    .name(format!("slpm-serve-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            // A panicking job must not take the worker (and
                            // the pool's capacity) down with it; count it
                            // and keep serving.
                            if catch_unwind(AssertUnwindSafe(job)).is_err() {
                                panicked.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    })
                    .expect("spawning a pool worker failed")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
            panicked,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Fire-and-forget: queue a job for whichever worker frees up first.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.submit_boxed(Box::new(job));
    }

    /// [`WorkerPool::submit`] for an already-boxed job — the sink shape
    /// `crossbeam::thread::run_scoped` lends borrowed work through.
    pub fn submit_boxed(&self, job: Job) {
        self.sender
            .as_ref()
            .expect("pool is live until drop")
            .send(job)
            .expect("pool workers outlive the sender");
    }

    /// Run a batch of **borrowing** jobs on the pool's persistent
    /// workers, blocking until all complete — the scoped-thread shape
    /// (`crossbeam::thread::scope`) without the per-call spawn cost.
    /// Panics if any job panicked. Do not call from inside a pool job
    /// (same capacity caveat as [`WorkerPool::run_batch`]).
    pub fn run_scoped(&self, jobs: Vec<Box<dyn FnOnce() + Send + '_>>) {
        crossbeam::thread::run_scoped(jobs, &mut |job| self.submit_boxed(job));
    }

    /// [`WorkerPool::run_scoped`] with caller participation: `local` runs
    /// on the calling thread between job submission and the completion
    /// wait, so the caller computes one span itself instead of idling —
    /// the shape `slpm_linalg`'s chunk-plan dispatcher wants (it hands
    /// the pool `workers − 1` jobs and keeps the last span).
    pub fn run_scoped_with_local<'env, L>(
        &self,
        jobs: Vec<Box<dyn FnOnce() + Send + 'env>>,
        local: L,
    ) where
        L: FnOnce(),
    {
        crossbeam::thread::run_scoped_with_local(jobs, &mut |job| self.submit_boxed(job), local);
    }

    /// Borrow this pool as an eigensolver backend: the returned
    /// [`slpm_linalg::Pool`] schedules the sparse kernels' chunked work
    /// onto these persistent workers instead of spawning scoped threads
    /// per call — one pool abstraction for compute and serving. Results
    /// are bitwise identical to every other backend and thread count.
    pub fn linalg_pool(&self) -> slpm_linalg::Pool<'_> {
        slpm_linalg::Pool::with_executor(self.threads(), self)
    }

    /// Count of submitted (fire-and-forget) jobs that panicked.
    pub fn panicked_jobs(&self) -> usize {
        self.panicked.load(Ordering::Relaxed)
    }

    /// Run a batch of tasks on the pool and return their results **in
    /// task order**. The calling thread blocks (it only collects; with a
    /// single worker this degenerates to serial execution on the worker).
    /// Do not call from *inside* a pool job: the job would block its own
    /// worker waiting for capacity it occupies (a single-worker pool
    /// deadlocks outright).
    ///
    /// A panicking task is re-raised here, after the rest of the batch
    /// has drained — the first panic in task order wins.
    pub fn run_batch<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = tasks.len();
        let (tx, rx) = channel::unbounded();
        for (index, task) in tasks.into_iter().enumerate() {
            let tx = tx.clone();
            self.submit(move || {
                let outcome = catch_unwind(AssertUnwindSafe(task));
                // The collector may have unwound already; a dead receiver
                // just discards the result.
                let _ = tx.send((index, outcome));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<std::thread::Result<T>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (index, outcome) = rx.recv().expect("one result per task");
            slots[index] = Some(outcome);
        }
        let mut results = Vec::with_capacity(n);
        let mut first_panic = None;
        for slot in slots {
            match slot.expect("every slot filled") {
                Ok(value) => results.push(value),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        results
    }
}

impl slpm_linalg::ScopeExecutor for WorkerPool {
    /// Lend the pool's workers to `slpm_linalg`'s chunked kernels — the
    /// jobs borrow the eigensolver's buffers; `run_scoped` blocks until
    /// every one has completed, so no borrow outlives the call.
    fn run_jobs(&self, jobs: Vec<Box<dyn FnOnce() + Send + '_>>) {
        self.run_scoped(jobs);
    }

    /// Caller participation, for real: the dispatcher's own span runs on
    /// the calling thread while the pool works the submitted jobs — one
    /// fewer queue handoff per engagement than the default caller-merging
    /// implementation.
    fn run_jobs_with_caller<'env>(
        &self,
        jobs: Vec<Box<dyn FnOnce() + Send + 'env>>,
        caller: Box<dyn FnOnce() + Send + 'env>,
    ) {
        self.run_scoped_with_local(jobs, caller);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Disconnect the channel; workers drain remaining jobs, then exit.
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex;

    #[test]
    fn batch_results_arrive_in_task_order() {
        let pool = WorkerPool::new(4);
        // Reverse sleep times so completion order inverts task order.
        let tasks: Vec<_> = (0..8u64)
            .map(|i| {
                move || {
                    std::thread::sleep(std::time::Duration::from_millis((8 - i) * 3));
                    i * i
                }
            })
            .collect();
        let results = pool.run_batch(tasks);
        assert_eq!(results, (0..8u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_pool_is_serial_but_correct() {
        let pool = WorkerPool::new(1);
        let results = pool.run_batch((0..16).map(|i| move || i + 1).collect::<Vec<_>>());
        assert_eq!(results, (1..17).collect::<Vec<i32>>());
        assert_eq!(pool.threads(), 1);
        assert_eq!(WorkerPool::new(0).threads(), 1);
    }

    #[test]
    fn pool_is_reused_across_batches() {
        // The point of persistence: many small batches on the same
        // threads. Track distinct worker threads observed.
        let pool = WorkerPool::new(2);
        let seen = Arc::new(Mutex::new(std::collections::HashSet::new()));
        for round in 0..10 {
            let tasks: Vec<_> = (0..4)
                .map(|i| {
                    let seen = Arc::clone(&seen);
                    move || {
                        seen.lock().unwrap().insert(std::thread::current().id());
                        round * 4 + i
                    }
                })
                .collect();
            let got = pool.run_batch(tasks);
            assert_eq!(got, (round * 4..round * 4 + 4).collect::<Vec<_>>());
        }
        // 40 tasks landed on at most 2 (long-lived) threads.
        assert!(seen.lock().unwrap().len() <= 2);
    }

    #[test]
    fn submit_runs_and_pool_drains_on_drop() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(3);
            for _ in 0..50 {
                let counter = Arc::clone(&counter);
                pool.submit(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Drop joins the workers after the queue drains.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn batch_panic_is_propagated_to_the_caller() {
        let pool = WorkerPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("task exploded")),
            Box::new(|| 3),
        ];
        let outcome = catch_unwind(AssertUnwindSafe(|| pool.run_batch(tasks)));
        assert!(outcome.is_err());
        // The pool survives the panic and keeps serving.
        let results = pool.run_batch(vec![
            Box::new(|| 7usize) as Box<dyn FnOnce() -> usize + Send>
        ]);
        assert_eq!(results, vec![7]);
    }

    #[test]
    fn run_scoped_borrows_caller_data_on_pool_workers() {
        let pool = WorkerPool::new(3);
        let mut data = [0usize; 24];
        for round in 1..=3usize {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = data
                .chunks_mut(8)
                .map(|chunk| {
                    Box::new(move || {
                        for v in chunk.iter_mut() {
                            *v += round;
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_scoped(jobs);
        }
        assert!(data.iter().all(|&v| v == 6));
    }

    #[test]
    fn linalg_kernels_on_the_serving_pool_match_serial_bitwise() {
        // The one-pool-abstraction adapter: eigensolver kernels scheduled
        // on the serving engine's persistent workers answer bit-for-bit
        // like the serial and scoped backends.
        let pool = WorkerPool::new(4);
        let shared = pool.linalg_pool();
        assert_eq!(shared.threads(), 4);
        // Above the kernels' light-op engagement threshold, so the level-1
        // kernels genuinely schedule onto the pool's workers.
        let n = slpm_linalg::parallel::LIGHT_SPAWN_MIN + 12_345;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
        let serial = slpm_linalg::Pool::serial();
        assert_eq!(
            shared.dot(&x, &y).to_bits(),
            serial.dot(&x, &y).to_bits(),
            "pooled dot diverged from serial"
        );
        let mut a = y.clone();
        let mut b = y.clone();
        serial.axpy(1.25, &x, &mut a);
        shared.axpy(1.25, &x, &mut b);
        assert_eq!(a, b);
        serial.center(&mut a);
        shared.center(&mut b);
        assert_eq!(a, b);
        // The pool keeps serving ordinary batches afterwards.
        assert_eq!(pool.run_batch(vec![|| 5usize]), vec![5]);
    }

    #[test]
    fn submitted_panics_are_counted_not_fatal() {
        let pool = WorkerPool::new(1);
        pool.submit(|| panic!("fire-and-forget failure"));
        // A later batch still runs on the same worker.
        let results = pool.run_batch(vec![|| 11usize]);
        assert_eq!(results, vec![11]);
        assert_eq!(pool.panicked_jobs(), 1);
    }
}
